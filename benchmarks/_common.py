"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper's
evaluation (Section VI).  Conventions:

* modules are pytest-benchmark targets *and* standalone scripts
  (``python benchmarks/bench_fig6_runtime.py`` prints the paper-style
  rows);
* dataset scale is controlled by ``REPRO_BENCH_SCALE`` (default 1.0 —
  the stand-in sizes of Table I); drop it to 0.3 for a quick pass;
* timings are wall-clock single runs (the paper measures wall-clock of
  one execution); alongside seconds we report **search nodes**, the
  machine-independent effort metric — at Python scale the wall-clock
  ratios between algorithms are compressed, while node ratios retain
  the paper's orders of magnitude (see EXPERIMENTS.md);
* ``REPRO_ENGINE`` selects the adjacency engine (``bitset`` default,
  ``set`` for the original representation) for the engine-aware
  solvers, so ``REPRO_ENGINE=set python benchmarks/...`` reproduces
  pre-kernel timings;
* ``REPRO_TRACE=trace.jsonl`` installs an ambient :mod:`repro.obs`
  tracer for the whole benchmark process and writes the merged span
  stream to the named file at exit (``docs/OBSERVABILITY.md``), so any
  figure script doubles as a profiling run without code changes.
"""

from __future__ import annotations

import atexit
import os
import random
import time
from typing import Callable, Iterable, Sequence

from repro.datasets.registry import dataset_names, load
from repro.obs import get_tracer, install_tracer, write_jsonl
from repro.signed.graph import SignedGraph

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Adjacency engine for the engine-aware solvers (MBC*, PF*, gMBC*).
BENCH_ENGINE = os.environ.get("REPRO_ENGINE", "bitset")

#: All 14 stand-ins, Table I order.
ALL_DATASETS = dataset_names()

#: The pair used for scalability studies (Figures 10 and 12).
SCALABILITY_DATASETS = ["dblp", "douban"]

#: Default polarization threshold of the paper's experiments.
DEFAULT_TAU = 3

#: ``REPRO_TRACE=path.jsonl`` traces the whole benchmark process.
TRACE_PATH = os.environ.get("REPRO_TRACE")


def _install_bench_tracer(path: str) -> None:
    tracer = get_tracer(True)
    install_tracer(tracer)

    def _flush() -> None:
        install_tracer(None)
        lines = write_jsonl(tracer, path)
        print(f"trace: {path} ({lines} events)")

    atexit.register(_flush)


if TRACE_PATH:
    _install_bench_tracer(TRACE_PATH)


def bench_graph(name: str) -> SignedGraph:
    """Load a stand-in at the benchmark scale."""
    return load(name, scale=BENCH_SCALE)


def timed(fn: Callable[[], object]) -> tuple[object, float]:
    """Run ``fn`` once, returning ``(result, seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def sample_vertices(
    graph: SignedGraph, fraction: float, seed: int = 0
) -> SignedGraph:
    """Induced subgraph on a random vertex sample (Figures 10/12)."""
    rng = random.Random(seed)
    n = graph.num_vertices
    count = min(max(int(n * fraction), 1), n)
    chosen = rng.sample(range(n), count)
    sub, _mapping = graph.subgraph(chosen)
    return sub


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Print an aligned text table (the bench's paper-style output)."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def run_once(benchmark, fn: Callable[[], object]) -> object:
    """Measure ``fn`` with pytest-benchmark using a single round.

    The underlying workloads are deterministic whole-algorithm runs
    taking between milliseconds and seconds, so one round is both
    representative and keeps the full suite's runtime bounded.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
