"""Ablation — tightness of clique upper bounds on dichromatic networks.

The paper's Related Work points to recolouring [26] as an advanced
bound.  This bench builds the dichromatic networks MBC* would process
on several stand-ins and compares, per network: the exact maximum
clique size, the greedy-colouring bound (what MBC* uses) and the
2-swap recolouring bound.  Reported: average gap to the optimum and
how often each bound is tight.
"""

import pytest

from repro.core.reductions import vertex_reduction
from repro.dichromatic.build import build_dichromatic_network
from repro.unsigned.clique import maximum_clique_size
from repro.unsigned.coloring import coloring_upper_bound
from repro.unsigned.graph import UnsignedGraph
from repro.unsigned.ordering import degeneracy_ordering
from repro.unsigned.recolor import recoloring_upper_bound

try:
    from ._common import DEFAULT_TAU, bench_graph, print_table, run_once
except ImportError:
    from _common import DEFAULT_TAU, bench_graph, print_table, run_once

DATASETS = ["bitcoin", "reddit", "epinions"]
NETWORKS_PER_DATASET = 40


def bound_statistics(name: str) -> list[object]:
    graph = bench_graph(name)
    alive = vertex_reduction(graph, DEFAULT_TAU)
    working, _mapping = graph.subgraph(alive)
    unsigned_view = UnsignedGraph.from_signed(working)
    order = degeneracy_ordering(unsigned_view)
    rank = {v: i for i, v in enumerate(order)}

    greedy_gap = 0.0
    recolor_gap = 0.0
    greedy_tight = 0
    recolor_tight = 0
    measured = 0
    for u in reversed(order):
        if measured >= NETWORKS_PER_DATASET:
            break
        allowed = {v for v in working.vertices() if rank[v] > rank[u]}
        network = build_dichromatic_network(working, u, allowed)
        if network.num_vertices < 4:
            continue
        as_unsigned = UnsignedGraph(network.num_vertices)
        for a, b in network.edges():
            as_unsigned.add_edge(a, b)
        exact = maximum_clique_size(as_unsigned)
        greedy = coloring_upper_bound(as_unsigned)
        improved = recoloring_upper_bound(as_unsigned)
        assert exact <= improved <= greedy
        greedy_gap += greedy - exact
        recolor_gap += improved - exact
        greedy_tight += greedy == exact
        recolor_tight += improved == exact
        measured += 1
    if measured == 0:
        return [name, 0, "-", "-", "-", "-"]
    return [
        name, measured,
        f"{greedy_gap / measured:.2f}",
        f"{recolor_gap / measured:.2f}",
        f"{greedy_tight / measured * 100:.0f}%",
        f"{recolor_tight / measured * 100:.0f}%",
    ]


@pytest.mark.parametrize("name", DATASETS)
def test_ablation_bounds(benchmark, name):
    row = run_once(benchmark, lambda: bound_statistics(name))
    print_table(
        f"Bound tightness — {name}",
        ["dataset", "#networks", "greedy gap", "recolor gap",
         "greedy tight", "recolor tight"],
        [row])


def main() -> None:
    rows = [bound_statistics(name) for name in DATASETS]
    print_table(
        "Ablation — colouring-bound tightness on dichromatic networks",
        ["dataset", "#networks", "greedy gap", "recolor gap",
         "greedy tight", "recolor tight"],
        rows)


if __name__ == "__main__":
    main()
