"""Ablation — vertex ordering in MBC* (design choice of Algorithm 2).

The paper processes vertices in reverse degeneracy order so that each
ego-network has at most degeneracy(G) vertices.  This bench compares
that choice against a plain degree ordering and raw vertex ids on
several stand-ins, reporting time / MDC instances / search nodes.
Expectation: degeneracy never launches more instances, and the gap
widens on the hub-heavy graphs.
"""

import pytest

from repro.core.mbc_star import mbc_star
from repro.core.stats import SearchStats

try:
    from ._common import DEFAULT_TAU, bench_graph, format_seconds, \
        print_table, run_once, timed
except ImportError:
    from _common import DEFAULT_TAU, bench_graph, format_seconds, \
        print_table, run_once, timed

DATASETS = ["epinions", "dblp", "douban", "sn2"]
ORDERINGS = ["degeneracy", "degree", "id"]


def ordering_row(name: str) -> list[object]:
    graph = bench_graph(name)
    row: list[object] = [name]
    sizes = set()
    for ordering in ORDERINGS:
        stats = SearchStats()
        clique, seconds = timed(
            lambda: mbc_star(graph, DEFAULT_TAU, stats=stats,
                             ordering=ordering))
        sizes.add(clique.size)
        row.append(f"{format_seconds(seconds)}/"
                   f"{stats.instances}i/{stats.nodes}n")
    assert len(sizes) == 1, f"orderings disagree on {name}"
    return row


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("ordering", ORDERINGS)
def test_ablation_ordering(benchmark, name, ordering):
    graph = bench_graph(name)
    run_once(benchmark,
             lambda: mbc_star(graph, DEFAULT_TAU, ordering=ordering))


def main() -> None:
    rows = [ordering_row(name) for name in DATASETS]
    print_table(
        "Ablation — MBC* vertex ordering "
        "(time/instances/search-nodes)",
        ["dataset", *ORDERINGS],
        rows)


if __name__ == "__main__":
    main()
