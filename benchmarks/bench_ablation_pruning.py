"""Ablation — the two pruning rules inside MBC* / MDC.

Algorithm 2 prunes with (a) core reductions (degree-based, Lemma 1)
and (b) greedy-colouring upper bounds (Lemma 2).  This bench switches
each off independently and reports time / launched MDC instances /
search nodes.  Expectation: both rules matter; dropping both is worst.
"""

import pytest

from repro.core.mbc_star import mbc_star
from repro.core.stats import SearchStats

try:
    from ._common import DEFAULT_TAU, bench_graph, format_seconds, \
        print_table, run_once, timed
except ImportError:
    from _common import DEFAULT_TAU, bench_graph, format_seconds, \
        print_table, run_once, timed

DATASETS = ["epinions", "wikiconflict", "dblp", "sn2"]
CONFIGS = {
    "full": (True, True),
    "no-coloring": (False, True),
    "no-core": (True, False),
    "neither": (False, False),
}


def pruning_row(name: str) -> list[object]:
    graph = bench_graph(name)
    row: list[object] = [name]
    sizes = set()
    for label, (use_coloring, use_core) in CONFIGS.items():
        stats = SearchStats()
        clique, seconds = timed(
            lambda: mbc_star(graph, DEFAULT_TAU, stats=stats,
                             use_coloring=use_coloring,
                             use_core=use_core))
        sizes.add(clique.size)
        row.append(f"{format_seconds(seconds)}/"
                   f"{stats.instances}i/{stats.nodes}n")
    assert len(sizes) == 1, f"configs disagree on {name}"
    return row


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("config", list(CONFIGS))
def test_ablation_pruning(benchmark, name, config):
    graph = bench_graph(name)
    use_coloring, use_core = CONFIGS[config]
    run_once(benchmark,
             lambda: mbc_star(graph, DEFAULT_TAU,
                              use_coloring=use_coloring,
                              use_core=use_core))


def main() -> None:
    rows = [pruning_row(name) for name in DATASETS]
    print_table(
        "Ablation — MBC* pruning rules "
        "(time/instances/search-nodes)",
        ["dataset", *CONFIGS],
        rows)


if __name__ == "__main__":
    main()
