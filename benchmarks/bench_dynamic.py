"""Streaming benchmark — incremental ``solve()`` vs full re-solve.

The dynamic solver's acceptance criterion: across seeded random
single-edit scripts on real stand-in datasets, re-solving through the
dirty-ego cache must beat a from-scratch ``mbc_star`` by a geometric
mean of at least 5x — with the optimum cross-checked against the full
solve after *every* edit, so the speedup is never bought with a wrong
answer.

Per dataset the harness primes a :class:`repro.dynamic.DynamicSolver`
(the cold sweep, reported separately as ``initial_seconds``), then
replays ``EDITS`` seeded random edits; after each it times the
incremental ``solve()`` and a full ``mbc_star`` on the same live
graph and asserts both return the same optimum size.

Standalone mode writes ``BENCH_dynamic.json`` at the repo root
(``python benchmarks/bench_dynamic.py``); CI re-validates the
committed payload against :func:`validate_payload`.  The pytest
target wires the steady-state edit-resolve loop into
pytest-benchmark.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path

import pytest

from repro.core.mbc_star import mbc_star
from repro.dynamic import DynamicSolver, apply_edit, random_edits

try:
    from ._common import BENCH_ENGINE, DEFAULT_TAU, bench_graph, \
        format_seconds, print_table, run_once
except ImportError:
    from _common import BENCH_ENGINE, DEFAULT_TAU, bench_graph, \
        format_seconds, print_table, run_once

#: Real stand-in datasets the streaming criterion is measured on.
BENCH_DATASETS = ("bitcoin", "adjwordnet", "referendum", "douban")

#: Random single edits replayed per dataset.
EDITS = 20

#: Seed of the per-dataset edit scripts (offset by dataset index).
SEED = 2022

#: Acceptance threshold on the geometric-mean speedup.
MIN_GEOMEAN_SPEEDUP = 5.0


def _bench_dataset(name: str, seed: int) -> dict:
    """Replay one edit script; returns the payload row."""
    graph = bench_graph(name)
    started = time.perf_counter()
    solver = DynamicSolver(graph, DEFAULT_TAU, engine=BENCH_ENGINE)
    primed = solver.solve()
    initial_seconds = time.perf_counter() - started
    incremental = 0.0
    full = 0.0
    size = primed.clique.size
    for edit in random_edits(graph, EDITS, seed=seed):
        apply_edit(solver, edit)
        started = time.perf_counter()
        result = solver.solve()
        incremental += time.perf_counter() - started
        started = time.perf_counter()
        reference = mbc_star(graph, DEFAULT_TAU, engine=BENCH_ENGINE)
        full += time.perf_counter() - started
        assert result.clique.size == reference.size, (
            f"{name}: incremental {result.clique.size} != "
            f"full {reference.size} after {edit.as_line()!r}")
        size = result.clique.size
    return {
        "dataset": name,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "edits": EDITS,
        "final_size": size,
        "initial_seconds": round(initial_seconds, 6),
        "incremental_seconds": round(incremental, 6),
        "full_seconds": round(full, 6),
        "speedup": round(full / incremental, 2) if incremental else
        None,
    }


def collect() -> dict:
    """The whole payload: per-dataset rows + the geomean criterion."""
    rows = [_bench_dataset(name, SEED + index)
            for index, name in enumerate(BENCH_DATASETS)]
    speedups = [row["speedup"] for row in rows
                if row["speedup"] is not None]
    geomean = round(math.exp(
        sum(math.log(s) for s in speedups) / len(speedups)), 2)
    return {
        "tau": DEFAULT_TAU,
        "engine": BENCH_ENGINE,
        "edits": EDITS,
        "seed": SEED,
        "datasets": rows,
        "geomean_speedup": geomean,
    }


def validate_payload(payload: dict) -> None:
    """Schema + acceptance check of a ``BENCH_dynamic.json`` payload.

    Raises ``AssertionError`` on any violation; CI runs this against
    the committed file so a drive-by edit cannot silently weaken the
    record.
    """
    assert set(payload) == {
        "tau", "engine", "edits", "seed", "datasets",
        "geomean_speedup"}
    assert payload["tau"] >= 1 and payload["edits"] >= 1
    rows = payload["datasets"]
    assert len(rows) >= 3, "criterion needs >= 3 real datasets"
    for row in rows:
        assert set(row) == {
            "dataset", "n", "m", "edits", "final_size",
            "initial_seconds", "incremental_seconds", "full_seconds",
            "speedup"}
        assert row["n"] > 0 and row["m"] > 0
        assert row["incremental_seconds"] >= 0.0
        assert row["full_seconds"] >= 0.0
        assert row["speedup"] is None or row["speedup"] > 0.0
    assert payload["geomean_speedup"] >= MIN_GEOMEAN_SPEEDUP, (
        f"geomean speedup {payload['geomean_speedup']}x below the "
        f"{MIN_GEOMEAN_SPEEDUP}x acceptance threshold")


@pytest.mark.benchmark(group="dynamic")
@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_dynamic_edit_resolve(benchmark, dataset):
    """Steady state: one random edit, then the incremental re-solve."""
    graph = bench_graph(dataset)
    solver = DynamicSolver(graph, DEFAULT_TAU, engine=BENCH_ENGINE)
    solver.solve()
    edits = iter(random_edits(graph, 10_000, seed=SEED))

    def step() -> int:
        apply_edit(solver, next(edits))
        return solver.solve().clique.size

    size = run_once(benchmark, step)
    assert size == mbc_star(graph, DEFAULT_TAU,
                            engine=BENCH_ENGINE).size


def main() -> None:
    payload = collect()
    print_table(
        f"Incremental vs full re-solve (tau={DEFAULT_TAU}, "
        f"engine={BENCH_ENGINE}, {EDITS} random edits)",
        ["dataset", "n", "m", "prime", "incremental", "full",
         "speedup"],
        [[row["dataset"], row["n"], row["m"],
          format_seconds(row["initial_seconds"]),
          format_seconds(row["incremental_seconds"]),
          format_seconds(row["full_seconds"]),
          f"{row['speedup']:.1f}x"] for row in payload["datasets"]])
    print(f"\nGEOMEAN speedup "
          f"{payload['geomean_speedup']:.2f}x "
          f"(threshold {MIN_GEOMEAN_SPEEDUP:.1f}x)")
    validate_payload(payload)
    if "--no-json" not in sys.argv:
        out = Path(__file__).resolve().parent.parent / \
            "BENCH_dynamic.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
