"""Figure 10 — scalability testing (tau = 3, vary graph size).

Random vertex samples of 20%..100% of the DBLP and Douban stand-ins;
MBC, MBC-Adv and MBC* on each induced subgraph.  Paper shape: all
algorithms grow with the sample size; MBC* grows slowest and wins at
every size.
"""

import pytest

from repro.core.mbc_adv import mbc_adv
from repro.core.mbc_baseline import mbc_baseline
from repro.core.mbc_star import mbc_star
from repro.core.stats import SearchStats

try:
    from ._common import DEFAULT_TAU, SCALABILITY_DATASETS, \
        bench_graph, format_seconds, print_table, run_once, \
        sample_vertices, timed
except ImportError:
    from _common import DEFAULT_TAU, SCALABILITY_DATASETS, \
        bench_graph, format_seconds, print_table, run_once, \
        sample_vertices, timed

FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]


def figure10_rows(name: str) -> list[list[object]]:
    graph = bench_graph(name)
    rows = []
    for fraction in FRACTIONS:
        sample = sample_vertices(graph, fraction, seed=17)
        stats_b = SearchStats()
        baseline, t_b = timed(
            lambda: mbc_baseline(sample, DEFAULT_TAU, stats=stats_b))
        stats_a = SearchStats()
        adv, t_a = timed(
            lambda: mbc_adv(sample, DEFAULT_TAU, stats=stats_a))
        stats_s = SearchStats()
        star, t_s = timed(
            lambda: mbc_star(sample, DEFAULT_TAU, stats=stats_s))
        assert baseline.size == adv.size == star.size, (name, fraction)
        rows.append([
            name, f"{int(fraction * 100)}%", sample.num_edges,
            f"{format_seconds(t_b)}/{stats_b.nodes}n",
            f"{format_seconds(t_a)}/{stats_a.nodes}n",
            f"{format_seconds(t_s)}/{stats_s.nodes}n",
        ])
    return rows


@pytest.mark.parametrize("name", SCALABILITY_DATASETS)
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_fig10_scalability(benchmark, name, fraction):
    graph = bench_graph(name)
    sample = sample_vertices(graph, fraction, seed=17)
    run_once(benchmark, lambda: mbc_star(sample, DEFAULT_TAU))


def main() -> None:
    rows = []
    for name in SCALABILITY_DATASETS:
        rows.extend(figure10_rows(name))
    print_table(
        "Figure 10 — scalability (tau=3, vertex samples, "
        "time/search-nodes)",
        ["dataset", "sample", "|E|", "MBC", "MBC-Adv", "MBC*"],
        rows)


if __name__ == "__main__":
    main()
