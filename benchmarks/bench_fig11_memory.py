"""Figure 11 — memory consumption of MBC* and PF*.

The paper measures max RSS via ``/usr/bin/time``; offline we use
``tracemalloc`` peaks, which isolate per-algorithm allocation.  Shape
expectation: peak memory is small and roughly linear in the number of
edges (both algorithms are O(m)-space; only one dichromatic network is
alive at any time).
"""

import tracemalloc

import pytest

from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star

try:
    from ._common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        print_table, run_once
except ImportError:
    from _common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        print_table, run_once


def peak_memory(fn) -> int:
    """Peak allocated bytes while running ``fn``."""
    tracemalloc.start()
    try:
        fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def figure11_row(name: str) -> list[object]:
    graph = bench_graph(name)
    mbc_peak = peak_memory(lambda: mbc_star(graph, DEFAULT_TAU))
    pf_peak = peak_memory(lambda: pf_star(graph))
    return [
        name, graph.num_edges,
        f"{mbc_peak / 2**20:.1f}MB",
        f"{pf_peak / 2**20:.1f}MB",
        f"{mbc_peak / max(graph.num_edges, 1):.0f}B/edge",
    ]


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_fig11_memory(benchmark, name):
    row = run_once(benchmark, lambda: figure11_row(name))
    print_table(
        f"Figure 11 row — {name}",
        ["dataset", "|E|", "MBC* peak", "PF* peak", "MBC* per edge"],
        [row])


def test_memory_scales_linearly_with_edges():
    """The Figure 11 claim: peak memory ~ linear in m.  Compare the
    bytes-per-edge of a small and a large dataset; they should be
    within a small constant factor."""
    small = bench_graph("bitcoin")
    large = bench_graph("sn2")
    per_edge_small = peak_memory(
        lambda: mbc_star(small, DEFAULT_TAU)) / small.num_edges
    per_edge_large = peak_memory(
        lambda: mbc_star(large, DEFAULT_TAU)) / large.num_edges
    ratio = per_edge_large / per_edge_small
    assert 0.05 < ratio < 20.0


def main() -> None:
    rows = [figure11_row(name) for name in ALL_DATASETS]
    print_table(
        "Figure 11 — memory consumption (tracemalloc peak)",
        ["dataset", "|E|", "MBC* peak", "PF* peak", "MBC* per edge"],
        rows)


if __name__ == "__main__":
    main()
