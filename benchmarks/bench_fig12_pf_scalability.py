"""Figure 12 — polarization-factor scalability (vary graph size).

Random vertex samples of 20%..100% of the DBLP and Douban stand-ins;
PF-E, PF-BS and PF* on each induced subgraph.  Paper shape: PF* wins
at every size and scales most gracefully.
"""

import pytest

from repro.core.pf import pf_binary_search, pf_enumeration, pf_star
from repro.core.stats import SearchStats

try:
    from ._common import SCALABILITY_DATASETS, bench_graph, \
        format_seconds, print_table, run_once, sample_vertices, timed
except ImportError:
    from _common import SCALABILITY_DATASETS, bench_graph, \
        format_seconds, print_table, run_once, sample_vertices, timed

FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]


def figure12_rows(name: str) -> list[list[object]]:
    graph = bench_graph(name)
    rows = []
    for fraction in FRACTIONS:
        sample = sample_vertices(graph, fraction, seed=23)
        s_e = SearchStats()
        beta_e, t_e = timed(lambda: pf_enumeration(sample, stats=s_e))
        s_bs = SearchStats()
        beta_bs, t_bs = timed(
            lambda: pf_binary_search(sample, stats=s_bs))
        s_star = SearchStats()
        beta_star, t_star = timed(lambda: pf_star(sample, stats=s_star))
        assert beta_e == beta_bs == beta_star, (name, fraction)
        rows.append([
            name, f"{int(fraction * 100)}%", sample.num_edges,
            beta_star,
            f"{format_seconds(t_e)}/{s_e.nodes}n",
            f"{format_seconds(t_bs)}/{s_bs.nodes}n",
            f"{format_seconds(t_star)}/{s_star.nodes}n",
        ])
    return rows


@pytest.mark.parametrize("name", SCALABILITY_DATASETS)
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_fig12_pf_scalability(benchmark, name, fraction):
    graph = bench_graph(name)
    sample = sample_vertices(graph, fraction, seed=23)
    run_once(benchmark, lambda: pf_star(sample))


def main() -> None:
    rows = []
    for name in SCALABILITY_DATASETS:
        rows.extend(figure12_rows(name))
    print_table(
        "Figure 12 — PF scalability (vertex samples, "
        "time/search-nodes)",
        ["dataset", "sample", "|E|", "beta", "PF-E", "PF-BS", "PF*"],
        rows)


if __name__ == "__main__":
    main()
