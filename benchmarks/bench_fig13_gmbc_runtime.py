"""Figure 13 — running time of gMBC and gMBC* on all graphs.

gMBC invokes MBC* independently for each tau (upwards, until empty);
gMBC* first computes beta with PF* and sweeps downwards seeding each
run with the previous optimum.  Paper shape: gMBC* consistently
faster; both cost roughly beta(G) MBC* invocations.
"""

import pytest

from repro.core.gmbc import gmbc_naive, gmbc_star
from repro.core.stats import SearchStats

try:
    from ._common import ALL_DATASETS, bench_graph, format_seconds, \
        print_table, run_once, timed
except ImportError:
    from _common import ALL_DATASETS, bench_graph, format_seconds, \
        print_table, run_once, timed


def figure13_row(name: str) -> list[object]:
    graph = bench_graph(name)
    stats_n = SearchStats()
    naive, t_naive = timed(lambda: gmbc_naive(graph, stats=stats_n))
    stats_s = SearchStats()
    star, t_star = timed(lambda: gmbc_star(graph, stats=stats_s))
    assert [c.size for c in naive] == [c.size for c in star], name
    return [
        name, len(star) - 1,
        f"{format_seconds(t_naive)}/{stats_n.nodes}n",
        f"{format_seconds(t_star)}/{stats_s.nodes}n",
        f"{t_naive / max(t_star, 1e-9):.1f}x",
    ]


@pytest.mark.parametrize("name", ALL_DATASETS)
@pytest.mark.parametrize("algorithm", ["gMBC", "gMBC*"])
def test_fig13_gmbc(benchmark, name, algorithm):
    graph = bench_graph(name)
    if algorithm == "gMBC":
        run_once(benchmark, lambda: gmbc_naive(graph))
    else:
        run_once(benchmark, lambda: gmbc_star(graph))


def main() -> None:
    rows = [figure13_row(name) for name in ALL_DATASETS]
    print_table(
        "Figure 13 — gMBC vs gMBC* (time/search-nodes)",
        ["dataset", "beta", "gMBC", "gMBC*", "speedup"],
        rows)


if __name__ == "__main__":
    main()
