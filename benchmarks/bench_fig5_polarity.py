"""Figure 5 — polarity of MBC* vs PolarSeeds (the larger, the better).

For each dataset: sample good seed pairs by the paper's rule
(negative edge, both endpoints with positive degree > t), run the
local-spectral PolarSeeds baseline per pair and average its Polarity;
compare with the Polarity of the maximum balanced clique from MBC*.
Paper shape: MBC* scores higher on every dataset (every clique edge
agrees with the polarized structure); HAM of the clique is exactly 1.
"""

import pytest

from repro.baselines.polarseeds import good_seed_pairs, polar_seeds
from repro.core.mbc_star import mbc_star
from repro.metrics.polarity import harmonic_polarization, polarity

try:
    from ._common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        print_table, run_once
except ImportError:
    from _common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        print_table, run_once

SEED_PAIRS = 30  # the paper uses 100; scaled with the datasets
SEED_DEGREE = 3


def figure5_row(name: str) -> list[object]:
    graph = bench_graph(name)
    clique = mbc_star(graph, DEFAULT_TAU)
    clique_polarity = polarity(graph, clique.left, clique.right)
    clique_ham = harmonic_polarization(
        graph, clique.left, clique.right)
    pairs = good_seed_pairs(
        graph, t=SEED_DEGREE, count=SEED_PAIRS, seed=31)
    if pairs:
        scores = [polar_seeds(graph, u, v).score for u, v in pairs]
        spectral = sum(scores) / len(scores)
    else:
        spectral = 0.0
    return [
        name, f"{clique_polarity:.2f}", f"{spectral:.2f}",
        f"{clique_ham:.2f}", len(pairs),
        "MBC*" if clique_polarity >= spectral else "PolarSeeds",
    ]


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_fig5_polarity(benchmark, name):
    row = run_once(benchmark, lambda: figure5_row(name))
    print_table(
        f"Figure 5 row — {name}",
        ["dataset", "MBC* polarity", "PolarSeeds polarity",
         "MBC* HAM", "#pairs", "winner"],
        [row])


def main() -> None:
    rows = [figure5_row(name) for name in ALL_DATASETS]
    print_table(
        "Figure 5 — Polarity, MBC* vs PolarSeeds "
        "(the larger, the better)",
        ["dataset", "MBC* polarity", "PolarSeeds polarity",
         "MBC* HAM", "#pairs", "winner"],
        rows)


if __name__ == "__main__":
    main()
