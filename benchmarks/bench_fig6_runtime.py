"""Figure 6 — running time on all graphs for maximum balanced clique
detection (tau = 3).

Four algorithms per dataset, as in the paper:

* ``MBC``        — enumeration baseline with EdgeReduction;
* ``MBC-noER``   — baseline without EdgeReduction;
* ``MBC*-withER``— MBC* burdened with EdgeReduction;
* ``MBC*``       — the paper's algorithm.

Shape expectations: MBC* is fastest; EdgeReduction helps MBC but is a
net overhead for MBC*.  Wall-clock and search-node counts are printed;
nodes are the scale-independent effort measure (see EXPERIMENTS.md).
"""

import pytest

from repro.core.mbc_baseline import mbc_baseline
from repro.core.mbc_star import mbc_star
from repro.core.stats import SearchStats

try:
    from ._common import ALL_DATASETS, BENCH_ENGINE, DEFAULT_TAU, \
        bench_graph, format_seconds, print_table, run_once, timed
except ImportError:
    from _common import ALL_DATASETS, BENCH_ENGINE, DEFAULT_TAU, \
        bench_graph, format_seconds, print_table, run_once, timed

ALGORITHMS = {
    "MBC": lambda g, s: mbc_baseline(
        g, DEFAULT_TAU, use_edge_reduction=True, stats=s),
    "MBC-noER": lambda g, s: mbc_baseline(
        g, DEFAULT_TAU, use_edge_reduction=False, stats=s),
    "MBC*-withER": lambda g, s: mbc_star(
        g, DEFAULT_TAU, use_edge_reduction=True, stats=s,
        engine=BENCH_ENGINE),
    "MBC*": lambda g, s: mbc_star(
        g, DEFAULT_TAU, stats=s, engine=BENCH_ENGINE),
}


def figure6_row(name: str) -> list[object]:
    graph = bench_graph(name)
    row: list[object] = [name]
    sizes = set()
    for label, solver in ALGORITHMS.items():
        stats = SearchStats()
        clique, seconds = timed(lambda: solver(graph, stats))
        sizes.add(clique.size)
        row.append(f"{format_seconds(seconds)}/{stats.nodes}n")
    assert len(sizes) == 1, f"solvers disagree on {name}: {sizes}"
    return row


@pytest.mark.parametrize("name", ALL_DATASETS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig6_runtime(benchmark, name, algorithm):
    graph = bench_graph(name)
    solver = ALGORITHMS[algorithm]
    clique = run_once(
        benchmark, lambda: solver(graph, SearchStats()))
    assert clique.is_empty or clique.satisfies(DEFAULT_TAU)


def main() -> None:
    rows = [figure6_row(name) for name in ALL_DATASETS]
    print_table(
        "Figure 6 — MBC detection runtime (tau=3), time/search-nodes",
        ["dataset", *ALGORITHMS],
        rows)


if __name__ == "__main__":
    main()
