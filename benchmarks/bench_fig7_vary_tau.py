"""Figure 7 — varying the polarization threshold tau (3..7).

MBC vs MBC* on two datasets.  Paper shape: MBC gets faster as tau grows
(EdgeReduction's pruning power strengthens) while MBC* is nearly
insensitive to tau, and MBC* wins throughout.
"""

import pytest

from repro.core.mbc_baseline import mbc_baseline
from repro.core.mbc_star import mbc_star
from repro.core.stats import SearchStats

try:
    from ._common import bench_graph, format_seconds, print_table, \
        run_once, timed
except ImportError:
    from _common import bench_graph, format_seconds, print_table, \
        run_once, timed

DATASETS = ["douban", "dblp"]
TAUS = [3, 4, 5, 6, 7]


def figure7_rows(name: str) -> list[list[object]]:
    graph = bench_graph(name)
    rows = []
    for tau in TAUS:
        stats_b = SearchStats()
        baseline, t_baseline = timed(
            lambda: mbc_baseline(graph, tau, stats=stats_b))
        stats_s = SearchStats()
        star, t_star = timed(
            lambda: mbc_star(graph, tau, stats=stats_s))
        assert baseline.size == star.size, (name, tau)
        rows.append([
            name, tau, star.size,
            f"{format_seconds(t_baseline)}/{stats_b.nodes}n",
            f"{format_seconds(t_star)}/{stats_s.nodes}n",
        ])
    return rows


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("tau", TAUS)
@pytest.mark.parametrize("algorithm", ["MBC", "MBC*"])
def test_fig7_vary_tau(benchmark, name, tau, algorithm):
    graph = bench_graph(name)
    if algorithm == "MBC":
        run_once(benchmark, lambda: mbc_baseline(graph, tau))
    else:
        run_once(benchmark, lambda: mbc_star(graph, tau))


def main() -> None:
    rows = []
    for name in DATASETS:
        rows.extend(figure7_rows(name))
    print_table(
        "Figure 7 — varying tau (time/search-nodes)",
        ["dataset", "tau", "|C*|", "MBC", "MBC*"],
        rows)


if __name__ == "__main__":
    main()
