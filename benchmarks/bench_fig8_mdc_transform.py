"""Figure 8 — influence of the MDC transformation.

MBC* vs MBC-Adv, where MBC-Adv borrows the unsigned pruning toolbox
(degree pruning + colouring bounds, signs ignored) *without* the
dichromatic transformation.  Paper shape: MBC* wins by more than an
order of magnitude, demonstrating the transformation itself — not the
borrowed bounds — is the main lever.
"""

import pytest

from repro.core.mbc_adv import mbc_adv
from repro.core.mbc_star import mbc_star
from repro.core.stats import SearchStats

try:
    from ._common import DEFAULT_TAU, bench_graph, format_seconds, \
        print_table, run_once, timed
except ImportError:
    from _common import DEFAULT_TAU, bench_graph, format_seconds, \
        print_table, run_once, timed

DATASETS = ["epinions", "dblp", "douban", "yahoosong"]


def figure8_row(name: str) -> list[object]:
    graph = bench_graph(name)
    stats_adv = SearchStats()
    adv, t_adv = timed(
        lambda: mbc_adv(graph, DEFAULT_TAU, stats=stats_adv))
    stats_star = SearchStats()
    star, t_star = timed(
        lambda: mbc_star(graph, DEFAULT_TAU, stats=stats_star))
    assert adv.size == star.size, name
    return [
        name, star.size,
        f"{format_seconds(t_adv)}/{stats_adv.nodes}n",
        f"{format_seconds(t_star)}/{stats_star.nodes}n",
        f"{t_adv / max(t_star, 1e-9):.1f}x",
    ]


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("algorithm", ["MBC-Adv", "MBC*"])
def test_fig8_transform(benchmark, name, algorithm):
    graph = bench_graph(name)
    if algorithm == "MBC-Adv":
        run_once(benchmark, lambda: mbc_adv(graph, DEFAULT_TAU))
    else:
        run_once(benchmark, lambda: mbc_star(graph, DEFAULT_TAU))


def main() -> None:
    rows = [figure8_row(name) for name in DATASETS]
    print_table(
        "Figure 8 — influence of the MDC transformation "
        "(time/search-nodes)",
        ["dataset", "|C*|", "MBC-Adv", "MBC*", "speedup"],
        rows)


if __name__ == "__main__":
    main()
