"""Figure 9 — running time on all graphs for the polarization factor.

Four algorithms per dataset: PF-E (enumeration), PF-BS (binary search
over MBC* feasibility probes), PF*-DOrder (PF* with the degeneracy
ordering) and PF* (with the polarization ordering).  Paper shape:
PF* fastest; PF-BS between; PF-E slowest; PF* at least as fast as
PF*-DOrder.
"""

import pytest

from repro.core.pf import pf_binary_search, pf_enumeration, pf_star
from repro.core.stats import SearchStats

try:
    from ._common import ALL_DATASETS, bench_graph, format_seconds, \
        print_table, run_once, timed
except ImportError:
    from _common import ALL_DATASETS, bench_graph, format_seconds, \
        print_table, run_once, timed

ALGORITHMS = {
    "PF-E": lambda g, s: pf_enumeration(g, stats=s),
    "PF-BS": lambda g, s: pf_binary_search(g, stats=s),
    "PF*-DOrder": lambda g, s: pf_star(
        g, stats=s, ordering="degeneracy"),
    "PF*": lambda g, s: pf_star(g, stats=s),
}


def figure9_row(name: str) -> list[object]:
    graph = bench_graph(name)
    row: list[object] = [name]
    betas = set()
    for label, solver in ALGORITHMS.items():
        stats = SearchStats()
        beta, seconds = timed(lambda: solver(graph, stats))
        betas.add(beta)
        row.append(f"{format_seconds(seconds)}/{stats.nodes}n")
    assert len(betas) == 1, f"solvers disagree on {name}: {betas}"
    row.insert(1, betas.pop())
    return row


@pytest.mark.parametrize("name", ALL_DATASETS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig9_pf_runtime(benchmark, name, algorithm):
    graph = bench_graph(name)
    solver = ALGORITHMS[algorithm]
    beta = run_once(benchmark, lambda: solver(graph, SearchStats()))
    assert beta >= 0


def main() -> None:
    rows = [figure9_row(name) for name in ALL_DATASETS]
    print_table(
        "Figure 9 — polarization factor runtime (time/search-nodes)",
        ["dataset", "beta", *ALGORITHMS],
        rows)


if __name__ == "__main__":
    main()
