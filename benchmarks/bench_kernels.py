"""Kernel microbenchmark — set vs bitset engine (perf baseline).

Two levels, matching how the engines differ in practice:

* **micro** — the four hot kernels (candidate intersection, k-core
  peeling, bicore peeling, colouring bound) timed head-to-head on the
  per-vertex dichromatic networks that MBC* actually builds, so the
  masks see realistic sizes and densities;
* **end-to-end** — ``mbc_star`` on every stand-in dataset with both
  engines, asserting identical optimum sizes; this is the wall-clock
  number behind the Figure 6 acceptance criterion.

Standalone mode writes ``BENCH_kernels.json`` next to the repo root
(``python benchmarks/bench_kernels.py``), giving the committed
before/after record; the pytest targets wire the same workloads into
pytest-benchmark.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.core.mbc_star import mbc_star
from repro.dichromatic.build import build_dichromatic_network_bits
from repro.dichromatic.cores import bicore_active, \
    coloring_upper_bound_active, k_core_active
from repro.kernels.active import bicore_active_mask, \
    coloring_upper_bound_active_mask, k_core_active_mask

try:
    from ._common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        format_seconds, print_table, run_once, timed
except ImportError:
    from _common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        format_seconds, print_table, run_once, timed

#: Dataset whose ego networks feed the micro level (mid-sized, dense
#: enough that every kernel has real work).
MICRO_DATASET = "douban"

#: How many of the largest ego networks to keep.
MICRO_NETWORKS = 40


def _micro_networks():
    """The largest dichromatic networks of the micro dataset."""
    graph = bench_graph(MICRO_DATASET)
    networks = [
        build_dichromatic_network_bits(graph, u)
        for u in graph.vertices()]
    networks.sort(key=lambda n: n.num_edges, reverse=True)
    return networks[:MICRO_NETWORKS]


def _micro_workloads():
    """(name, set_thunk, bitset_thunk) triples over the ego networks."""
    networks = _micro_networks()
    k = DEFAULT_TAU
    prepared = []
    for network in networks:
        adj = network.adjacency_bits()
        left = network.left_bits()
        active_mask = network.all_bits()
        active_set = set(network.vertices())
        prepared.append((network, adj, left, active_mask, active_set))

    def run_intersection_set():
        total = 0
        for network, _adj, _left, _mask, active in prepared:
            for v in network.vertices():
                total += len(network.neighbors(v) & active)
        return total

    def run_intersection_bitset():
        total = 0
        for _network, adj, _left, mask, _active in prepared:
            for row in adj:
                total += (row & mask).bit_count()
        return total

    def run_kcore_set():
        return [
            len(k_core_active(network, k, active))
            for network, _adj, _left, _mask, active in prepared]

    def run_kcore_bitset():
        return [
            k_core_active_mask(adj, k, mask).bit_count()
            for _network, adj, _left, mask, _active in prepared]

    def run_bicore_set():
        return [
            len(bicore_active(network, k, k, active))
            for network, _adj, _left, _mask, active in prepared]

    def run_bicore_bitset():
        return [
            bicore_active_mask(adj, left, k, k, mask).bit_count()
            for _network, adj, left, mask, _active in prepared]

    def run_coloring_set():
        return [
            coloring_upper_bound_active(network, active)
            for network, _adj, _left, _mask, active in prepared]

    def run_coloring_bitset():
        return [
            coloring_upper_bound_active_mask(adj, mask)
            for _network, adj, _left, mask, _active in prepared]

    return [
        ("intersection", run_intersection_set, run_intersection_bitset),
        ("k_core", run_kcore_set, run_kcore_bitset),
        ("bicore", run_bicore_set, run_bicore_bitset),
        ("coloring_ub", run_coloring_set, run_coloring_bitset),
    ]


def _time_best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def collect_micro() -> list[dict]:
    """Per-kernel set vs bitset timings (best of three)."""
    rows = []
    for name, set_fn, bitset_fn in _micro_workloads():
        set_seconds = _time_best_of(set_fn)
        bitset_seconds = _time_best_of(bitset_fn)
        rows.append({
            "kernel": name,
            "set_seconds": round(set_seconds, 6),
            "bitset_seconds": round(bitset_seconds, 6),
            "speedup": round(set_seconds / bitset_seconds, 2),
        })
    return rows


def collect_end_to_end() -> dict:
    """``mbc_star`` wall-clock per dataset, both engines."""
    datasets = []
    total_set = 0.0
    total_bitset = 0.0
    for name in ALL_DATASETS:
        graph = bench_graph(name)
        set_clique, set_seconds = timed(
            lambda: mbc_star(graph, DEFAULT_TAU, engine="set"))
        bitset_clique, bitset_seconds = timed(
            lambda: mbc_star(graph, DEFAULT_TAU, engine="bitset"))
        assert set_clique.size == bitset_clique.size, (
            f"engines disagree on {name}: "
            f"{set_clique.size} != {bitset_clique.size}")
        total_set += set_seconds
        total_bitset += bitset_seconds
        datasets.append({
            "dataset": name,
            "size": set_clique.size,
            "set_seconds": round(set_seconds, 4),
            "bitset_seconds": round(bitset_seconds, 4),
            "speedup": round(set_seconds / bitset_seconds, 2),
        })
    return {
        "tau": DEFAULT_TAU,
        "datasets": datasets,
        "total_set_seconds": round(total_set, 4),
        "total_bitset_seconds": round(total_bitset, 4),
        "total_speedup": round(total_set / total_bitset, 2),
    }


@pytest.mark.parametrize(
    "kernel", ["intersection", "k_core", "bicore", "coloring_ub"])
@pytest.mark.parametrize("engine", ["set", "bitset"])
def test_kernel_micro(benchmark, kernel, engine):
    workloads = {name: (s, b) for name, s, b in _micro_workloads()}
    set_fn, bitset_fn = workloads[kernel]
    run_once(benchmark, set_fn if engine == "set" else bitset_fn)


@pytest.mark.parametrize("engine", ["set", "bitset"])
def test_mbc_star_end_to_end(benchmark, engine):
    graph = bench_graph(MICRO_DATASET)
    clique = run_once(
        benchmark, lambda: mbc_star(graph, DEFAULT_TAU, engine=engine))
    assert clique.is_empty or clique.satisfies(DEFAULT_TAU)


def main() -> None:
    micro = collect_micro()
    end_to_end = collect_end_to_end()
    print_table(
        f"Kernel microbench — {MICRO_NETWORKS} largest ego networks "
        f"of {MICRO_DATASET}",
        ["kernel", "set", "bitset", "speedup"],
        [[row["kernel"],
          format_seconds(row["set_seconds"]),
          format_seconds(row["bitset_seconds"]),
          f"{row['speedup']:.1f}x"] for row in micro])
    print_table(
        f"MBC* end-to-end (tau={DEFAULT_TAU}), set vs bitset engine",
        ["dataset", "set", "bitset", "speedup", "size"],
        [[row["dataset"],
          format_seconds(row["set_seconds"]),
          format_seconds(row["bitset_seconds"]),
          f"{row['speedup']:.1f}x",
          row["size"]] for row in end_to_end["datasets"]])
    print(
        f"\nTOTAL set={format_seconds(end_to_end['total_set_seconds'])} "
        f"bitset={format_seconds(end_to_end['total_bitset_seconds'])} "
        f"speedup={end_to_end['total_speedup']:.2f}x")
    if "--no-json" not in sys.argv:
        payload = {
            "micro_dataset": MICRO_DATASET,
            "micro_networks": MICRO_NETWORKS,
            "micro": micro,
            "end_to_end": end_to_end,
        }
        out = Path(__file__).resolve().parent.parent / \
            "BENCH_kernels.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
