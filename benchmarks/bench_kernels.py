"""Kernel microbenchmark — set vs bitset vs numpy engine.

Two levels, matching how the engines differ in practice:

* **micro** — the four hot kernels (candidate intersection, k-core
  peeling, bicore peeling, colouring bound) timed head-to-head on the
  per-vertex dichromatic networks that MBC* actually builds, so the
  masks see realistic sizes and densities;
* **end-to-end** — ``mbc_star`` on every stand-in dataset with every
  available engine, asserting identical optimum sizes; this is the
  wall-clock number behind the Figure 6 acceptance criterion.

The numpy column runs only when the optional dependency is installed
(``pip install repro[numpy]``); without it the harness degrades to the
historical two-way comparison and records ``null`` numpy timings.

Standalone mode writes ``BENCH_kernels.json`` next to the repo root
(``python benchmarks/bench_kernels.py``), giving the committed
before/after record; the pytest targets wire the same workloads into
pytest-benchmark.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.core.mbc_star import mbc_star
from repro.dichromatic.build import build_dichromatic_network_bits
from repro.dichromatic.cores import bicore_active, \
    coloring_upper_bound_active, k_core_active
from repro.kernels import available_engines
from repro.kernels import npmask
from repro.kernels.active import bicore_active_mask, \
    coloring_upper_bound_active_mask, k_core_active_mask
from repro.kernels.npmask import HAVE_NUMPY

try:
    from ._common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        format_seconds, print_table, run_once, timed
except ImportError:
    from _common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        format_seconds, print_table, run_once, timed

#: Dataset whose ego networks feed the micro level (mid-sized, dense
#: enough that every kernel has real work).
MICRO_DATASET = "douban"

#: How many of the largest ego networks to keep.
MICRO_NETWORKS = 40

#: Engines compared at both levels (numpy only when importable).
BENCH_ENGINES = tuple(available_engines())


def _micro_networks():
    """The largest dichromatic networks of the micro dataset."""
    graph = bench_graph(MICRO_DATASET)
    networks = [
        build_dichromatic_network_bits(graph, u)
        for u in graph.vertices()]
    networks.sort(key=lambda n: n.num_edges, reverse=True)
    return networks[:MICRO_NETWORKS]


def _micro_workloads():
    """(name, {engine: thunk}) pairs over the ego networks."""
    networks = _micro_networks()
    k = DEFAULT_TAU
    prepared = []
    for network in networks:
        adj = network.adjacency_bits()
        left = network.left_bits()
        active_mask = network.all_bits()
        active_set = set(network.vertices())
        n = network.num_vertices
        if HAVE_NUMPY:
            mat = npmask.matrix_from_masks(adj, n)
            left_row = npmask.row_from_mask(left, n)
            active_row = npmask.row_from_mask(active_mask, n)
        else:
            mat = left_row = active_row = None
        prepared.append((
            network, adj, left, active_mask, active_set,
            mat, left_row, active_row))

    def run_intersection_set():
        total = 0
        for item in prepared:
            network, active = item[0], item[4]
            for v in network.vertices():
                total += len(network.neighbors(v) & active)
        return total

    def run_intersection_bitset():
        total = 0
        for item in prepared:
            adj, mask = item[1], item[3]
            for row in adj:
                total += (row & mask).bit_count()
        return total

    def run_intersection_numpy():
        total = 0
        for item in prepared:
            mat, active_row = item[5], item[7]
            total += int(npmask.degrees_in_active(mat, active_row).sum())
        return total

    def run_kcore_set():
        return [
            len(k_core_active(item[0], k, item[4]))
            for item in prepared]

    def run_kcore_bitset():
        return [
            k_core_active_mask(item[1], k, item[3]).bit_count()
            for item in prepared]

    def run_kcore_numpy():
        return [
            npmask.row_count(npmask.k_core_active(item[5], k, item[7]))
            for item in prepared]

    def run_bicore_set():
        return [
            len(bicore_active(item[0], k, k, item[4]))
            for item in prepared]

    def run_bicore_bitset():
        return [
            bicore_active_mask(item[1], item[2], k, k,
                               item[3]).bit_count()
            for item in prepared]

    def run_bicore_numpy():
        return [
            npmask.row_count(
                npmask.bicore_active(item[5], item[6], k, k, item[7]))
            for item in prepared]

    def run_coloring_set():
        return [
            coloring_upper_bound_active(item[0], item[4])
            for item in prepared]

    def run_coloring_bitset():
        return [
            coloring_upper_bound_active_mask(item[1], item[3])
            for item in prepared]

    def run_coloring_numpy():
        return [
            npmask.coloring_upper_bound_active(item[5], item[7])
            for item in prepared]

    workloads = [
        ("intersection", {
            "set": run_intersection_set,
            "bitset": run_intersection_bitset,
            "numpy": run_intersection_numpy}),
        ("k_core", {
            "set": run_kcore_set,
            "bitset": run_kcore_bitset,
            "numpy": run_kcore_numpy}),
        ("bicore", {
            "set": run_bicore_set,
            "bitset": run_bicore_bitset,
            "numpy": run_bicore_numpy}),
        ("coloring_ub", {
            "set": run_coloring_set,
            "bitset": run_coloring_bitset,
            "numpy": run_coloring_numpy}),
    ]
    if not HAVE_NUMPY:
        workloads = [
            (name, {e: fn for e, fn in fns.items() if e != "numpy"})
            for name, fns in workloads]
    return workloads


def _time_best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def collect_micro() -> list[dict]:
    """Per-kernel engine timings (best of three).

    Every engine of the same kernel must agree on its check value —
    the total intersection count or the surviving core/bound numbers —
    so a timing row can never come from a wrong answer.
    """
    rows = []
    for name, engine_fns in _micro_workloads():
        results = {e: fn() for e, fn in engine_fns.items()}
        reference = results["set"]
        for engine, value in results.items():
            assert value == reference, (
                f"{name}: engine {engine} disagrees with set")
        row: dict = {"kernel": name}
        seconds = {
            e: _time_best_of(fn) for e, fn in engine_fns.items()}
        set_seconds = seconds["set"]
        for engine in BENCH_ENGINES:
            row[f"{engine}_seconds"] = (
                round(seconds[engine], 6)
                if engine in seconds else None)
        row["bitset_speedup"] = round(
            set_seconds / seconds["bitset"], 2)
        if "numpy" in seconds:
            row["numpy_speedup"] = round(
                set_seconds / seconds["numpy"], 2)
            row["numpy_vs_bitset"] = round(
                seconds["bitset"] / seconds["numpy"], 2)
        else:
            row["numpy_speedup"] = None
            row["numpy_vs_bitset"] = None
        rows.append(row)
    return rows


def collect_end_to_end() -> dict:
    """``mbc_star`` wall-clock per dataset, every available engine."""
    datasets = []
    totals = {engine: 0.0 for engine in BENCH_ENGINES}
    for name in ALL_DATASETS:
        graph = bench_graph(name)
        row: dict = {"dataset": name}
        sizes = {}
        for engine in BENCH_ENGINES:
            clique, seconds = timed(
                lambda e=engine: mbc_star(graph, DEFAULT_TAU, engine=e))
            sizes[engine] = clique.size
            totals[engine] += seconds
            row[f"{engine}_seconds"] = round(seconds, 4)
        assert len(set(sizes.values())) == 1, (
            f"engines disagree on {name}: {sizes}")
        row["size"] = sizes["set"]
        row["bitset_speedup"] = round(
            row["set_seconds"] / row["bitset_seconds"], 2)
        if "numpy" in sizes:
            row["numpy_speedup"] = round(
                row["set_seconds"] / row["numpy_seconds"], 2)
        else:
            row["numpy_speedup"] = None
        datasets.append(row)
    payload: dict = {
        "tau": DEFAULT_TAU,
        "engines": list(BENCH_ENGINES),
        "datasets": datasets,
    }
    for engine in BENCH_ENGINES:
        payload[f"total_{engine}_seconds"] = round(totals[engine], 4)
    payload["total_bitset_speedup"] = round(
        totals["set"] / totals["bitset"], 2)
    payload["total_numpy_speedup"] = (
        round(totals["set"] / totals["numpy"], 2)
        if "numpy" in totals else None)
    return payload


def _engine_params():
    params = [pytest.param("set"), pytest.param("bitset")]
    params.append(pytest.param("numpy", marks=pytest.mark.skipif(
        not HAVE_NUMPY, reason="numpy not installed")))
    return params


@pytest.mark.parametrize(
    "kernel", ["intersection", "k_core", "bicore", "coloring_ub"])
@pytest.mark.parametrize("engine", _engine_params())
def test_kernel_micro(benchmark, kernel, engine):
    workloads = dict(_micro_workloads())
    run_once(benchmark, workloads[kernel][engine])


@pytest.mark.parametrize("engine", _engine_params())
def test_mbc_star_end_to_end(benchmark, engine):
    graph = bench_graph(MICRO_DATASET)
    clique = run_once(
        benchmark, lambda: mbc_star(graph, DEFAULT_TAU, engine=engine))
    assert clique.is_empty or clique.satisfies(DEFAULT_TAU)


def _seconds_cell(row: dict, engine: str) -> str:
    value = row.get(f"{engine}_seconds")
    return format_seconds(value) if value is not None else "-"


def _speedup_cell(row: dict, key: str) -> str:
    value = row.get(key)
    return f"{value:.1f}x" if value is not None else "-"


def main() -> None:
    micro = collect_micro()
    end_to_end = collect_end_to_end()
    engine_cols = list(BENCH_ENGINES)
    print_table(
        f"Kernel microbench — {MICRO_NETWORKS} largest ego networks "
        f"of {MICRO_DATASET}",
        ["kernel", *engine_cols, "bitset", "numpy", "np/bits"],
        [[row["kernel"],
          *[_seconds_cell(row, e) for e in engine_cols],
          _speedup_cell(row, "bitset_speedup"),
          _speedup_cell(row, "numpy_speedup"),
          _speedup_cell(row, "numpy_vs_bitset")] for row in micro])
    print_table(
        f"MBC* end-to-end (tau={DEFAULT_TAU}), "
        f"engines: {', '.join(engine_cols)}",
        ["dataset", *engine_cols, "bitset", "numpy", "size"],
        [[row["dataset"],
          *[_seconds_cell(row, e) for e in engine_cols],
          _speedup_cell(row, "bitset_speedup"),
          _speedup_cell(row, "numpy_speedup"),
          row["size"]] for row in end_to_end["datasets"]])
    totals = " ".join(
        f"{engine}={format_seconds(end_to_end[f'total_{engine}_seconds'])}"
        for engine in engine_cols)
    numpy_total = end_to_end["total_numpy_speedup"]
    print(
        f"\nTOTAL {totals} "
        f"bitset_speedup={end_to_end['total_bitset_speedup']:.2f}x"
        + (f" numpy_speedup={numpy_total:.2f}x"
           if numpy_total is not None else ""))
    if "--no-json" not in sys.argv:
        payload = {
            "micro_dataset": MICRO_DATASET,
            "micro_networks": MICRO_NETWORKS,
            "micro": micro,
            "end_to_end": end_to_end,
        }
        out = Path(__file__).resolve().parent.parent / \
            "BENCH_kernels.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
