"""Parallel fan-out scaling benchmark — serial vs ``--workers N``.

Runs ``mbc_star`` on every stand-in dataset serially and through the
fan-out engine at 2 and 4 workers, asserting identical optimum sizes
(the fan-out's correctness contract) and recording wall-clock per
dataset plus totals.

The committed ``BENCH_parallel.json`` records the machine it ran on:
scaling is bounded above by the CPU count the container exposes
(``os.cpu_count`` / ``sched_getaffinity``), and on a single-core box
the speedup reflects only the dispatcher-side gains (cost ordering,
pre-dispatch bound, live incumbent) minus pool overhead — there is no
second core to win on.  ``MIN_POOL_TASKS`` keeps small sweeps
in-process for exactly that reason.

Standalone mode writes ``BENCH_parallel.json`` next to the repo root
(``python benchmarks/bench_parallel.py``); the pytest targets wire the
same workloads into pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star

try:
    from ._common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        format_seconds, print_table, run_once, timed
except ImportError:
    from _common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        format_seconds, print_table, run_once, timed

WORKER_COUNTS = [2, 4]


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def collect_scaling() -> dict:
    """``mbc_star`` wall-clock per dataset: serial vs worker counts."""
    datasets = []
    totals = {"serial": 0.0}
    totals.update({f"workers_{w}": 0.0 for w in WORKER_COUNTS})
    for name in ALL_DATASETS:
        graph = bench_graph(name)
        serial_clique, serial_seconds = timed(
            lambda: mbc_star(graph, DEFAULT_TAU))
        row = {
            "dataset": name,
            "size": serial_clique.size,
            "serial_seconds": round(serial_seconds, 4),
        }
        totals["serial"] += serial_seconds
        for workers in WORKER_COUNTS:
            clique, seconds = timed(
                lambda: mbc_star(graph, DEFAULT_TAU, parallel=workers))
            assert clique.size == serial_clique.size, (
                f"fan-out disagrees on {name} at {workers} workers: "
                f"{clique.size} != {serial_clique.size}")
            row[f"workers_{workers}_seconds"] = round(seconds, 4)
            row[f"workers_{workers}_speedup"] = round(
                serial_seconds / seconds, 2) if seconds else None
            totals[f"workers_{workers}"] += seconds

        datasets.append(row)
    result = {
        "tau": DEFAULT_TAU,
        "worker_counts": WORKER_COUNTS,
        "datasets": datasets,
        "total_serial_seconds": round(totals["serial"], 4),
    }
    for workers in WORKER_COUNTS:
        total = totals[f"workers_{workers}"]
        result[f"total_workers_{workers}_seconds"] = round(total, 4)
        result[f"total_workers_{workers}_speedup"] = round(
            totals["serial"] / total, 2) if total else None
    return result


@pytest.mark.parametrize("workers", [1] + WORKER_COUNTS)
def test_mbc_star_scaling(benchmark, workers):
    graph = bench_graph("douban")
    clique = run_once(
        benchmark,
        lambda: mbc_star(graph, DEFAULT_TAU, parallel=workers))
    assert clique.is_empty or clique.satisfies(DEFAULT_TAU)


@pytest.mark.parametrize("workers", [1, 2])
def test_pf_star_scaling(benchmark, workers):
    graph = bench_graph("bitcoin")
    beta = run_once(benchmark, lambda: pf_star(graph, parallel=workers))
    assert beta >= 0


def main() -> None:
    scaling = collect_scaling()
    headers = ["dataset", "serial"]
    for workers in WORKER_COUNTS:
        headers += [f"{workers}w", f"{workers}w speedup"]
    headers.append("size")
    rows = []
    for row in scaling["datasets"]:
        cells = [row["dataset"], format_seconds(row["serial_seconds"])]
        for workers in WORKER_COUNTS:
            cells += [
                format_seconds(row[f"workers_{workers}_seconds"]),
                f"{row[f'workers_{workers}_speedup']:.2f}x"]
        cells.append(row["size"])
        rows.append(cells)
    print_table(
        f"MBC* fan-out scaling (tau={DEFAULT_TAU})", headers, rows)
    totals = [f"serial={format_seconds(scaling['total_serial_seconds'])}"]
    for workers in WORKER_COUNTS:
        totals.append(
            f"{workers}w="
            f"{format_seconds(scaling[f'total_workers_{workers}_seconds'])}"
            f" ({scaling[f'total_workers_{workers}_speedup']:.2f}x)")
    print("\nTOTAL " + "  ".join(totals))
    cpus = _available_cpus()
    print(f"available CPUs: {cpus}")
    if "--no-json" not in sys.argv:
        payload = {
            "cpu_count": cpus,
            "hardware_note": (
                "speedup is bounded by the CPUs the container exposes; "
                "with cpu_count=1 only the dispatcher-side gains "
                "(cost ordering, pre-dispatch bound, shared incumbent) "
                "are visible and pool overhead is pure cost"),
            "scaling": scaling,
        }
        out = Path(__file__).resolve().parent.parent / \
            "BENCH_parallel.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
