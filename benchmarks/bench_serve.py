"""Serving benchmark — request latency and throughput over HTTP.

The serve layer's acceptance criterion: on real stand-in datasets,
answering an identical repeat request from the keyed result cache
must be at least 10x faster (p50) than the cold solve of the same
graph — i.e. the cache turns solver cost into transport cost — and
the daemon must sustain concurrent clients (throughput is measured
at every concurrency in :data:`CONCURRENCIES`).

Per dataset the load generator boots a
:class:`~repro.serve.BackgroundServer`, measures

* **cold** latency: ``POST /cache/clear`` before every sample, so
  each request pays a full ``mbc_star`` solve;
* **cached** latency: one priming request, then repeats that must all
  report ``"cache": "hit"``;
* **throughput**: N concurrent clients firing cached requests
  back-to-back, wall-clocked end to end.

Standalone mode writes ``BENCH_serve.json`` at the repo root
(``python benchmarks/bench_serve.py``); CI re-validates the committed
payload against :func:`validate_payload` and re-runs a shrunken live
smoke (``REPRO_BENCH_SCALE``).  The pytest target wires the
cached-request round trip into pytest-benchmark.
"""

from __future__ import annotations

import json
import statistics
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.serve import BackgroundServer, SolverService

try:
    from ._common import BENCH_ENGINE, BENCH_SCALE, DEFAULT_TAU, \
        bench_graph, print_table, run_once
except ImportError:
    from _common import BENCH_ENGINE, BENCH_SCALE, DEFAULT_TAU, \
        bench_graph, print_table, run_once

#: Datasets the serving criterion is measured on — chosen so the cold
#: solve is long enough (tens of ms at scale 1.0) that the 10x cached
#: floor measures the cache, not timer noise.
BENCH_DATASETS = ("douban", "yahoosong")

#: Cold solves sampled per dataset (each behind a cache clear).
COLD_SAMPLES = 5

#: Cached requests sampled per dataset.
CACHED_SAMPLES = 40

#: Client concurrencies the throughput sweep runs at.
CONCURRENCIES = (2, 8)

#: Requests issued per throughput measurement (split across clients).
THROUGHPUT_REQUESTS = 80

#: Acceptance floor: cached p50 must beat cold p50 by this factor.
MIN_CACHED_SPEEDUP = 10.0


def _post(url: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=600) as response:
        body = json.loads(response.read())
    assert isinstance(body, dict)
    return body


def _percentile(samples: "list[float]", q: float) -> float:
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(q * len(ranked)))]


def _solve_payload(dataset: str) -> dict:
    return {
        "graph": f"dataset:{dataset}@{BENCH_SCALE}",
        "problem": "mbc",
        "tau": DEFAULT_TAU,
        "engine": BENCH_ENGINE,
    }


def _timed_request(url: str, payload: dict,
                   expect_cache: "str | None" = None) -> float:
    started = time.perf_counter()
    body = _post(url, "/solve", payload)
    elapsed = time.perf_counter() - started
    assert body["status"] == "optimal", body
    if expect_cache is not None:
        assert body["cache"] == expect_cache, body["cache"]
    return elapsed


def _throughput(url: str, payload: dict, concurrency: int) -> dict:
    """Wall-clock ``THROUGHPUT_REQUESTS`` cached requests split across
    ``concurrency`` persistent clients."""
    per_client = THROUGHPUT_REQUESTS // concurrency
    errors: "list[BaseException]" = []

    def client() -> None:
        try:
            for _ in range(per_client):
                _timed_request(url, payload, expect_cache="hit")
        except BaseException as exc:  # noqa: BLE001 — reraised below
            errors.append(exc)

    threads = [threading.Thread(target=client)
               for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    total = per_client * concurrency
    return {
        "concurrency": concurrency,
        "requests": total,
        "seconds": round(elapsed, 6),
        "rps": round(total / elapsed, 1),
    }


def _bench_dataset(url: str, dataset: str) -> dict:
    """Measure one dataset through a live daemon; the payload row."""
    payload = _solve_payload(dataset)
    graph = bench_graph(dataset)

    cold: "list[float]" = []
    for _ in range(COLD_SAMPLES):
        _post(url, "/cache/clear", {})
        cold.append(_timed_request(url, payload, expect_cache="miss"))

    _post(url, "/cache/clear", {})
    _timed_request(url, payload, expect_cache="miss")  # prime
    cached = [_timed_request(url, payload, expect_cache="hit")
              for _ in range(CACHED_SAMPLES)]

    cold_p50 = statistics.median(cold)
    cached_p50 = statistics.median(cached)
    return {
        "dataset": dataset,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "cold_p50_ms": round(cold_p50 * 1000, 3),
        "cold_p99_ms": round(_percentile(cold, 0.99) * 1000, 3),
        "cached_p50_ms": round(cached_p50 * 1000, 3),
        "cached_p99_ms": round(_percentile(cached, 0.99) * 1000, 3),
        "cached_speedup": round(cold_p50 / cached_p50, 1),
        "throughput": [_throughput(url, payload, concurrency)
                       for concurrency in CONCURRENCIES],
    }


def collect() -> dict:
    """The whole payload: one daemon, every dataset measured live."""
    service = SolverService(default_engine=BENCH_ENGINE)
    with BackgroundServer(service) as server:
        rows = [_bench_dataset(server.url, dataset)
                for dataset in BENCH_DATASETS]
    return {
        "engine": BENCH_ENGINE,
        "tau": DEFAULT_TAU,
        "scale": BENCH_SCALE,
        "cold_samples": COLD_SAMPLES,
        "cached_samples": CACHED_SAMPLES,
        "concurrencies": list(CONCURRENCIES),
        "datasets": rows,
    }


def validate_payload(payload: dict) -> None:
    """Schema + acceptance check of a ``BENCH_serve.json`` payload.

    Raises ``AssertionError`` on any violation; CI runs this against
    the committed file so a drive-by edit cannot silently weaken the
    record.  The 10x cached-speedup floor applies at full scale only:
    on the shrunken CI smoke (``REPRO_BENCH_SCALE < 1``) the cold
    solve is milliseconds, so the ratio measures HTTP overhead rather
    than the cache, and the smoke just requires caching to win at
    all.
    """
    assert set(payload) == {
        "engine", "tau", "scale", "cold_samples", "cached_samples",
        "concurrencies", "datasets"}
    assert payload["tau"] >= 1
    assert len(payload["concurrencies"]) >= 2, \
        "criterion needs throughput at >= 2 client concurrencies"
    assert min(payload["concurrencies"]) >= 2
    rows = payload["datasets"]
    assert len(rows) >= 2, "criterion needs >= 2 real datasets"
    for row in rows:
        assert set(row) == {
            "dataset", "n", "m", "cold_p50_ms", "cold_p99_ms",
            "cached_p50_ms", "cached_p99_ms", "cached_speedup",
            "throughput"}
        assert row["n"] > 0 and row["m"] > 0
        assert 0 < row["cold_p50_ms"] <= row["cold_p99_ms"]
        assert 0 < row["cached_p50_ms"] <= row["cached_p99_ms"]
        floor = MIN_CACHED_SPEEDUP if payload["scale"] >= 1.0 else 1.0
        assert row["cached_speedup"] >= floor, (
            f"{row['dataset']}: cached p50 only "
            f"{row['cached_speedup']}x below cold p50 — the "
            f"{floor}x acceptance floor failed")
        measured = {t["concurrency"] for t in row["throughput"]}
        assert measured == set(payload["concurrencies"])
        for t in row["throughput"]:
            assert set(t) == {"concurrency", "requests", "seconds",
                              "rps"}
            assert t["requests"] >= t["concurrency"]
            assert t["rps"] > 0


@pytest.mark.benchmark(group="serve")
@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_serve_cached_round_trip(benchmark, dataset):
    """Steady state: one cached solve request over localhost HTTP."""
    service = SolverService(default_engine=BENCH_ENGINE)
    with BackgroundServer(service) as server:
        payload = _solve_payload(dataset)
        _timed_request(server.url, payload)  # prime

        def step() -> float:
            return _timed_request(server.url, payload,
                                  expect_cache="hit")

        run_once(benchmark, step)


def main() -> None:
    payload = collect()
    print_table(
        f"Serve latency (tau={DEFAULT_TAU}, engine={BENCH_ENGINE}, "
        f"scale={BENCH_SCALE})",
        ["dataset", "n", "m", "cold p50", "cached p50", "speedup",
         *(f"rps@{c}" for c in CONCURRENCIES)],
        [[row["dataset"], row["n"], row["m"],
          f"{row['cold_p50_ms']:.1f}ms",
          f"{row['cached_p50_ms']:.2f}ms",
          f"{row['cached_speedup']:.0f}x",
          *(f"{t['rps']:.0f}" for t in row["throughput"])]
         for row in payload["datasets"]])
    validate_payload(payload)
    if "--no-json" not in sys.argv:
        out = Path(__file__).resolve().parent.parent / \
            "BENCH_serve.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
