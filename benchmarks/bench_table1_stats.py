"""Table I — statistics of datasets.

Regenerates, for every stand-in dataset: |V|, |E|, the negative-edge
ratio, the maximum balanced clique size ``|C*|`` at ``tau = 3``, and
the polarization factor ``beta(G)``, next to the paper's reported
values for the corresponding real dataset.
"""

import pytest

from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.datasets.registry import load_spec

try:
    from ._common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        print_table, run_once
except ImportError:  # standalone execution
    from _common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        print_table, run_once


def table1_row(name: str) -> list[object]:
    graph = bench_graph(name)
    spec = load_spec(name)
    clique = mbc_star(graph, DEFAULT_TAU)
    beta = pf_star(graph)
    paper_n, paper_m, paper_neg, paper_c, paper_beta = \
        spec.paper_reference
    return [
        name, spec.category,
        graph.num_vertices, graph.num_edges,
        f"{graph.negative_ratio:.2f}",
        clique.size, beta,
        f"{paper_n}/{paper_m}", f"{paper_neg:.2f}",
        paper_c, paper_beta,
    ]


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_table1_stats(benchmark, name):
    row = run_once(benchmark, lambda: table1_row(name))
    print_table(
        f"Table I row — {name}",
        ["dataset", "category", "|V|", "|E|", "|E-|/|E|",
         "|C*|(t=3)", "beta", "paper n/m", "paper neg",
         "paper |C*|", "paper beta"],
        [row])


def main() -> None:
    rows = [table1_row(name) for name in ALL_DATASETS]
    print_table(
        "Table I — statistics of datasets (stand-ins vs paper)",
        ["dataset", "category", "|V|", "|E|", "|E-|/|E|",
         "|C*|(t=3)", "beta", "paper n/m", "paper neg",
         "paper |C*|", "paper beta"],
        rows)


if __name__ == "__main__":
    main()
