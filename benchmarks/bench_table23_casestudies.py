"""Tables II and III — case studies on Reddit and AdjWordNet.

Regenerates both case-study tables on the labelled stand-in graphs:
the subreddit conflict clique (Table II) and the synonym/antonym
clique (Table III), plus the MBCEnum comparison the paper reports
(the number of maximal balanced cliques vs the single maximum).
"""

from repro.core.mbc_baseline import enumerate_maximal_balanced_cliques
from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.datasets.casestudies import reddit_case_study, \
    wordnet_case_study

try:
    from ._common import print_table, run_once
except ImportError:
    from _common import print_table, run_once


def case_study(graph) -> dict[str, object]:
    beta = pf_star(graph)
    clique = mbc_star(graph, beta)
    maximal = enumerate_maximal_balanced_cliques(
        graph, tau=beta, limit=100000)
    left = sorted(graph.label(v) for v in clique.left)
    right = sorted(graph.label(v) for v in clique.right)
    return {
        "beta": beta,
        "clique": clique,
        "left": left,
        "right": right,
        "maximal_count": len(maximal),
    }


def test_table2_reddit(benchmark):
    graph = reddit_case_study()
    result = run_once(benchmark, lambda: case_study(graph))
    print_table(
        "Table II — case study on Reddit (tau = beta = "
        f"{result['beta']})",
        ["C_L", "C_R"],
        [[", ".join(result["left"]), ", ".join(result["right"])]])
    print(f"maximal balanced cliques at tau={result['beta']}: "
          f"{result['maximal_count']}")
    names = set(result["left"]) | set(result["right"])
    assert {"subredditdrama", "trueredditdrama", "drama"} <= names


def test_table3_wordnet(benchmark):
    graph = wordnet_case_study()
    result = run_once(benchmark, lambda: case_study(graph))
    print_table(
        "Table III — case study on AdjWordNet (tau = beta = "
        f"{result['beta']})",
        ["C_L", "C_R"],
        [[", ".join(result["left"]), ", ".join(result["right"])]])
    print(f"maximal balanced cliques at tau={result['beta']}: "
          f"{result['maximal_count']}")
    # Good and bad words end up on opposite sides.
    sides = (set(result["left"]), set(result["right"]))
    good_side = [s for s in sides if "good" in s]
    bad_side = [s for s in sides if "bad" in s]
    assert good_side and bad_side
    assert good_side[0] is not bad_side[0]


def main() -> None:
    for title, graph in (
            ("Table II — Reddit", reddit_case_study()),
            ("Table III — AdjWordNet", wordnet_case_study())):
        result = case_study(graph)
        print_table(
            f"{title} (tau = beta = {result['beta']})",
            ["C_L", "C_R"],
            [[", ".join(result["left"]), ", ".join(result["right"])]])
        print(f"maximal balanced cliques at tau={result['beta']}: "
              f"{result['maximal_count']}")


if __name__ == "__main__":
    main()
