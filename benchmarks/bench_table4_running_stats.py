"""Table IV — running statistics of MBC* and PF* (tau = 3).

Per dataset: the heuristic's initial solution (``Heu``), the number of
launched branch-and-bound instances (``#MDC`` / ``#DCC``), and the
two-stage average size-reduction ratios SR1 (conflict-edge removal) and
SR2 (plus core reduction).  Paper shape: instances are tiny compared to
|V|; SR1 around 20-70%; SR2 above SR1, often 80%+.
"""

import pytest

from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.core.stats import SearchStats

try:
    from ._common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        print_table, run_once
except ImportError:
    from _common import ALL_DATASETS, DEFAULT_TAU, bench_graph, \
        print_table, run_once


def fmt_ratio(value: "float | None") -> str:
    return "-" if value is None else f"{value * 100:.0f}%"


def table4_row(name: str) -> list[object]:
    graph = bench_graph(name)
    mbc_stats = SearchStats()
    mbc_star(graph, DEFAULT_TAU, stats=mbc_stats)
    pf_stats = SearchStats()
    pf_star(graph, stats=pf_stats)
    return [
        name,
        mbc_stats.heuristic_size, mbc_stats.instances,
        fmt_ratio(mbc_stats.sr1), fmt_ratio(mbc_stats.sr2),
        pf_stats.heuristic_size, pf_stats.instances,
        fmt_ratio(pf_stats.sr1), fmt_ratio(pf_stats.sr2),
    ]


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_table4_stats(benchmark, name):
    row = run_once(benchmark, lambda: table4_row(name))
    print_table(
        f"Table IV row — {name}",
        ["dataset", "Heu", "#MDC", "SR1", "SR2",
         "Heu(PF)", "#DCC", "SR1(PF)", "SR2(PF)"],
        [row])


def main() -> None:
    rows = [table4_row(name) for name in ALL_DATASETS]
    print_table(
        "Table IV — running statistics of MBC* and PF* (tau=3)",
        ["dataset", "Heu", "#MDC", "SR1", "SR2",
         "Heu(PF)", "#DCC", "SR1(PF)", "SR2(PF)"],
        rows)


if __name__ == "__main__":
    main()
