"""Table V — distinct maximum balanced cliques over all tau.

Per dataset: ``|C| = |{C^0, ..., C^beta}|`` (the number of *distinct*
maxima) and the size range, from the skewed ``C^0`` to the balanced
``C^beta``, printed as ``size<l|r>``.  Paper shape: |C| is much
smaller than beta + 1; C^0 is highly skewed while C^beta is
well balanced.
"""

import pytest

from repro.core.gmbc import distinct_cliques_profile, gmbc_star

try:
    from ._common import ALL_DATASETS, bench_graph, print_table, \
        run_once
except ImportError:
    from _common import ALL_DATASETS, bench_graph, print_table, \
        run_once


def table5_row(name: str) -> list[object]:
    graph = bench_graph(name)
    results = gmbc_star(graph)
    profile = distinct_cliques_profile(results)
    size0, small0, large0 = profile["largest"]
    size_b, small_b, large_b = profile["most_polarized"]
    return [
        name, profile["beta"], profile["distinct"],
        f"{size_b}<{small_b}|{large_b}>",
        f"{size0}<{small0}|{large0}>",
    ]


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_table5_profile(benchmark, name):
    row = run_once(benchmark, lambda: table5_row(name))
    print_table(
        f"Table V row — {name}",
        ["dataset", "beta", "|C|", "C^beta", "C^0"],
        [row])
    # Shape checks from the paper: C^0 at least as large as C^beta,
    # and the number of distinct cliques is at most beta + 1.
    graph = bench_graph(name)
    results = gmbc_star(graph)
    profile = distinct_cliques_profile(results)
    assert profile["distinct"] <= profile["beta"] + 1
    assert profile["largest"][0] >= profile["most_polarized"][0]


def main() -> None:
    rows = [table5_row(name) for name in ALL_DATASETS]
    print_table(
        "Table V — distinct maxima across all tau (size<l|r>)",
        ["dataset", "beta", "|C|", "C^beta", "C^0"],
        rows)


if __name__ == "__main__":
    main()
