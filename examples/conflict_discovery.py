"""Conflict discovery on a Reddit-style subreddit sentiment graph.

The paper's first motivating application (Section I): users or
communities in the maximum balanced clique are the actively-involved
core members of two polarized camps.  This example mirrors the paper's
Table II case study on a labelled stand-in graph, and compares the
clique against the PolarSeeds-style spectral community on the Polarity
metric (the Figure 5 comparison).

Run with::

    python examples/conflict_discovery.py
"""

from repro import mbc_star, pf_star
from repro.baselines import good_seed_pairs, polar_seeds
from repro.datasets import reddit_case_study
from repro.metrics import harmonic_polarization, polarity


def main() -> None:
    graph = reddit_case_study()
    print(f"subreddit sentiment graph: {graph}")

    beta = pf_star(graph)
    print(f"polarization factor: {beta}")

    clique = mbc_star(graph, tau=beta)
    left = sorted(graph.label(v) for v in clique.left)
    right = sorted(graph.label(v) for v in clique.right)
    print("\nmaximum balanced clique (the conflict core):")
    print(f"  camp 1: {', '.join(left)}")
    print(f"  camp 2: {', '.join(right)}")
    score = polarity(graph, clique.left, clique.right)
    ham = harmonic_polarization(graph, clique.left, clique.right)
    print(f"  polarity = {score:.2f}   HAM = {ham:.2f}")

    print("\nPolarSeeds-style spectral communities from seed pairs:")
    for u, v in good_seed_pairs(graph, t=1, count=3, seed=1):
        community = polar_seeds(graph, u, v)
        names1 = sorted(graph.label(x) for x in community.group1)
        names2 = sorted(graph.label(x) for x in community.group2)
        print(f"  seeds ({graph.label(u)}, {graph.label(v)}): "
              f"polarity = {community.score:.2f}")
        print(f"    side 1: {', '.join(names1)}")
        print(f"    side 2: {', '.join(names2)}")


if __name__ == "__main__":
    main()
