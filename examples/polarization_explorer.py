"""Exploring the polarization landscape of a large(ish) signed graph.

Shows the no-threshold workflow of Section V on a Table I stand-in:
compute ``beta(G)``, then one maximum balanced clique per ``tau`` via
gMBC*, and print the distinct-maxima profile the paper reports in
Table V.  Also demonstrates saving/loading graphs and the CLI-less
instrumentation API.

Run with::

    python examples/polarization_explorer.py [dataset]
"""

import sys

from repro import SearchStats, gmbc_star, mbc_star, pf_star
from repro.core.gmbc import distinct_cliques_profile
from repro.datasets import load


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "douban"
    graph = load(name)
    print(f"dataset '{name}': {graph}")

    stats = SearchStats()
    beta = pf_star(graph, stats=stats)
    print(f"\npolarization factor beta(G) = {beta}")
    print(f"  heuristic lower bound: {stats.heuristic_size}")
    print(f"  DCC instances launched: {stats.instances} "
          f"(out of {graph.num_vertices} vertices)")

    results = gmbc_star(graph)
    profile = distinct_cliques_profile(results)
    print(f"\nmaximum balanced clique per tau "
          f"({profile['distinct']} distinct):")
    previous = None
    for tau, clique in enumerate(results):
        key = (clique.left, clique.right)
        marker = "" if key != previous else "  (same as above)"
        if key != previous:
            sides = sorted((len(clique.left), len(clique.right)))
            print(f"  tau={tau:3d}: size {clique.size} "
                  f"<{sides[0]}|{sides[1]}>{marker}")
        previous = key

    # Zoom in on the paper's default threshold.
    stats = SearchStats()
    clique = mbc_star(graph, 3, stats=stats)
    print(f"\nat tau=3: |C*| = {clique.size}, "
          f"search explored {stats.nodes} branch-and-bound nodes in "
          f"{stats.instances} MDC instances")


if __name__ == "__main__":
    main()
