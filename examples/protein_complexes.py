"""Protein-complex detection in a signed PPI network.

The paper's second motivating application: in a protein-protein
interaction network with activation (+) and inhibition (-) edges,
balanced cliques capture pairs of protein groups that are densely
activating within and densely inhibiting across [5], [19].  This
example finds all antagonistic complex pairs by repeatedly extracting
a maximum balanced clique and removing it.

Run with::

    python examples/protein_complexes.py
"""

from repro import mbc_star
from repro.datasets import ppi_case_study


def main() -> None:
    graph = ppi_case_study(complexes=3, proteins_per_complex=5)
    print(f"signed PPI network: {graph}")

    # Iteratively peel off maximum balanced cliques: each is an
    # antagonistic pair of protein complexes.
    remaining = graph.copy()
    pair_index = 0
    tau = 3
    while True:
        clique = mbc_star(remaining, tau=tau)
        if clique.is_empty:
            break
        pair_index += 1
        group_a = sorted(graph.label(v) for v in clique.left)
        group_b = sorted(graph.label(v) for v in clique.right)
        print(f"\nantagonistic complex pair {pair_index} "
              f"(size {clique.size}):")
        print(f"  activating complex A: {', '.join(group_a)}")
        print(f"  inhibiting complex B: {', '.join(group_b)}")
        for v in clique.vertices:
            remaining.isolate_vertex(v)

    print(f"\nfound {pair_index} antagonistic complex pairs "
          f"(tau = {tau})")


if __name__ == "__main__":
    main()
