"""Quickstart: build a signed graph, find its maximum balanced clique.

Run with::

    python examples/quickstart.py

Covers the three core entry points — ``mbc_star`` (maximum balanced
clique for a threshold), ``pf_star`` (polarization factor), and
``gmbc_star`` (a maximum for every threshold).
"""

from repro import SignedGraph, gmbc_star, mbc_star, pf_star


def main() -> None:
    # A toy signed graph in the spirit of the paper's Figure 2:
    # vertices 0..7; {2, 3, 6, 7} and {4, 5} form the largest balanced
    # clique for tau = 2, while {0, 1} vs {2, 3} is a smaller one.
    graph = SignedGraph.from_edges(
        8,
        positive_edges=[(0, 1), (2, 3), (4, 5), (6, 7), (2, 6), (3, 7),
                        (2, 7), (3, 6)],
        negative_edges=[(0, 2), (0, 3), (1, 2), (1, 3), (2, 4), (2, 5),
                        (3, 4), (3, 5), (6, 4), (6, 5), (7, 4), (7, 5)])

    print(f"graph: {graph}")

    # 1. Maximum balanced clique for a user-given threshold.
    clique = mbc_star(graph, tau=2)
    print(f"maximum balanced clique (tau=2): {clique.describe()}")

    # 2. The polarization factor: the largest satisfiable threshold.
    beta = pf_star(graph)
    print(f"polarization factor beta(G) = {beta}")

    # 3. One maximum balanced clique per threshold, without choosing.
    print("maximum balanced clique per tau:")
    for tau, result in enumerate(gmbc_star(graph)):
        print(f"  tau={tau}: {result.describe()}")


if __name__ == "__main__":
    main()
