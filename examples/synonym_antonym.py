"""Synonym/antonym group discovery on an AdjWordNet-style graph.

The paper's third motivating application: in a signed word graph
(positive = synonym, negative = antonym), a maximum balanced clique is
a pair of significant synonym groups that are antonymous with each
other — the Table III case study.

Run with::

    python examples/synonym_antonym.py
"""

from repro import enumerate_maximal_balanced_cliques, mbc_star, pf_star
from repro.datasets import wordnet_case_study


def main() -> None:
    graph = wordnet_case_study()
    print(f"adjective graph: {graph} "
          f"({graph.num_positive_edges} synonym edges, "
          f"{graph.num_negative_edges} antonym edges)")

    beta = pf_star(graph)
    clique = mbc_star(graph, tau=beta)
    print(f"\nmaximum balanced clique at tau = beta = {beta} "
          f"({clique.size} words):")
    print("  synonym group A:",
          ", ".join(sorted(graph.label(v) for v in clique.left)))
    print("  synonym group B:",
          ", ".join(sorted(graph.label(v) for v in clique.right)))

    # The paper contrasts the single maximum with full enumeration:
    # MBCEnum may return heaps of overlapping maximal cliques.
    maximal = enumerate_maximal_balanced_cliques(graph, tau=2,
                                                 limit=1000)
    print(f"\nfor comparison, MBCEnum finds {len(maximal)} maximal "
          f"balanced cliques at tau=2; the maximum is one of them:")
    sizes = sorted((c.size for c in maximal), reverse=True)
    print(f"  size distribution (top 10): {sizes[:10]}")


if __name__ == "__main__":
    main()
