"""Setuptools shim.

The environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build their
metadata wheel offline.  This shim lets ``python setup.py develop``
provide the equivalent editable install; all project metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
