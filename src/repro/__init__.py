"""repro — maximum structural balanced cliques in signed graphs.

A faithful, fully self-contained reproduction of

    Kai Yao, Lijun Chang, Lu Qin.
    "Computing Maximum Structural Balanced Cliques in Signed Graphs."
    ICDE 2022.

Public API highlights
---------------------
* :class:`repro.signed.SignedGraph` — the signed-graph substrate.
* :func:`repro.core.mbc_star` — MBC*, the paper's maximum balanced
  clique algorithm (Algorithm 2).
* :func:`repro.core.pf_star` — PF*, the polarization factor algorithm
  (Algorithm 4).
* :func:`repro.core.gmbc_star` — gMBC*, a maximum balanced clique for
  every threshold (Algorithm 6).
* :mod:`repro.datasets` — deterministic stand-ins for the paper's 14
  evaluation datasets.
* :mod:`repro.metrics` — Polarity / SBR / HAM quality metrics.
* :mod:`repro.baselines` — the PolarSeeds-style comparison baseline.

Quickstart
----------
>>> from repro import SignedGraph, mbc_star
>>> g = SignedGraph.from_edges(
...     4,
...     positive_edges=[(0, 1), (2, 3)],
...     negative_edges=[(0, 2), (0, 3), (1, 2), (1, 3)])
>>> clique = mbc_star(g, tau=2)
>>> clique.size, clique.polarization
(4, 2)
"""

from .signed import NEGATIVE, POSITIVE, SignedGraph
from .core import (
    EMPTY_RESULT,
    BalancedClique,
    SearchStats,
    enumerate_maximal_balanced_cliques,
    gmbc_naive,
    gmbc_star,
    is_balanced_clique,
    mbc_adv,
    mbc_baseline,
    mbc_heuristic,
    mbc_star,
    pf_binary_search,
    pf_enumeration,
    pf_star,
    split_sides,
)

__version__ = "1.0.0"

__all__ = [
    "SignedGraph",
    "POSITIVE",
    "NEGATIVE",
    "BalancedClique",
    "EMPTY_RESULT",
    "SearchStats",
    "is_balanced_clique",
    "split_sides",
    "mbc_heuristic",
    "mbc_baseline",
    "mbc_adv",
    "mbc_star",
    "enumerate_maximal_balanced_cliques",
    "pf_enumeration",
    "pf_binary_search",
    "pf_star",
    "gmbc_naive",
    "gmbc_star",
    "__version__",
]
