"""repro.analysis — repo-specific static analysis for the solver stack.

PRs 1-2 made the repo's correctness rest on invariants no test can
see from the outside: the bitset hot path must stay on int masks,
result-producing code must iterate deterministically, parallel workers
must stay picklable and publish only through the shared incumbent,
solvers must not mutate their inputs, and the package layering must
stay acyclic.  This package turns each of those unwritten rules into a
machine-checked contract: a small AST-visitor rule framework
(:mod:`~repro.analysis.engine`) plus one rule module per invariant
(:mod:`~repro.analysis.rules`), reported as text or versioned JSON
(:mod:`~repro.analysis.reporters`) with per-line escape hatches
(:mod:`~repro.analysis.pragmas`, ``# repro: noqa RXXX``).

Run it as ``repro lint [paths]`` or ``python -m repro.analysis``; the
repo keeps itself lint-clean (asserted by ``tests/test_analysis.py``)
and CI fails on any finding.  Rule catalogue and the how-to for adding
rules: ``docs/STATIC_ANALYSIS.md``.

This package deliberately imports nothing from the solver stack (its
own R006 enforces that), so it can lint a broken tree and run in
stripped-down environments.
"""

from .engine import (
    ModuleInfo,
    ProgramRule,
    Rule,
    iter_python_files,
    lint_paths,
    lint_source,
    lint_sources,
    lint_tree,
)
from .findings import Finding
from .pragmas import parse_pragmas
from .program import (
    CALLGRAPH_SCHEMA_VERSION,
    Program,
    build_program,
    render_callgraph_json,
    render_dot,
)
from .reporters import JSON_SCHEMA_VERSION, render_json, render_text
from .rules import ALL_RULES, RULES_BY_ID
from .cli import main

__all__ = [
    "Finding",
    "ModuleInfo",
    "Program",
    "ProgramRule",
    "Rule",
    "ALL_RULES",
    "RULES_BY_ID",
    "CALLGRAPH_SCHEMA_VERSION",
    "JSON_SCHEMA_VERSION",
    "build_program",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "lint_tree",
    "parse_pragmas",
    "render_callgraph_json",
    "render_dot",
    "render_json",
    "render_text",
    "main",
]
