"""``repro lint`` / ``python -m repro.analysis`` — the lint front end.

Exit codes (also the CI contract):

* ``0`` — no findings;
* ``1`` — at least one finding (including syntax errors);
* ``2`` — usage error (unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence, TextIO

from .engine import Rule, iter_python_files, lint_tree, load_module
from .reporters import render_json, render_text
from .rules import ALL_RULES, RULES_BY_ID

__all__ = ["build_parser", "main", "run_callgraph", "run_lint"]

#: Default lint target when no path is given: the package itself.
DEFAULT_PATHS = ("src",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific AST invariant linter "
                    "(see docs/STATIC_ANALYSIS.md)")
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the versioned JSON report instead of text")
    parser.add_argument(
        "--rule", action="append", dest="rule_ids", metavar="RXXX",
        help="run only this rule (repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def _select_rules(rule_ids: Sequence[str] | None) -> tuple[Rule, ...]:
    if not rule_ids:
        return ALL_RULES
    selected: list[Rule] = []
    for rule_id in rule_ids:
        rule = RULES_BY_ID.get(rule_id.upper())
        if rule is None:
            raise KeyError(
                f"unknown rule {rule_id!r}; known: "
                f"{', '.join(sorted(RULES_BY_ID))}")
        selected.append(rule)
    return tuple(selected)


def run_lint(
    paths: Sequence[str],
    rule_ids: Sequence[str] | None = None,
    as_json: bool = False,
    stream: TextIO | None = None,
) -> int:
    """Lint ``paths`` and print a report; returns the exit code."""
    out = stream if stream is not None else sys.stdout
    rules = _select_rules(rule_ids)
    # One walk: lint_tree reads and parses each file exactly once and
    # reports the files it covered alongside the findings.
    run = lint_tree(paths, rules=rules)
    render = render_json if as_json else render_text
    print(render(run.findings, files_checked=len(run.files)),
          file=out)
    return 1 if run.findings else 0


def run_callgraph(
    paths: Sequence[str],
    fmt: str = "json",
    stream: TextIO | None = None,
) -> int:
    """Export the resolved call graph of ``paths`` as JSON or DOT."""
    from .findings import Finding
    from .program import (
        build_program, render_callgraph_json, render_dot)
    out = stream if stream is not None else sys.stdout
    if fmt not in ("json", "dot"):
        raise KeyError(f"unknown callgraph format {fmt!r}; "
                       f"known: dot, json")
    modules = []
    for path in iter_python_files(paths):
        loaded = load_module(path)
        if isinstance(loaded, Finding):
            print(f"skipping unparsable {loaded.path}: "
                  f"{loaded.message}", file=sys.stderr)
            continue
        modules.append(loaded)
    program = build_program(modules)
    if fmt == "json":
        text = render_callgraph_json(program, root_paths=list(paths))
    else:
        text = render_dot(program)
    print(text, file=out)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    try:
        return run_lint(args.paths, rule_ids=args.rule_ids,
                        as_json=args.as_json)
    except (OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
