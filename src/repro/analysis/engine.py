"""The lint engine: module loading, rule protocol, and the runner.

The engine is deliberately free of any import from the solver stack
(enforced by its own R006 layering rule): it parses source files with
:mod:`ast` and never imports the code under analysis, so a broken tree
can still be linted and the linter can run in stripped environments.

Data flow::

    paths -> iter_python_files -> ModuleInfo (one parsed module)
          -> Rule.check per applicable rule -> Finding stream
          -> pragma filter -> sorted findings -> reporter

``ModuleInfo`` derives the dotted module name from the file path (the
last path component named ``repro`` anchors the package root), so the
rules can scope themselves by package — e.g. R001 fires only inside
``repro.kernels`` and the bitset scopes of the dichromatic engines.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .findings import SYNTAX_ERROR_ID, Finding
from .pragmas import SuppressionTable, parse_pragmas

if TYPE_CHECKING:  # pragma: no cover - type-only, avoids the cycle
    from .program import Program

__all__ = [
    "LintRun",
    "ModuleInfo",
    "ProgramRule",
    "Rule",
    "iter_python_files",
    "load_module",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "lint_tree",
]


@dataclass
class ModuleInfo:
    """One parsed module plus the metadata rules scope themselves by."""

    path: str
    module: str | None
    source: str
    tree: ast.Module
    suppressions: SuppressionTable
    is_package_init: bool = False

    @property
    def package(self) -> str | None:
        """Dotted package containing the module.

        A package ``__init__`` belongs to the package it defines (so
        ``repro/kernels/__init__.py`` has package ``repro.kernels``);
        any other module belongs to its parent.
        """
        if self.module is None:
            return None
        if self.is_package_init:
            return self.module
        parent, _, _ = self.module.rpartition(".")
        return parent or None

    @property
    def leaf_name(self) -> str | None:
        """Last dotted component (``mdc`` for ``repro.dichromatic.mdc``)."""
        if self.module is None:
            return None
        return self.module.rpartition(".")[2]

    @classmethod
    def from_source(
        cls,
        source: str,
        path: str = "<memory>",
        module: str | None = None,
        is_package_init: bool = False,
    ) -> "ModuleInfo":
        """Parse in-memory source (the fixture-test entry point)."""
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            suppressions=parse_pragmas(source),
            is_package_init=is_package_init,
        )


class Rule:
    """Base class every lint rule derives from.

    Subclasses set ``rule_id`` / ``title`` / ``rationale`` and
    implement :meth:`check`.  ``applies_to`` defaults to "any module
    inside the ``repro`` package" — rules narrow it further.
    """

    rule_id: str = "R000"
    title: str = ""
    rationale: str = ""

    def applies_to(self, module: ModuleInfo) -> bool:
        """Whether this rule runs on ``module`` at all."""
        return module.module is not None and (
            module.module == "repro"
            or module.module.startswith("repro."))

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for ``module``; must not mutate it."""
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST,
                message: str) -> Finding:
        """Convenience constructor anchored at ``node``."""
        return Finding.at_node(
            module.path, node, self.rule_id, message)


class ProgramRule(Rule):
    """A rule that checks the *whole program*, not one module.

    Subclasses implement :meth:`check_program` against the resolved
    :class:`~repro.analysis.program.Program` (call graph, symbol
    tables, reaching-kwargs helpers).  ``check`` is a no-op so program
    rules slot into the same registry, CLI ``--rule`` selection, and
    reporter machinery as the per-module rules; the engine invokes
    ``check_program`` once per lint run and routes each finding back
    through the pragma table of the file it lands in.
    """

    def applies_to(self, module: ModuleInfo) -> bool:
        """Program rules also cover the benchmark harness."""
        if super().applies_to(module):
            return True
        return module.module is not None and (
            module.module == "benchmarks"
            or module.module.startswith("benchmarks."))

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_program(self, program: "Program") -> Iterator[Finding]:
        """Yield findings over the resolved program."""
        raise NotImplementedError


#: Path components (besides ``repro``) that anchor a module name.
#: ``benchmarks/bench_kernels.py`` -> ``benchmarks.bench_kernels`` so
#: the whole-program rules can police the benchmark harness too; the
#: per-module rules all scope to ``repro.*`` and keep skipping it.
_EXTRA_ROOTS = ("benchmarks",)


def _module_name_for(path: str) -> tuple[str | None, bool]:
    """Derive the dotted module name from a file path.

    The *last* path component named ``repro`` (or one of the
    :data:`_EXTRA_ROOTS`) is taken as the package root
    (``src/repro/core/pf.py`` -> ``repro.core.pf``).  Files outside
    any such tree get ``None`` — rules skip them, so linting a whole
    checkout never flags tests or scripts.
    """
    parts = os.path.normpath(path).split(os.sep)
    root = "repro" if "repro" in parts else next(
        (r for r in _EXTRA_ROOTS if r in parts), None)
    if root is None:
        return None, False
    anchor = len(parts) - 1 - parts[::-1].index(root)
    dotted = parts[anchor:]
    leaf = dotted[-1]
    if not leaf.endswith(".py"):
        return None, False
    dotted[-1] = leaf[:-3]
    if dotted[-1] == "__init__":
        return ".".join(dotted[:-1]), True
    return ".".join(dotted), False


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Hidden directories and ``__pycache__`` are skipped.  A path that
    does not exist raises ``OSError`` so the CLI can exit with a usage
    error instead of silently linting nothing.
    """
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__")
                files.extend(
                    os.path.join(root, name)
                    for name in filenames if name.endswith(".py"))
        else:
            raise OSError(f"no such file or directory: {path!r}")
    return sorted(set(files))


def load_module(path: str) -> ModuleInfo | Finding:
    """Parse one file; a syntax error becomes an ``E999`` finding."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    module, is_init = _module_name_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=SYNTAX_ERROR_ID,
            message=f"syntax error: {exc.msg}",
        )
    return ModuleInfo(
        path=path,
        module=module,
        source=source,
        tree=tree,
        suppressions=parse_pragmas(source),
        is_package_init=is_init,
    )


def lint_modules(
    modules: Iterable[ModuleInfo],
    rules: Sequence[Rule],
) -> list[Finding]:
    """Run ``rules`` over parsed modules and filter suppressions."""
    findings: list[Finding] = []
    module_list = list(modules)
    for module in module_list:
        for rule in rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if module.suppressions.is_suppressed(
                        finding.line, finding.rule_id):
                    continue
                findings.append(finding)
    findings.extend(_lint_program(module_list, rules))
    # Rules may visit nested scopes from more than one root; findings
    # are value objects, so exact duplicates collapse here.
    return sorted(set(findings))


def _lint_program(
    modules: Sequence[ModuleInfo],
    rules: Sequence[Rule],
) -> Iterator[Finding]:
    """Run the whole-program rules once over all modules together.

    The program is built lazily — and only when a ``ProgramRule`` is
    selected — so per-module lint runs pay nothing for it.  Findings
    route through the pragma table of the file they anchor in.
    """
    program_rules = [
        rule for rule in rules if isinstance(rule, ProgramRule)]
    if not program_rules:
        return
    scoped = [
        m for m in modules
        if any(rule.applies_to(m) for rule in program_rules)]
    if not scoped:
        return
    from .program import build_program
    program = build_program(scoped)
    tables = {m.path: m.suppressions for m in scoped}
    for rule in program_rules:
        for finding in rule.check_program(program):
            table = tables.get(finding.path)
            if table is not None and table.is_suppressed(
                    finding.line, finding.rule_id):
                continue
            yield finding


@dataclass
class LintRun:
    """One lint pass: the findings plus the files it walked.

    ``run_lint`` needs both, and deriving them from a single walk is
    what keeps the CLI from reading every file twice.
    """

    findings: list[Finding]
    files: list[str]


def lint_tree(
    paths: Iterable[str],
    rules: Sequence[Rule] | None = None,
) -> LintRun:
    """Walk ``paths`` once, lint every file, keep the file list."""
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    files = iter_python_files(paths)
    findings: list[Finding] = []
    modules: list[ModuleInfo] = []
    for path in files:
        loaded = load_module(path)
        if isinstance(loaded, Finding):
            findings.append(loaded)
        else:
            modules.append(loaded)
    findings.extend(lint_modules(modules, rules))
    return LintRun(findings=sorted(set(findings)), files=files)


def lint_paths(
    paths: Iterable[str],
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint files/directories; the main library entry point."""
    return lint_tree(paths, rules=rules).findings


def lint_source(
    source: str,
    module: str | None = None,
    path: str = "<memory>",
    rules: Sequence[Rule] | None = None,
    is_package_init: bool = False,
) -> list[Finding]:
    """Lint one in-memory snippet (the fixture-test entry point)."""
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    info = ModuleInfo.from_source(
        source, path=path, module=module,
        is_package_init=is_package_init)
    return lint_modules([info], rules)


def lint_sources(
    sources: dict[str, str],
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint several in-memory modules as one program.

    ``sources`` maps dotted module names to source text (append
    ``/__init__`` to mark a package ``__init__``); the whole-program
    rules see them as a single resolved tree, which is how the
    call-graph fixtures exercise cross-module resolution.
    """
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    modules = []
    for name, source in sources.items():
        is_init = name.endswith("/__init__")
        module = name[:-len("/__init__")] if is_init else name
        modules.append(ModuleInfo.from_source(
            source, path=f"<memory:{module}>", module=module,
            is_package_init=is_init))
    return lint_modules(modules, rules)
