"""Finding — one reported violation of a repo invariant.

A finding pins a rule violation to an exact source location so the
text reporter can print clickable ``path:line:col`` references and the
JSON reporter can feed CI annotations.  Findings are value objects:
the engine produces them, filters the pragma-suppressed ones out, and
hands the survivors to a reporter — nothing downstream mutates them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Finding", "SEVERITIES", "SYNTAX_ERROR_ID"]

#: Recognised severity labels, strongest first.  Every severity fails
#: the lint gate; the label only affects presentation.
SEVERITIES = ("error", "warning")

#: Pseudo rule id used for files the engine cannot parse at all.
SYNTAX_ERROR_ID = "E999"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    The field order doubles as the report sort order: path, then line,
    then column, then rule id — i.e. file-by-file in reading order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = field(default="error")

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {SEVERITIES}")

    @classmethod
    def at_node(
        cls,
        path: str,
        node: ast.AST,
        rule_id: str,
        message: str,
        severity: str = "error",
    ) -> "Finding":
        """Finding anchored at an AST node's location."""
        return cls(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
            severity=severity,
        )

    def render(self) -> str:
        """The canonical one-line text form."""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} {self.message}")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (schema asserted by the reporter tests)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "severity": self.severity,
        }
