"""Per-line suppression pragmas.

A finding on a line carrying a suppression pragma is dropped by the
engine.  Two forms are recognised, mirroring flake8's ``noqa`` but
namespaced so generic tooling never collides with it:

``# repro: noqa R001`` / ``# repro: noqa R001,R005``
    suppress the listed rule ids on this line;

omitting the code list suppresses *every* rule on the line.  The repo
itself never uses the blanket form (the self-check test suite rejects
it) so each committed exception stays auditable.

A *coded* pragma on **line 1** of a file applies *module-wide*: every
finding of the listed rules anywhere in the file is silenced (the
blanket form stays line-scoped even on line 1, so it can never
silence a whole file).  This exists for
the whole-program rules (R012+), whose findings can anchor at lines
that merely *reach* a seam — e.g. a fixture module that legitimately
ships a non-picklable payload to exercise the failure path — where a
per-line pragma would have to chase the rule's anchor around every
refactor.  File-level suppressions carry the same justification
convention and are the loudest form, so they stay rare and auditable.

The pragma must appear in a comment on the *reported* line.  By repo
convention every pragma carries a one-line justification in the same
comment or the line above — the linter cannot check prose, but the
self-check test suite greps for bare pragmas in review.
"""

from __future__ import annotations

import re

__all__ = ["SuppressionTable", "parse_pragmas", "PRAGMA_RE"]

#: The pragma marker with an optional rule-id list.  The id list may
#: be separated by commas and/or spaces; ids are letter+3 digits.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?::?\s+(?P<codes>[A-Z]\d{3}(?:[\s,]+[A-Z]\d{3})*))?")

_CODE_RE = re.compile(r"[A-Z]\d{3}")


class SuppressionTable:
    """Which rule ids are suppressed on which physical lines."""

    def __init__(self, blanket: frozenset[int],
                 by_rule: dict[int, frozenset[str]],
                 file_level: frozenset[str] = frozenset()) -> None:
        self._blanket = blanket
        self._by_rule = by_rule
        self._file_level = file_level

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Whether a finding of ``rule_id`` on ``line`` is silenced."""
        if rule_id in self._file_level:
            return True
        if line in self._blanket:
            return True
        return rule_id in self._by_rule.get(line, frozenset())

    @property
    def lines(self) -> frozenset[int]:
        """Every line carrying any pragma (used by reporters/tests)."""
        return self._blanket | frozenset(self._by_rule)

    @property
    def file_level(self) -> frozenset[str]:
        """Rule ids suppressed module-wide by a line-1 pragma."""
        return self._file_level


def parse_pragmas(source: str) -> SuppressionTable:
    """Scan source text for suppression pragmas, line by line.

    Line numbers are 1-based to match AST ``lineno``.  A pragma inside
    a string literal is treated as live — the cost of a rare false
    suppression is lower than the cost of tokenizing every file twice.
    """
    blanket: set[int] = set()
    by_rule: dict[int, frozenset[str]] = {}
    file_level: frozenset[str] = frozenset()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "repro:" not in text:
            continue
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            blanket.add(lineno)
        else:
            by_rule[lineno] = frozenset(_CODE_RE.findall(codes))
            if lineno == 1:
                file_level = by_rule[lineno]
    return SuppressionTable(frozenset(blanket), by_rule,
                            file_level=file_level)
