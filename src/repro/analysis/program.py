"""Whole-program layer: project loading, symbol resolution, call graph.

The per-module rules (R001-R011) see one ``ast.Module`` at a time, so
they cannot check invariants that *span* modules: the anytime contract
needs ``budget=`` to reach every branch-and-bound subtree, and the
spawn fan-out only works if everything crossing the pool envelope is
picklable.  This module gives the program rules (R012+) the missing
view: parse the whole tree once, resolve imports and module-level
symbols, and build a call graph over it.

The graph is deliberately *under*-approximate — a missing edge means
"could not resolve statically", never "proven absent" — so rules built
on it only fire where resolution succeeded and stay quiet elsewhere.
Three resolution layers feed it:

* **direct calls** — ``f(...)`` and ``mod.f(...)`` through each
  module's symbol table (imports, aliases, and re-export chains, e.g.
  ``from ..dichromatic import solve_mdc`` chasing through the package
  ``__init__`` to the defining module);
* **dispatch seams** — conditional solver selection
  (``ego = _np if ctx.engine == "numpy" else _bits``) yields an edge
  to *both* candidates, and method calls on locally constructed or
  annotation-typed instances resolve through the class table
  (``dispatcher.run`` -> ``ResilientDispatcher.run``);
* **table registrations** — function references escaping into
  module-level dict literals or registration calls (the CLI
  ``_COMMANDS`` table, ``register_engine(EngineSpec(...))``) become
  ``table`` edges from the module scope, so registry-dispatched
  handlers are reachable in the graph.

Nothing here imports the solver stack (R006): the loader works on
:class:`~repro.analysis.engine.ModuleInfo` objects only, so a broken
tree can still be graphed.  Export helpers at the bottom back the
``repro callgraph`` subcommand (DOT and versioned JSON).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .engine import ModuleInfo

__all__ = [
    "CALLGRAPH_SCHEMA_VERSION",
    "CallEdge",
    "ClassNode",
    "FunctionNode",
    "Program",
    "ScopeBindings",
    "build_program",
    "call_passes_kwarg",
    "iter_scopes",
    "render_dot",
    "render_callgraph_json",
    "scan_bindings",
    "scope_walk",
]

#: Bumped whenever the JSON export shape changes (CI asserts on it).
CALLGRAPH_SCHEMA_VERSION = 1

#: Edge kinds: ``call`` is a resolved direct call, ``dispatch`` is a
#: seam (conditional solver selection, method-on-instance, or a
#: callable handed across a pool boundary), ``table`` is a function
#: reference escaping into a module-level registry.
EDGE_KINDS = ("call", "dispatch", "table")

#: Methods whose first callable argument crosses a process boundary
#: (mirrors R009's pool-dispatch list); used to add ``dispatch`` edges
#: for the runner argument of ``ResilientDispatcher.run`` and friends.
DISPATCH_METHODS = frozenset({
    "run", "imap", "imap_unordered", "map_async", "apply_async",
})

#: Receiver class names whose :data:`DISPATCH_METHODS` calls are pool
#: seams.  Matching is by class *name* so a fixture or test double that
#: mimics the dispatcher is policed the same way.
DISPATCH_CLASSES = frozenset({"ResilientDispatcher", "Pool"})


@dataclass(frozen=True)
class FunctionNode:
    """One function or method definition in the program."""

    module: str
    qualname: str
    path: str
    lineno: int
    params: tuple[str, ...]      # positional-capable, in order
    kwonly: tuple[str, ...]
    has_var_positional: bool
    has_var_keyword: bool
    is_method: bool = False
    is_classmethod: bool = False

    @property
    def key(self) -> str:
        """Graph node id: ``repro.core.pf:pf_star``."""
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rpartition(".")[2]

    def accepts(self, param: str) -> bool:
        """Whether ``param`` is an explicit parameter (not ``**kw``)."""
        return param in self.params or param in self.kwonly

    def positional_index(self, param: str, bound: bool) -> int | None:
        """Index a positional argument must reach to cover ``param``.

        ``bound`` drops the implicit ``self``/``cls`` slot for method
        calls through an instance; a classmethod's ``cls`` is implicit
        however it is reached.
        """
        if param not in self.params:
            return None
        index = self.params.index(param)
        if (bound or self.is_classmethod) and self.is_method:
            index -= 1
        return index if index >= 0 else None


@dataclass(frozen=True)
class ClassNode:
    """One class definition plus its directly defined methods."""

    module: str
    qualname: str
    path: str
    lineno: int
    methods: tuple[str, ...]

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rpartition(".")[2]


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: caller scope -> callee function."""

    caller: str                  # FunctionNode.key, or "mod:<module>"
    callee: str                  # FunctionNode.key
    path: str                    # caller's file (anchors findings)
    lineno: int
    kind: str                    # one of EDGE_KINDS
    bound: bool = False          # True when called through an instance


@dataclass
class Program:
    """The resolved whole-program view handed to ``ProgramRule``s."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    classes: dict[str, ClassNode] = field(default_factory=dict)
    symbols: dict[str, dict[str, str]] = field(default_factory=dict)
    edges: list[CallEdge] = field(default_factory=list)
    #: edge -> the ``ast.Call`` it came from (kept out of the frozen
    #: edge so edges stay hashable/serialisable).
    calls: dict[int, ast.Call] = field(default_factory=dict)

    def call_node(self, edge: CallEdge) -> ast.Call | None:
        """The AST call expression behind ``edge`` (None for tables)."""
        return self.calls.get(id(edge))

    def function(self, key: str) -> FunctionNode | None:
        return self.functions.get(key)

    def edges_into(self, key: str) -> list[CallEdge]:
        return [e for e in self.edges if e.callee == key]

    def edges_from(self, key: str) -> list[CallEdge]:
        return [e for e in self.edges if e.caller == key]

    def reachable_from(self, roots: Iterable[str]) -> frozenset[str]:
        """Transitive closure of callees from ``roots`` (inclusive)."""
        out: dict[str, list[str]] = {}
        for edge in self.edges:
            out.setdefault(edge.caller, []).append(edge.callee)
        seen: set[str] = set()
        stack = [r for r in roots]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(out.get(node, ()))
        return frozenset(seen)

    def worker_entry_points(self) -> list[FunctionNode]:
        """The ``run_*_chunk*`` functions of the parallel package."""
        return sorted(
            (fn for fn in self.functions.values()
             if fn.module.startswith("repro.parallel")
             and fn.name.startswith("run_") and "chunk" in fn.name),
            key=lambda fn: fn.key)

    def resolve(self, module: str, dotted: str) -> str | None:
        """Resolve a dotted name seen in ``module`` to a graph key.

        Walks the module symbol table for the first component, then
        chases re-export chains (``from .mdc import solve_mdc`` in a
        package ``__init__``) until the defining module is found.
        """
        table = self.symbols.get(module, {})
        head, _, rest = dotted.partition(".")
        target = table.get(head)
        if target is None:
            if module in self.modules and not rest:
                # a bare name defined in this very module
                if f"{module}:{dotted}" in self.functions or \
                        f"{module}:{dotted}" in self.classes:
                    return f"{module}:{dotted}"
            return None
        fq = f"{target}.{rest}" if rest else target
        return self._resolve_fq(fq)

    def _resolve_fq(self, fq: str, depth: int = 0) -> str | None:
        """Fully-qualified dotted name -> graph key, chasing aliases."""
        if depth > 8:
            return None
        parts = fq.split(".")
        # longest module prefix wins so ``repro.core.pf.pf_star``
        # anchors at the defining module, not the package.
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod not in self.modules:
                continue
            rest = parts[cut:]
            key = f"{mod}:{'.'.join(rest)}"
            if key in self.functions or key in self.classes:
                return key
            table = self.symbols.get(mod, {})
            if rest and rest[0] in table:
                chained = table[rest[0]]
                tail = ".".join(rest[1:])
                return self._resolve_fq(
                    f"{chained}.{tail}" if tail else chained,
                    depth + 1)
            return None
        if fq in self.modules:
            return f"{fq}:<module>"
        return None

    def method_key(self, class_key: str, method: str) -> str | None:
        cls = self.classes.get(class_key)
        if cls is None or method not in cls.methods:
            return None
        return f"{cls.module}:{cls.qualname}.{method}"

    def classes_named(self, name: str) -> list[ClassNode]:
        return [c for c in self.classes.values() if c.name == name]


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------


def _resolve_relative(module: ModuleInfo, level: int,
                      target: str | None) -> str | None:
    """Absolute dotted base of a ``from ...x import y`` statement."""
    if module.module is None:
        return None
    base = module.module.split(".")
    if not module.is_package_init:
        base = base[:-1]
    if level > 1:
        cut = level - 1
        if cut >= len(base):
            return None
        base = base[:-cut]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chain -> ``"a.b.c"``; anything else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_class_name(node: ast.expr | None) -> str | None:
    """Best-effort class name out of a parameter annotation.

    Handles ``C``, ``mod.C``, ``C | None``, ``Optional[C]`` and quoted
    forms; returns the *leaf* name only (matching is name-based).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_annotation_class_name(node.left)
                or _annotation_class_name(node.right))
    if isinstance(node, ast.Subscript):
        return _annotation_class_name(node.slice)
    dotted = _dotted_name(node)
    if dotted is None or dotted in ("None", "Any", "object"):
        return None
    return dotted.rpartition(".")[2]


def _function_node(module: ModuleInfo, qualname: str,
                   node: ast.FunctionDef | ast.AsyncFunctionDef,
                   is_method: bool) -> FunctionNode:
    args = node.args
    params = tuple(a.arg for a in args.posonlyargs + args.args)
    decorators = {
        dec.id for dec in node.decorator_list
        if isinstance(dec, ast.Name)}
    if "staticmethod" in decorators:
        is_method = False
    return FunctionNode(
        module=module.module or module.path,
        qualname=qualname,
        path=module.path,
        lineno=node.lineno,
        params=params,
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        has_var_positional=args.vararg is not None,
        has_var_keyword=args.kwarg is not None,
        is_method=is_method,
        is_classmethod=is_method and "classmethod" in decorators,
    )


def _collect_definitions(program: Program, module: ModuleInfo) -> None:
    """Register every function/class and the module symbol table."""
    mod = module.module or module.path
    table: dict[str, str] = {}

    def register(node: ast.AST, prefix: str, in_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                fn = _function_node(module, qual, child, in_class)
                program.functions[fn.key] = fn
                register(child, f"{qual}.<locals>.", False)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}{child.name}"
                methods = tuple(
                    stmt.name for stmt in child.body
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)))
                cls = ClassNode(
                    module=mod, qualname=qual, path=module.path,
                    lineno=child.lineno, methods=methods)
                program.classes[cls.key] = cls
                register(child, f"{qual}.", True)
            elif not isinstance(child, ast.Lambda):
                register(child, prefix, in_class)

    register(module.tree, "", False)

    for stmt in module.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else
                    alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level == 0:
                base = stmt.module
            else:
                base = _resolve_relative(module, stmt.level,
                                         stmt.module)
            if base is None:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = (
                    f"{base}.{alias.name}")
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            table[stmt.name] = f"{mod}.{stmt.name}"
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            source = _dotted_name(stmt.value)
            if isinstance(target, ast.Name) and source is not None:
                head = source.split(".")[0]
                if head in table:
                    resolved = table[head] + source[len(head):]
                    table[target.id] = resolved
                elif source != target.id:
                    table[target.id] = f"{mod}.{source}"
    program.symbols[mod] = table


class ScopeBindings:
    """Local names bound to callables or typed instances in a scope."""

    def __init__(self) -> None:
        self.callables: dict[str, list[str]] = {}   # name -> keys
        self.instances: dict[str, str] = {}         # name -> class name

    def candidates(self, name: str) -> list[str]:
        return self.callables.get(name, [])


def _callable_targets(program: Program, module: str,
                      node: ast.expr) -> list[str]:
    """Graph keys a value expression may refer to (functions only)."""
    if isinstance(node, ast.IfExp):
        return (_callable_targets(program, module, node.body)
                + _callable_targets(program, module, node.orelse))
    dotted = _dotted_name(node)
    if dotted is None:
        return []
    key = program.resolve(module, dotted)
    if key is not None and key in program.functions:
        return [key]
    return []


def _scan_bindings(program: Program, module: str,
                   scope: ast.AST,
                   owner: FunctionNode | None) -> ScopeBindings:
    bindings = ScopeBindings()
    if owner is not None:
        fn_node = scope
        if isinstance(fn_node, (ast.FunctionDef,
                                ast.AsyncFunctionDef)):
            args = fn_node.args
            for arg in (args.posonlyargs + args.args
                        + args.kwonlyargs):
                cls_name = _annotation_class_name(arg.annotation)
                if cls_name is not None:
                    bindings.instances[arg.arg] = cls_name
    for node in _scope_walk(scope):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        value = node.value
        if value is None or len(targets) != 1 or \
                not isinstance(targets[0], ast.Name):
            continue
        name = targets[0].id
        keys = _callable_targets(program, module, value)
        if keys:
            bindings.callables[name] = keys
            continue
        if isinstance(value, ast.Call):
            dotted = _dotted_name(value.func)
            if dotted is not None:
                resolved = program.resolve(module, dotted)
                if resolved is not None and \
                        resolved in program.classes:
                    bindings.instances[name] = (
                        program.classes[resolved].name)
        if isinstance(node, ast.AnnAssign):
            cls_name = _annotation_class_name(node.annotation)
            if cls_name is not None:
                bindings.instances[name] = cls_name
    return bindings


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested defs or classes.

    Lambdas are transparent — a call inside ``lambda: f(x)`` is
    attributed to the enclosing function, which is where its free
    variables live.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _iter_scopes(
    module: ModuleInfo,
) -> Iterator[tuple[str, ast.AST, str | None]]:
    """(qualname-or-<module>, scope node, enclosing class) triples."""
    yield "<module>", module.tree, None

    def visit(node: ast.AST, prefix: str,
              cls: str | None) -> Iterator[
                  tuple[str, ast.AST, str | None]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child, cls
                yield from visit(child, f"{qual}.<locals>.", None)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.",
                                 f"{prefix}{child.name}")
            elif not isinstance(child, ast.Lambda):
                yield from visit(child, prefix, cls)

    yield from visit(module.tree, "", None)


def _add_edge(program: Program, caller: str, callee: str, path: str,
              lineno: int, kind: str, bound: bool,
              call: ast.Call | None) -> None:
    edge = CallEdge(caller=caller, callee=callee, path=path,
                    lineno=lineno, kind=kind, bound=bound)
    program.edges.append(edge)
    if call is not None:
        program.calls[id(edge)] = call


def _resolve_call_targets(
    program: Program, module: str, call: ast.Call,
    bindings: ScopeBindings, enclosing_class: str | None,
) -> list[tuple[str, str, bool]]:
    """(callee key, kind, bound) candidates for one call expression."""
    func = call.func
    results: list[tuple[str, str, bool]] = []
    if isinstance(func, ast.Name):
        for key in bindings.candidates(func.id):
            results.append((key, "dispatch", False))
        if results:
            return results
        key = program.resolve(module, func.id)
        if key is not None:
            if key in program.classes:
                init = program.method_key(key, "__init__")
                if init is not None:
                    results.append((init, "call", True))
            elif key in program.functions:
                results.append((key, "call", False))
        return results
    if isinstance(func, ast.Attribute):
        base = func.value
        # self.method() inside a class body
        if isinstance(base, ast.Name) and base.id in ("self", "cls") \
                and enclosing_class is not None:
            key = program.method_key(
                f"{module}:{enclosing_class}", func.attr)
            if key is not None:
                results.append((key, "call", True))
            return results
        # instance.method() through a tracked local/annotated type
        if isinstance(base, ast.Name) and \
                base.id in bindings.instances:
            cls_name = bindings.instances[base.id]
            for cls in program.classes_named(cls_name):
                key = program.method_key(cls.key, func.attr)
                if key is not None:
                    results.append((key, "dispatch", True))
            return results
        # mod.func() / pkg.mod.func() through the symbol table
        dotted = _dotted_name(func)
        if dotted is not None:
            key = program.resolve(module, dotted)
            if key is not None:
                if key in program.classes:
                    init = program.method_key(key, "__init__")
                    if init is not None:
                        results.append((init, "call", True))
                elif key in program.functions:
                    results.append((key, "call", False))
    return results


def _table_values(node: ast.expr) -> Iterator[ast.expr]:
    """Expressions escaping into a module-level registry literal."""
    if isinstance(node, ast.Dict):
        for value in node.values:
            if value is not None:
                yield value
    elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        for elt in node.elts:
            yield elt
    elif isinstance(node, ast.Call):
        for arg in node.args:
            yield arg
            yield from _table_values(arg)
        for kw in node.keywords:
            yield kw.value
            yield from _table_values(kw.value)


def _collect_edges(program: Program, module: ModuleInfo) -> None:
    mod = module.module or module.path
    for qualname, scope, cls in _iter_scopes(module):
        caller_key = f"{mod}:{qualname}"
        owner = program.functions.get(caller_key)
        bindings = _scan_bindings(program, mod, scope, owner)
        for node in _scope_walk(scope):
            if not isinstance(node, ast.Call):
                continue
            targets = _resolve_call_targets(
                program, mod, node, bindings, cls)
            for callee, kind, bound in targets:
                _add_edge(program, caller_key, callee, module.path,
                          node.lineno, kind, bound, node)
            _collect_seam_edges(program, mod, caller_key,
                                module.path, node, bindings)
        if qualname == "<module>":
            # registry tables: function references escaping into
            # module-level literals or registration calls.
            for stmt in module.tree.body:
                if not isinstance(stmt, (ast.Assign, ast.Expr)):
                    continue
                value = stmt.value
                for escaped in _table_values(value):
                    for key in _callable_targets(
                            program, mod, escaped):
                        _add_edge(program, caller_key, key,
                                  module.path, escaped.lineno,
                                  "table", False, None)


def _collect_seam_edges(program: Program, mod: str, caller: str,
                        path: str, call: ast.Call,
                        bindings: ScopeBindings) -> None:
    """Edges for callables handed across a pool dispatch boundary."""
    func = call.func
    if not isinstance(func, ast.Attribute) or \
            func.attr not in DISPATCH_METHODS:
        return
    base = func.value
    if not (isinstance(base, ast.Name)
            and bindings.instances.get(base.id) in DISPATCH_CLASSES):
        return
    runner_exprs = list(call.args[:1]) + [
        kw.value for kw in call.keywords
        if kw.arg in ("runner", "func", "initializer")]
    for expr in runner_exprs:
        for key in _callable_targets(program, mod, expr):
            _add_edge(program, caller, key, path, call.lineno,
                      "dispatch", False, call)


def build_program(modules: Iterable[ModuleInfo]) -> Program:
    """Two passes: register definitions, then resolve call sites."""
    program = Program()
    ordered = [m for m in modules]
    for module in ordered:
        program.modules[module.module or module.path] = module
    for module in ordered:
        _collect_definitions(program, module)
    for module in ordered:
        _collect_edges(program, module)
    return program


# ---------------------------------------------------------------------------
# scope helpers shared with the program rules
# ---------------------------------------------------------------------------


def iter_scopes(
    module: ModuleInfo,
) -> Iterator[tuple[str, ast.AST, str | None]]:
    """(qualname or ``<module>``, scope node, enclosing class)."""
    return _iter_scopes(module)


def scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk one scope, skipping nested defs (lambdas transparent)."""
    return _scope_walk(scope)


def scan_bindings(program: Program, module: str, scope: ast.AST,
                  owner: FunctionNode | None = None) -> ScopeBindings:
    """Local callable/instance bindings visible inside ``scope``."""
    return _scan_bindings(program, module, scope, owner)


# ---------------------------------------------------------------------------
# reaching-kwargs helper
# ---------------------------------------------------------------------------


def call_passes_kwarg(call: ast.Call, callee: FunctionNode,
                      param: str, bound: bool) -> bool:
    """Whether ``call`` forwards ``param`` to ``callee``.

    True when the keyword is given explicitly, a ``**`` splat may
    carry it, or enough positional arguments are supplied to cover the
    parameter's slot.  Unresolvable cases count as "passed" — the rule
    built on this must only fire on definite omissions.
    """
    for kw in call.keywords:
        if kw.arg is None or kw.arg == param:
            return True
    index = callee.positional_index(param, bound)
    if index is None:
        # keyword-only parameter and no explicit keyword: not passed.
        return False
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return True
    return len(call.args) > index


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def render_callgraph_json(program: Program,
                          root_paths: Sequence[str] = ()) -> str:
    """Versioned JSON export (the ``repro callgraph`` contract)."""
    nodes = [
        {
            "id": fn.key,
            "module": fn.module,
            "qualname": fn.qualname,
            "path": fn.path,
            "line": fn.lineno,
            "params": list(fn.params) + list(fn.kwonly),
        }
        for fn in sorted(program.functions.values(),
                         key=lambda f: f.key)
    ]
    edges = [
        {
            "caller": e.caller,
            "callee": e.callee,
            "path": e.path,
            "line": e.lineno,
            "kind": e.kind,
        }
        for e in sorted(program.edges,
                        key=lambda e: (e.path, e.lineno, e.callee))
    ]
    payload = {
        "schema_version": CALLGRAPH_SCHEMA_VERSION,
        "root_paths": list(root_paths),
        "counts": {
            "modules": len(program.modules),
            "functions": len(nodes),
            "edges": len(edges),
        },
        "nodes": nodes,
        "edges": edges,
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_dot(program: Program) -> str:
    """Graphviz export; one cluster per module, edges styled by kind."""
    styles = {"call": "solid", "dispatch": "dashed", "table": "dotted"}
    lines = ["digraph callgraph {", "  rankdir=LR;",
             '  node [shape=box, fontsize=10];']
    by_module: dict[str, list[FunctionNode]] = {}
    for fn in program.functions.values():
        by_module.setdefault(fn.module, []).append(fn)
    for index, module in enumerate(sorted(by_module)):
        lines.append(f'  subgraph "cluster_{index}" {{')
        lines.append(f'    label="{module}";')
        for fn in sorted(by_module[module], key=lambda f: f.key):
            lines.append(
                f'    "{fn.key}" [label="{fn.qualname}"];')
        lines.append("  }")
    seen: set[tuple[str, str, str]] = set()
    for edge in sorted(program.edges,
                       key=lambda e: (e.caller, e.callee, e.kind)):
        dedup = (edge.caller, edge.callee, edge.kind)
        if dedup in seen or edge.callee not in program.functions:
            continue
        seen.add(dedup)
        style = styles.get(edge.kind, "solid")
        lines.append(
            f'  "{edge.caller}" -> "{edge.callee}" [style={style}];')
    lines.append("}")
    return "\n".join(lines) + "\n"
