"""Finding reporters: human text and machine JSON.

Both take the same sorted finding list the engine produces.  The JSON
schema is versioned and locked by ``tests/test_analysis.py`` — CI
consumes it, so additive changes only, and any field change bumps
``JSON_SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .findings import Finding

__all__ = ["JSON_SCHEMA_VERSION", "render_text", "render_json"]

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding],
                files_checked: int | None = None) -> str:
    """One ``path:line:col: RXXX message`` line per finding + summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        counts = Counter(f.rule_id for f in findings)
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(counts.items()))
        lines.append(
            f"{len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} ({breakdown})")
    else:
        checked = (f" in {files_checked} file"
                   f"{'s' if files_checked != 1 else ''}"
                   if files_checked is not None else "")
        lines.append(f"no findings{checked}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                files_checked: int | None = None) -> str:
    """Stable JSON document for CI: version, findings, counts."""
    counts = Counter(f.rule_id for f in findings)
    document = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
        "total": len(findings),
        "files_checked": files_checked,
    }
    return json.dumps(document, indent=2, sort_keys=True)
