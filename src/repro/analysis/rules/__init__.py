"""The rule catalogue.

One module per rule; ``ALL_RULES`` is the registry the engine and CLI
resolve against.  To add a rule: subclass
:class:`repro.analysis.engine.Rule` in a new ``rXXX_*.py`` module,
instantiate it here, and document it in ``docs/STATIC_ANALYSIS.md``
(the doc's catalogue is asserted against this registry by the tests).
"""

from .r001_mask_discipline import MaskDisciplineRule
from .r002_determinism import DeterministicIterationRule
from .r003_worker_hygiene import WorkerHygieneRule
from .r004_graph_mutation import GraphArgumentMutationRule
from .r005_public_api import PublicApiRule
from .r006_layering import ImportLayeringRule
from .r007_annotations import AnnotationCompletenessRule
from .r008_tracer_discipline import TracerDisciplineRule
from .r009_pool_discipline import PoolDisciplineRule
from .r010_vectorization import VectorizationDisciplineRule
from .r011_dynamic_mutation import DynamicMutationRule
from .r012_kwarg_threading import KwargThreadingRule
from .r013_exception_flow import ExceptionFlowRule
from .r014_spawn_payload import SpawnPayloadRule

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "MaskDisciplineRule",
    "DeterministicIterationRule",
    "WorkerHygieneRule",
    "GraphArgumentMutationRule",
    "PublicApiRule",
    "ImportLayeringRule",
    "AnnotationCompletenessRule",
    "TracerDisciplineRule",
    "PoolDisciplineRule",
    "VectorizationDisciplineRule",
    "DynamicMutationRule",
    "KwargThreadingRule",
    "ExceptionFlowRule",
    "SpawnPayloadRule",
]

ALL_RULES = (
    MaskDisciplineRule(),
    DeterministicIterationRule(),
    WorkerHygieneRule(),
    GraphArgumentMutationRule(),
    PublicApiRule(),
    ImportLayeringRule(),
    AnnotationCompletenessRule(),
    TracerDisciplineRule(),
    PoolDisciplineRule(),
    VectorizationDisciplineRule(),
    DynamicMutationRule(),
    KwargThreadingRule(),
    ExceptionFlowRule(),
    SpawnPayloadRule(),
)

RULES_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}
