"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "GRAPH_TYPE_NAMES",
    "annotation_name",
    "call_name",
    "is_constant_expr",
    "is_type_checking_test",
    "iter_scoped_nodes",
    "walk_module_statements",
]

#: The three graph substrates of the solver stack.
GRAPH_TYPE_NAMES = frozenset(
    {"SignedGraph", "DichromaticGraph", "UnsignedGraph"})


def call_name(node: ast.Call) -> str | None:
    """The bare callee name of ``name(...)`` calls, else ``None``."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def annotation_name(annotation: ast.expr | None) -> str | None:
    """Terminal identifier of a parameter annotation.

    Handles ``SignedGraph``, ``pkg.SignedGraph``, string annotations
    like ``"SignedGraph | None"`` (first identifier wins) and
    ``Optional[SignedGraph]`` — good enough to recognise graph-typed
    parameters without a type checker.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        text = annotation.value
        for token in text.replace("[", " ").replace("]", " ") \
                .replace("|", " ").replace(",", " ").split():
            if token.isidentifier() and token not in ("Optional", "None"):
                return token.rpartition(".")[2]
        return None
    if isinstance(annotation, ast.Subscript):
        return annotation_name(annotation.value)
    if isinstance(annotation, ast.BinOp) and \
            isinstance(annotation.op, ast.BitOr):
        return annotation_name(annotation.left) or \
            annotation_name(annotation.right)
    return None


def is_constant_expr(node: ast.expr) -> bool:
    """Whether an expression is a compile-time constant.

    Used by R003 to allow module-level constants (ints, strings,
    ``None``, tuples/lists/dicts of constants, negated numbers) while
    rejecting module-level *state* (graphs, pools, mutable caches built
    by calls).
    """
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and \
            isinstance(node.op, (ast.USub, ast.UAdd)):
        return is_constant_expr(node.operand)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return all(is_constant_expr(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return all(k is not None and is_constant_expr(k)
                   for k in node.keys) and \
            all(is_constant_expr(v) for v in node.values)
    return False


def is_type_checking_test(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``TYPE_CHECKING`` guard."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def walk_module_statements(
    tree: ast.Module,
) -> Iterator[tuple[ast.stmt, bool]]:
    """Module-scope statements, descending into if/try/with/loop blocks.

    Yields ``(statement, in_type_checking)`` pairs.  Function and class
    bodies are *not* entered — their statements bind local/class names,
    not module names.
    """

    def visit(stmts: list[ast.stmt],
              guarded: bool) -> Iterator[tuple[ast.stmt, bool]]:
        for stmt in stmts:
            yield stmt, guarded
            if isinstance(stmt, ast.If):
                inner = guarded or is_type_checking_test(stmt.test)
                yield from visit(stmt.body, inner)
                yield from visit(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.For, ast.While)):
                yield from visit(stmt.body, guarded)
                yield from visit(stmt.orelse, guarded)
            elif isinstance(stmt, ast.With):
                yield from visit(stmt.body, guarded)
            elif isinstance(stmt, ast.Try):
                yield from visit(stmt.body, guarded)
                for handler in stmt.handlers:
                    yield from visit(handler.body, guarded)
                yield from visit(stmt.orelse, guarded)
                yield from visit(stmt.finalbody, guarded)

    yield from visit(tree.body, False)


def iter_scoped_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` minus nested function/class bodies.

    Walks every node that executes in ``root``'s own scope; a nested
    ``def``/``class``/``lambda`` is yielded itself but not entered.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
