"""R001 — mask discipline in the bitset hot path.

The bitset engine's entire speed advantage rests on every per-node
operation staying on machine-word int masks (see
``docs/ALGORITHMS.md``, "Engine architecture").  A stray ``set()``
round-trip inside a kernel or a bitset branch silently reintroduces
the per-element Python-object costs the engine exists to avoid — and
the differential tests cannot catch it because the *result* stays
correct, only 2-10x slower.

Scope: every module of ``repro.kernels``, plus the bitset scopes of
the dichromatic engines (``repro.dichromatic.mdc`` / ``dcc``): class
bodies whose name contains ``Bitset`` and functions whose name carries
a ``_mask`` / ``_bits`` / ``bits_`` marker.  The engine-dispatch
wrappers that *convert* between the set API and masks live outside
those scopes on purpose.

Flagged: set literals, set comprehensions, ``set(...)`` /
``frozenset(...)`` constructor calls, and calls of set-specific
methods (``.add``, ``.discard``, ``.intersection`` ...).  Intentional
boundary materialisations (e.g. packaging a found clique as a ``set``
for the caller) carry ``# repro: noqa R001`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding
from .common import call_name, iter_scoped_nodes

__all__ = ["MaskDisciplineRule"]

#: Methods that exist (with these semantics) only on sets — calling
#: one inside a bitset scope means a set object slipped in.
SET_METHODS = frozenset({
    "add", "discard", "intersection", "union", "difference",
    "symmetric_difference", "intersection_update", "difference_update",
    "symmetric_difference_update", "issubset", "issuperset",
    "isdisjoint",
})

#: Dichromatic-engine modules whose *bitset scopes* are in scope.
MIXED_MODULES = frozenset(
    {"repro.dichromatic.mdc", "repro.dichromatic.dcc"})

#: Function-name markers that place a function in a bitset scope.
_MASK_MARKERS = ("_mask", "_bits", "bits_", "mask_")


def _is_bitset_scope_name(name: str) -> bool:
    lowered = name.lower()
    return "bitset" in lowered or any(
        marker in lowered for marker in _MASK_MARKERS)


class MaskDisciplineRule(Rule):
    rule_id = "R001"
    title = "no Python-set vertex operations in the bitset hot path"
    rationale = (
        "kernels and bitset branches must stay on int masks; a set "
        "fallback keeps results correct but forfeits the engine's "
        "2-10x speedup, invisibly to the differential tests")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package == "repro.kernels" or \
            module.module in MIXED_MODULES

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        whole_module = module.package == "repro.kernels"
        if whole_module:
            yield from self._check_scope(module, module.tree,
                                         deep=True)
            return
        # Mixed modules: only class/function bodies marked as bitset.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and \
                    "bitset" in node.name.lower():
                yield from self._check_scope(module, node, deep=True)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)) and \
                    _is_bitset_scope_name(node.name):
                yield from self._check_scope(module, node, deep=True)

    def _check_scope(self, module: ModuleInfo, root: ast.AST,
                     deep: bool = False) -> Iterator[Finding]:
        nodes = ast.walk(root) if deep else iter_scoped_nodes(root)
        for node in nodes:
            if isinstance(node, ast.Set):
                yield self.finding(
                    module, node,
                    "set literal in a bitset scope — build an int "
                    "mask (repro.kernels.bitset.mask_of) instead")
            elif isinstance(node, ast.SetComp):
                yield self.finding(
                    module, node,
                    "set comprehension in a bitset scope — fold into "
                    "a mask with bit ops instead")
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in ("set", "frozenset"):
                    yield self.finding(
                        module, node,
                        f"{name}() constructed in a bitset scope — "
                        "stay on int masks (or pragma the boundary "
                        "materialisation)")
                elif isinstance(node.func, ast.Attribute) and \
                        node.func.attr in SET_METHODS:
                    yield self.finding(
                        module, node,
                        f".{node.func.attr}() set operation in a "
                        "bitset scope — use mask bit ops instead")
