"""R002 — deterministic iteration in result-producing modules.

The repo's contract (DESIGN.md §5, "Key algorithmic invariants") is
that every user-visible result — cliques, converted graphs, baseline
communities — is identical across runs and across
``PYTHONHASHSEED`` values.  Iterating a ``set`` (hash order) while
*building* a result breaks that silently: the optimum stays optimal,
but tie-broken witnesses, edge insertion orders and downstream
orderings drift between runs, which poisons differential tests and
makes benchmark diffs unreadable.

Scope: the result-producing modules — ``repro.core.*``,
``repro.baselines.*`` and ``repro.signed.ratings`` (the rating-network
converter whose output *is* a graph).

Flagged: ``for`` statements and comprehension clauses whose iterable
is set-producing — a set literal / comprehension, ``set(...)`` /
``frozenset(...)`` call, or a union/intersection/difference chain of
such — plus explicit ``dict.keys()`` iteration (iterate the dict, or
``sorted()`` it when insertion order itself is unordered).  Wrapping
the expression in ``sorted()`` is the fix and the exemption; the
transparent wrappers ``list`` / ``tuple`` / ``enumerate`` /
``reversed`` are seen through rather than trusted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding
from .common import call_name

__all__ = ["DeterministicIterationRule"]

#: Packages whose modules produce user-visible results.
TARGET_PACKAGES = frozenset({"repro.core", "repro.baselines"})

#: Individual modules additionally in scope.
TARGET_MODULES = frozenset({"repro.signed.ratings"})

#: Wrappers that preserve (non-)determinism of the underlying iterable.
_TRANSPARENT_WRAPPERS = frozenset(
    {"list", "tuple", "enumerate", "reversed", "iter"})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_producing(node: ast.expr) -> bool:
    """Whether an expression statically evaluates to a hash-ordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        if name in _TRANSPARENT_WRAPPERS and node.args:
            return _is_set_producing(node.args[0])
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_producing(node.left) or \
            _is_set_producing(node.right)
    return False


def _is_keys_call(node: ast.expr) -> bool:
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Attribute) and \
            node.func.attr == "keys" and not node.args:
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in _TRANSPARENT_WRAPPERS and node.args:
            return _is_keys_call(node.args[0])
    return False


class DeterministicIterationRule(Rule):
    rule_id = "R002"
    title = "no hash-ordered iteration in result-producing modules"
    rationale = (
        "solver output must be identical across runs and "
        "PYTHONHASHSEED values; iterating a set while building a "
        "result makes witnesses and edge orders drift silently")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package in TARGET_PACKAGES or \
            module.module in TARGET_MODULES

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                if _is_set_producing(expr):
                    yield self.finding(
                        module, expr,
                        "iteration over a set expression — wrap it in "
                        "sorted() so the order survives hash "
                        "randomisation")
                elif _is_keys_call(expr):
                    yield self.finding(
                        module, expr,
                        "iteration over .keys() — iterate the dict "
                        "itself, or sorted(...) if its insertion "
                        "order is unordered")
