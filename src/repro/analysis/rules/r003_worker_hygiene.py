"""R003 — worker hygiene in the parallel fan-out engine.

``repro.parallel`` correctness rests on three process-boundary rules
(docs/ALGORITHMS.md, "Parallel execution"):

1. **No module-level state beyond constants.**  Under ``fork`` a
   module global is silently copied into every child; under ``spawn``
   it is silently *re-initialised*.  Anything stateful at module level
   therefore behaves differently per start method.  The single
   sanctioned slot is the worker context installed via
   ``install_context`` (constant-``None`` initialised), so the rule
   allows constant-initialised assignments only, and ``global``
   statements only inside ``install_context``.

2. **Incumbent writes only via ``SharedIncumbent``.**  The shared
   lower bound is a monotone max-register; a direct ``.value =``
   store or an out-of-class lock dance can lower it, which breaks the
   exactness argument (a task skipped against an inflated bound may
   have held the optimum).  Private register state (``._value`` /
   ``._local``) must not be touched outside ``incumbent.py``.

3. **Everything dispatched must be picklable.**  A lambda or nested
   function handed to a pool method works under ``fork`` and dies
   under ``spawn`` — the classic "works on my Linux box" failure.

Scope: every module of ``repro.parallel`` (``incumbent.py`` itself is
exempt from the private-state check — it *is* the abstraction).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding
from .common import is_constant_expr, walk_module_statements


def _is_type_alias_expr(node: ast.expr) -> bool:
    """Type-alias shapes: ``tuple[...]``, names, unions, str forwards.

    A ``PackedContext = tuple[bytes, ...]`` alias is module-level
    *vocabulary*, not state — nothing about it diverges between fork
    and spawn — so R003's constant-only check lets these through.
    """
    if isinstance(node, (ast.Name, ast.Attribute)):
        return True
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str)
    if isinstance(node, ast.Subscript):
        return _is_type_alias_expr(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _is_type_alias_expr(node.left) and \
            _is_type_alias_expr(node.right)
    return False

__all__ = ["WorkerHygieneRule"]

#: Pool dispatch methods whose function argument crosses the process
#: boundary and therefore must be picklable.
POOL_DISPATCH_METHODS = frozenset({
    "map", "imap", "imap_unordered", "map_async",
    "apply", "apply_async", "starmap", "starmap_async", "submit",
})

#: Private register attributes owned by incumbent.py.
_PRIVATE_INCUMBENT_ATTRS = frozenset({"_value", "_local"})

#: The one function allowed to rebind module state.
_SANCTIONED_GLOBAL_FN = "install_context"


class WorkerHygieneRule(Rule):
    rule_id = "R003"
    title = "parallel workers: constant globals, picklable dispatch, " \
            "incumbent writes via SharedIncumbent"
    rationale = (
        "module globals diverge between fork and spawn, unpicklable "
        "callables die only under spawn, and raw incumbent writes can "
        "lower the shared bound and break exactness")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package == "repro.parallel"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_module_state(module)
        yield from self._check_dispatch_and_writes(module)

    def _check_module_state(self,
                            module: ModuleInfo) -> Iterator[Finding]:
        for stmt, guarded in walk_module_statements(module.tree):
            if guarded:
                continue
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is not None and not is_constant_expr(value) \
                    and not _is_type_alias_expr(value):
                yield self.finding(
                    module, stmt,
                    "module-level state must be constant-initialised "
                    "— anything else diverges between fork and spawn "
                    "workers")

    def _check_dispatch_and_writes(
            self, module: ModuleInfo) -> Iterator[Finding]:
        is_incumbent_module = module.leaf_name == "incumbent"
        # Map each ``global`` statement to its enclosing function name.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Global) and \
                            node.name != _SANCTIONED_GLOBAL_FN:
                        yield self.finding(
                            module, inner,
                            f"global statement outside "
                            f"{_SANCTIONED_GLOBAL_FN}() — worker "
                            "state has exactly one sanctioned slot")
            if isinstance(node, (ast.Assign, ast.AugAssign)) and \
                    not is_incumbent_module:
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            target.attr == "value":
                        yield self.finding(
                            module, target,
                            ".value store — publish through "
                            "SharedIncumbent.improve() so the "
                            "register stays monotone")
            if isinstance(node, ast.Attribute) and \
                    node.attr in _PRIVATE_INCUMBENT_ATTRS and \
                    not is_incumbent_module and \
                    not (isinstance(node.value, ast.Name) and
                         node.value.id == "self"):
                yield self.finding(
                    module, node,
                    f".{node.attr} private incumbent state accessed "
                    "outside incumbent.py — use the public "
                    "SharedIncumbent API")
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                if node.func.attr == "get_lock" and \
                        not is_incumbent_module:
                    yield self.finding(
                        module, node,
                        ".get_lock() outside incumbent.py — the "
                        "register's locking is SharedIncumbent's "
                        "business alone")
                if node.func.attr in POOL_DISPATCH_METHODS:
                    yield from self._check_picklable_args(module, node)

    def _check_picklable_args(
            self, module: ModuleInfo,
            call: ast.Call) -> Iterator[Finding]:
        candidates: list[ast.expr] = []
        if call.args:
            candidates.append(call.args[0])
        candidates.extend(
            kw.value for kw in call.keywords
            if kw.arg in ("func", "initializer"))
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda):
                yield self.finding(
                    module, candidate,
                    "lambda crosses the process boundary — it works "
                    "under fork but is unpicklable under spawn; use "
                    "a module-level function")
