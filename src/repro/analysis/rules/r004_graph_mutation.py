"""R004 — solver functions must not mutate their graph arguments.

Every solver in ``repro.core`` / ``repro.dichromatic`` documents (and
the property tests assume) that the input graph comes back unchanged:
callers run MBC*, PF* and gMBC* over the *same* graph object, the
benchmark harness reuses loaded datasets across engines and worker
counts, and the parallel engine ships one reduced copy to every
worker.  An in-place ``remove_edge`` on an argument would corrupt
every later solve on that graph — the canonical pattern is
``reduced = graph.copy()`` first (see ``core/reductions.py``).

Scope: functions in ``repro.core.*`` and ``repro.dichromatic.*``.  A
parameter counts as a graph when its annotation names one of the three
graph substrates or it is literally called ``graph``.  Mutating calls
(``add_edge`` ...), attribute stores/deletes and augmented assignments
on such a parameter are flagged — unless the function rebinds the name
first (then it no longer refers to the argument).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding
from .common import GRAPH_TYPE_NAMES, annotation_name

__all__ = ["GraphArgumentMutationRule"]

#: In-place mutators of the three graph substrates (shared with R011,
#: which polices the same methods inside ``repro.dynamic``).
GRAPH_MUTATORS = frozenset({
    "add_edge", "remove_edge", "flip_sign", "add_vertex",
    "isolate_vertex", "rate", "_invalidate_bits",
})

TARGET_PACKAGES = frozenset(
    {"repro.core", "repro.dichromatic", "repro.dynamic"})


def _graph_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    params: set[str] = set()
    args = fn.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg in ("self", "cls"):
            continue
        if annotation_name(arg.annotation) in GRAPH_TYPE_NAMES or \
                arg.arg == "graph":
            params.add(arg.arg)
    return params


def _binding_names(target: ast.expr) -> Iterator[str]:
    """Names *bound* by an assignment target.

    Only bare names and destructuring patterns bind; a ``Name`` buried
    inside an ``Attribute``/``Subscript`` target (``graph.dirty = x``)
    mutates the object and must not count as rebinding it.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _binding_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _rebound_names(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                   names: set[str]) -> set[str]:
    """Parameter names the function rebinds (conservatively, anywhere)."""
    rebound: set[str] = set()
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign,
                               ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, ast.withitem) and \
                node.optional_vars is not None:
            targets = [node.optional_vars]
        for target in targets:
            for name in _binding_names(target):
                if name in names:
                    rebound.add(name)
    return rebound


class GraphArgumentMutationRule(Rule):
    rule_id = "R004"
    title = "no in-place mutation of graph arguments in solvers"
    rationale = (
        "callers reuse graph objects across solves, engines and "
        "worker counts; an in-place edit on an argument corrupts "
        "every later solve — copy first (graph.copy())")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package in TARGET_PACKAGES

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
            self, module: ModuleInfo,
            fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        params = _graph_params(fn)
        if not params:
            return
        live = params - _rebound_names(fn, params)
        if not live:
            return
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    isinstance(node.func.value, ast.Name) and \
                    node.func.value.id in live and \
                    node.func.attr in GRAPH_MUTATORS:
                yield self.finding(
                    module, node,
                    f"{node.func.value.id}.{node.func.attr}() mutates "
                    f"a graph argument of {fn.name}() — work on "
                    f"{node.func.value.id}.copy() instead")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id in live:
                        yield self.finding(
                            module, target,
                            f"attribute store on graph argument "
                            f"{target.value.id!r} in {fn.name}() — "
                            "solvers must not mutate their inputs")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id in live:
                        yield self.finding(
                            module, target,
                            f"attribute delete on graph argument "
                            f"{target.value.id!r} in {fn.name}()")
