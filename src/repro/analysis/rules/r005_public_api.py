"""R005 — public-API hygiene: ``__all__`` present, static, and in sync.

Every module of the package declares its public surface with
``__all__``; package ``__init__`` files re-export the curated API
from their submodules.  The declaration is only worth anything while
it stays true, so the rule checks, per module:

* ``__all__`` exists (entry-point ``__main__`` modules and private
  ``_``-prefixed modules are exempt);
* it is a *static* list/tuple of string literals (dynamic construction
  defeats both this check and ``mypy``'s re-export analysis);
* no duplicate entries;
* every entry is actually bound at module level (def / class / import
  / assignment), so a rename cannot silently strand an export;
* no ``import *`` — it makes the binding set unknowable statically.

Public names *not* listed in ``__all__`` are deliberately not flagged:
module-level helpers shared between siblings (e.g. the set-engine
reference kernels) are importable-but-not-exported by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding
from .common import walk_module_statements

__all__ = ["PublicApiRule"]


def _module_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module scope (including TYPE_CHECKING blocks)."""
    bound: set[str] = set()
    for stmt, _guarded in walk_module_statements(tree):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                               ast.For, ast.AsyncFor)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        bound.add(leaf.id)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for leaf in ast.walk(item.optional_vars):
                        if isinstance(leaf, ast.Name):
                            bound.add(leaf.id)
    return bound


class PublicApiRule(Rule):
    rule_id = "R005"
    title = "__all__ present, static, duplicate-free, and in sync"
    rationale = (
        "the curated export list is the package's API contract and "
        "what mypy's re-export analysis trusts; a stale entry is an "
        "ImportError waiting in `from repro.x import *` users")

    def applies_to(self, module: ModuleInfo) -> bool:
        if not super().applies_to(module):
            return False
        leaf = module.leaf_name or ""
        if module.is_package_init:
            return True
        return not leaf.startswith("_")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        dunder_all: ast.Assign | ast.AnnAssign | None = None
        star_imports: list[ast.ImportFrom] = []
        for stmt, _guarded in walk_module_statements(module.tree):
            if isinstance(stmt, ast.ImportFrom) and \
                    any(a.name == "*" for a in stmt.names):
                star_imports.append(stmt)
            if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets):
                dunder_all = stmt
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name) and \
                    stmt.target.id == "__all__":
                dunder_all = stmt

        for star in star_imports:
            yield self.finding(
                module, star,
                "star import — makes the module's bindings "
                "statically unknowable; import names explicitly")

        if dunder_all is None:
            yield self.finding(
                module, module.tree.body[0] if module.tree.body
                else module.tree,
                "missing __all__ — every public module declares its "
                "export surface")
            return

        value = dunder_all.value
        if not isinstance(value, (ast.List, ast.Tuple)) or not all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in value.elts):
            yield self.finding(
                module, dunder_all,
                "__all__ must be a static list/tuple of string "
                "literals")
            return

        names = [e.value for e in value.elts
                 if isinstance(e, ast.Constant)]
        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield self.finding(
                    module, dunder_all,
                    f"duplicate __all__ entry {name!r}")
            seen.add(name)

        if star_imports:
            return  # bindings unknowable; the star finding suffices
        bound = _module_level_bindings(module.tree)
        for name in names:
            if name not in bound:
                yield self.finding(
                    module, dunder_all,
                    f"__all__ entry {name!r} is not bound at module "
                    "level — stale export")
