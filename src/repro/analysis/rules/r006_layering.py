"""R006 — import layering between the solver-stack packages.

The package DAG (DESIGN.md §6, enforced here so refactors cannot
silently invert it)::

      obs                        (tracing/metrics; imports nothing)
       ^
    kernels                      (pure mask primitives: bitset ints
                                  + the optional numpy matrices of
                                  ``repro.kernels.npmask``)
      ^        ^
    signed   unsigned            (graph substrates)
      ^        ^
       dichromatic               (ego-network transformation, MDC/DCC)
      ^        ^
    metrics  parallel            (parallel may use core.result/stats leaves)
      ^        ^
        core                     (MBC*/PF*/gMBC* drivers)
      ^        ^
 baselines  datasets             (comparison code and stand-ins)
      ^        ^
       dynamic                   (incremental re-solving over edits)
      ^        ^
        serve                    (HTTP daemon: cache + registry +
                                  worker pool over everything below)

``repro.obs`` is the one layer *every* solver package may import — it
is how the tracer threads through the stack without new edges — and
itself imports nothing from the rest of the package.

``repro.analysis`` (this package) sits outside the stack entirely and
must stay stdlib-only, so linting never imports — or depends on — the
code under analysis.  Top-level modules (``repro.cli`` & co.) are the
composition root and may import anything.

``TYPE_CHECKING``-guarded imports are exempt: they express *type*
references (e.g. ``dichromatic`` annotating a ``SearchStats``
parameter) without creating a runtime edge.  Function-local imports
are **not** exempt — a lazy import is still a runtime dependency.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding
from .common import is_type_checking_test

__all__ = ["ImportLayeringRule", "ALLOWED_PACKAGE_IMPORTS",
           "ALLOWED_MODULE_IMPORTS"]

#: package -> packages it may import from at runtime.
#: ``repro.resilience`` sits at the bottom like ``repro.obs``: every
#: solver package may thread its Budget/fault primitives through, and
#: it imports nothing back.
ALLOWED_PACKAGE_IMPORTS: dict[str, frozenset[str]] = {
    "repro.obs": frozenset(),
    "repro.resilience": frozenset(),
    "repro.kernels": frozenset({"repro.obs"}),
    "repro.signed": frozenset({"repro.kernels", "repro.obs"}),
    "repro.unsigned": frozenset({"repro.kernels", "repro.obs"}),
    "repro.dichromatic": frozenset(
        {"repro.kernels", "repro.signed", "repro.unsigned",
         "repro.obs", "repro.resilience"}),
    "repro.metrics": frozenset(
        {"repro.kernels", "repro.signed", "repro.unsigned",
         "repro.obs"}),
    "repro.parallel": frozenset(
        {"repro.kernels", "repro.signed", "repro.unsigned",
         "repro.dichromatic", "repro.obs", "repro.resilience"}),
    "repro.core": frozenset(
        {"repro.kernels", "repro.signed", "repro.unsigned",
         "repro.dichromatic", "repro.metrics", "repro.parallel",
         "repro.obs", "repro.resilience"}),
    "repro.dynamic": frozenset(
        {"repro.kernels", "repro.signed", "repro.unsigned",
         "repro.dichromatic", "repro.parallel", "repro.core",
         "repro.obs", "repro.resilience"}),
    "repro.baselines": frozenset(
        {"repro.kernels", "repro.signed", "repro.unsigned",
         "repro.metrics", "repro.obs", "repro.resilience"}),
    "repro.datasets": frozenset(
        {"repro.kernels", "repro.signed", "repro.obs"}),
    "repro.serve": frozenset(
        {"repro.kernels", "repro.signed", "repro.core",
         "repro.dynamic", "repro.datasets", "repro.obs",
         "repro.resilience"}),
    "repro.analysis": frozenset(),
}

#: Exact-module escape hatches: repro.parallel may import the two
#: *leaf* value/stat modules of core (they import nothing back), which
#: is what keeps the core <-> parallel recursion from being a cycle.
ALLOWED_MODULE_IMPORTS: dict[str, frozenset[str]] = {
    "repro.parallel": frozenset(
        {"repro.core.result", "repro.core.stats"}),
}


def _package_of(module_name: str) -> str | None:
    """``repro.core.pf`` -> ``repro.core``; top-level -> ``None``."""
    parts = module_name.split(".")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    return ".".join(parts[:2])


def _resolve_relative(module: ModuleInfo, level: int,
                      target: str | None) -> str | None:
    """Absolute dotted name of a ``from ...x import y`` target."""
    if module.module is None:
        return None
    base = module.module.split(".")
    if not module.is_package_init:
        base = base[:-1]
    if level > 1:
        cut = level - 1
        if cut >= len(base):
            return None
        base = base[:-cut]
    if target:
        base = base + target.split(".")
    return ".".join(base)


class ImportLayeringRule(Rule):
    rule_id = "R006"
    title = "solver-stack packages import only downward in the layer DAG"
    rationale = (
        "the kernel layer stays import-cycle-free and the parallel "
        "engine's workers stay loadable without dragging in the "
        "drivers; an upward import compiles fine today and deadlocks "
        "a refactor tomorrow")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        package = module.package
        if module.module is None or package is None:
            return
        if package not in ALLOWED_PACKAGE_IMPORTS:
            return  # top-level composition root: unrestricted
        allowed = ALLOWED_PACKAGE_IMPORTS[package]
        allowed_modules = ALLOWED_MODULE_IMPORTS.get(
            package, frozenset())
        for node, guarded in _walk_imports(module.tree):
            if guarded:
                continue
            for resolved in _import_targets(module, node):
                if resolved is None or \
                        not resolved.startswith("repro"):
                    continue
                target_pkg = _package_of(resolved)
                if target_pkg is None or target_pkg == package:
                    continue
                if target_pkg in allowed:
                    continue
                if resolved in allowed_modules or any(
                        resolved.startswith(m + ".") or resolved == m
                        for m in allowed_modules):
                    continue
                yield self.finding(
                    module, node,
                    f"{package} must not import {resolved} — allowed "
                    f"packages: "
                    f"{sorted(allowed | allowed_modules) or 'none'}")


def _walk_imports(
    tree: ast.Module,
) -> Iterator[tuple[ast.Import | ast.ImportFrom, bool]]:
    """Every import in the module with its TYPE_CHECKING-guard flag."""

    def visit(node: ast.AST, guarded: bool) -> Iterator[
            tuple[ast.Import | ast.ImportFrom, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                yield child, guarded
            elif isinstance(child, ast.If):
                inner = guarded or is_type_checking_test(child.test)
                for stmt in child.body:
                    yield from visit_stmt(stmt, inner)
                for stmt in child.orelse:
                    yield from visit_stmt(stmt, guarded)
            else:
                yield from visit(child, guarded)

    def visit_stmt(stmt: ast.stmt, guarded: bool) -> Iterator[
            tuple[ast.Import | ast.ImportFrom, bool]]:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt, guarded
        else:
            yield from visit(stmt, guarded)

    yield from visit(tree, False)


def _import_targets(
    module: ModuleInfo,
    node: ast.Import | ast.ImportFrom,
) -> Iterator[str | None]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
        return
    if node.level == 0:
        base = node.module
        for alias in node.names:
            # ``from repro.core import stats`` imports the submodule
            # too; resolve against the deepest name we can.
            yield f"{base}.{alias.name}" if base else alias.name
        return
    base_resolved = _resolve_relative(module, node.level, node.module)
    for alias in node.names:
        if base_resolved is None:
            yield None
        else:
            yield f"{base_resolved}.{alias.name}"
