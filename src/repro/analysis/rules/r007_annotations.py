"""R007 — complete type annotations on every function of the stack.

The strict ``mypy`` gate (``mypy.ini``: ``disallow_untyped_defs`` and
friends) is what lets refactors move code between the set and bitset
engines with the type checker watching; but mypy is a CI-side tool
this environment may not have installed.  R007 is the linter-side
mirror of that contract: every module-level and class-level function
in ``repro`` must annotate all parameters and its return type, so
``repro lint`` catches an untyped def locally before CI's mypy does.

Nested (function-local) helpers are exempt — annotating three-line
closures is noise and mypy infers them from context — as are lambdas
and the ``self`` / ``cls`` receivers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding

__all__ = ["AnnotationCompletenessRule"]


def _top_and_class_level_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """``(function, is_method)`` for module- and class-level defs."""

    def from_body(body: list[ast.stmt],
                  in_class: bool) -> Iterator[
            tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                yield stmt, in_class
            elif isinstance(stmt, ast.ClassDef):
                yield from from_body(stmt.body, True)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # conditional defs (platform fallbacks) still count
                blocks = [stmt.body, stmt.orelse] if isinstance(
                    stmt, ast.If) else [stmt.body, stmt.orelse,
                                        stmt.finalbody]
                for block in blocks:
                    yield from from_body(block, in_class)

    yield from from_body(tree.body, False)


class AnnotationCompletenessRule(Rule):
    rule_id = "R007"
    title = "module- and class-level functions are fully annotated"
    rationale = (
        "the strict mypy gate is the refactoring safety net; this "
        "rule keeps untyped defs from landing when mypy is not "
        "installed locally")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for fn, is_method in _top_and_class_level_functions(
                module.tree):
            args = fn.args
            ordered = args.posonlyargs + args.args
            skip_first = bool(
                is_method and ordered
                and ordered[0].arg in ("self", "cls")
                and not any(
                    isinstance(d, ast.Name) and d.id == "staticmethod"
                    for d in fn.decorator_list))
            missing = [
                a.arg for a in (ordered[1:] if skip_first else ordered)
                + args.kwonlyargs if a.annotation is None]
            if args.vararg is not None and \
                    args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if missing:
                yield self.finding(
                    module, fn,
                    f"{fn.name}() has unannotated parameter"
                    f"{'s' if len(missing) > 1 else ''}: "
                    f"{', '.join(missing)}")
            if fn.returns is None:
                yield self.finding(
                    module, fn,
                    f"{fn.name}() is missing a return annotation")
