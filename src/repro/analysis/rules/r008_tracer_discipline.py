"""R008 — tracer discipline in the solver stack.

All timing inside the solver packages goes through :mod:`repro.obs`:
a module either receives a tracer (``trace=`` parameter, falling back
to ``current_tracer()``) or builds one via the public factory
``get_tracer``.  Two failure modes are flagged:

1. **Ad-hoc wall-clock reads** — a ``time.perf_counter()`` (or any
   other ``time``-module clock) sprinkled into ``repro.core`` or
   ``repro.dichromatic`` produces timings invisible to the trace
   sinks, untestable against the JSONL schema, and unmergeable across
   worker processes.  Flagged: calls through the ``time`` module
   (``time.time()``, ``time.perf_counter_ns()``, ...) and imports of
   those clock functions from ``time``.  ``from time import sleep``
   and other non-clock names stay legal.

2. **Direct ``Tracer(...)`` instantiation** — constructing a tracer
   bypasses :func:`repro.obs.get_tracer`, so the "disabled means the
   shared null tracer, zero allocation" contract silently erodes.

Scope: the solver-stack packages (everything R006 layers).
``repro.obs`` itself is exempt (it *implements* the clocks), as are
``repro.analysis`` and the top-level composition root (``repro.cli``
reports wall time to humans and may read clocks directly).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding

__all__ = ["TracerDisciplineRule", "CLOCK_NAMES", "TRACED_PACKAGES"]

#: ``time``-module functions that read a clock.  ``sleep``,
#: ``strftime`` & co. are deliberately absent — R008 polices *timing
#: measurements*, not every use of the module.
CLOCK_NAMES = frozenset({
    "time", "time_ns",
    "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
    "process_time", "process_time_ns",
    "thread_time", "thread_time_ns",
})

#: Packages the discipline applies to — the solver stack of R006.
TRACED_PACKAGES = frozenset({
    "repro.kernels", "repro.signed", "repro.unsigned",
    "repro.dichromatic", "repro.metrics", "repro.parallel",
    "repro.core", "repro.baselines", "repro.datasets",
    "repro.dynamic", "repro.serve",
})


class TracerDisciplineRule(Rule):
    rule_id = "R008"
    title = "solver modules time through repro.obs, never raw clocks"
    rationale = (
        "an ad-hoc time.perf_counter() produces numbers no trace sink "
        "sees and no worker merge carries, and a hand-built Tracer() "
        "bypasses the get_tracer factory's null-tracer contract")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package in TRACED_PACKAGES

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        # Names bound to clock functions by ``from time import ...``.
        clock_aliases: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and \
                    node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in CLOCK_NAMES:
                        clock_aliases.add(alias.asname or alias.name)
                        yield self.finding(
                            module, node,
                            f"from time import {alias.name} — solver "
                            f"timing goes through repro.obs spans "
                            f"(Tracer.span / span.count), not raw "
                            f"clock reads")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == "time" and \
                    func.attr in CLOCK_NAMES:
                yield self.finding(
                    module, node,
                    f"time.{func.attr}() — solver timing goes through "
                    f"repro.obs spans, not raw clock reads")
            elif isinstance(func, ast.Name) and \
                    func.id in clock_aliases:
                yield self.finding(
                    module, node,
                    f"{func.id}() reads a clock imported from time — "
                    f"solver timing goes through repro.obs spans")
            elif isinstance(func, ast.Name) and func.id == "Tracer":
                yield self.finding(
                    module, node,
                    "direct Tracer() construction — obtain tracers "
                    "via repro.obs.get_tracer / current_tracer so "
                    "the disabled path stays the shared null tracer")
