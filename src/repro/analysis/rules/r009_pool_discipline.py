"""R009 — pool discipline: dispatch through the resilient layer.

``multiprocessing.Pool`` has two well-known sharp edges the solver
stack must never re-expose (see ``docs/ROBUSTNESS.md``):

* a worker killed mid-task does **not** make ``imap_unordered`` raise
  — the pool silently repopulates and the result never arrives,
  hanging the solve forever;
* a raising worker poisons the whole ``imap`` stream, discarding the
  other chunks' finished work.

:class:`repro.parallel.dispatch.ResilientDispatcher` wraps both away
(heartbeat liveness checks, per-chunk re-dispatch, bounded joins,
budget enforcement), so the rest of the stack must route every pool
interaction through it.  Flagged in the solver-stack packages:

1. **Raw dispatch-method calls** — ``something.imap_unordered(...)``,
   ``.apply_async(...)`` and friends: the exact calls whose failure
   modes the dispatcher exists to contain.
2. **Direct pool construction** — ``Pool(...)`` /
   ``mp_ctx.Pool(...)``: a hand-built pool has no pid snapshot, no
   bounded join, and no failure budget.

Scope: the solver-stack packages of R006.  ``repro.parallel.dispatch``
is exempt — it *implements* the discipline, and keeping the raw calls
in exactly one module is the point of the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding

__all__ = ["PoolDisciplineRule", "POOL_DISPATCH_METHODS",
           "POOL_PACKAGES", "POOL_EXEMPT_MODULES"]

#: ``multiprocessing.pool.Pool`` methods that dispatch work — the
#: calls whose silent-death / stream-poisoning failure modes the
#: resilient dispatcher contains.  Plain ``map`` is deliberately
#: absent: it is too common a method name on unrelated objects for an
#: AST-level check to flag without drowning in false positives.
POOL_DISPATCH_METHODS = frozenset({
    "imap", "imap_unordered",
    "apply_async", "map_async",
    "starmap", "starmap_async",
})

#: Packages the discipline applies to — the solver stack of R006.
POOL_PACKAGES = frozenset({
    "repro.kernels", "repro.signed", "repro.unsigned",
    "repro.dichromatic", "repro.metrics", "repro.parallel",
    "repro.core", "repro.baselines", "repro.datasets",
})

#: The one module allowed to touch pools directly.
POOL_EXEMPT_MODULES = frozenset({"repro.parallel.dispatch"})


class PoolDisciplineRule(Rule):
    rule_id = "R009"
    title = "pool interactions go through the resilient dispatcher"
    rationale = (
        "a raw imap_unordered hangs forever when a worker dies and "
        "loses every sibling chunk when one raises; the dispatcher's "
        "heartbeat, re-dispatch and bounded joins exist so those "
        "failure modes live in exactly one audited module")

    def applies_to(self, module: ModuleInfo) -> bool:
        return (module.package in POOL_PACKAGES
                and module.module not in POOL_EXEMPT_MODULES)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in POOL_DISPATCH_METHODS:
                yield self.finding(
                    module, node,
                    f".{func.attr}(...) — pool dispatch goes through "
                    f"repro.parallel.dispatch.ResilientDispatcher.run, "
                    f"which survives worker death and re-dispatches "
                    f"lost chunks")
            elif isinstance(func, ast.Attribute) and \
                    func.attr == "Pool":
                yield self.finding(
                    module, node,
                    "direct .Pool(...) construction — pools are built "
                    "and torn down by repro.parallel.dispatch (pid "
                    "snapshot, bounded join, failure budget)")
            elif isinstance(func, ast.Name) and func.id == "Pool":
                yield self.finding(
                    module, node,
                    "direct Pool(...) construction — pools are built "
                    "and torn down by repro.parallel.dispatch")
