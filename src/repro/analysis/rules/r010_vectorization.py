"""R010 — vectorisation discipline in the numpy kernel backend.

The numpy engine (:mod:`repro.kernels.npmask`) earns its keep by
keeping whole-frontier work inside compiled ufuncs: one
``popcount(mat & active)`` call replaces ``n`` Python-level mask
intersections.  A Python ``for`` loop over the rows of a mask matrix
(or an element walk via ``.flat`` / ``np.nditer``) silently degrades
the backend to per-row interpreter dispatch — the result stays
correct, so the differential tests cannot catch it, but the engine
drops back to bitset speed or worse.

Scope: only ``repro.kernels.npmask`` itself.  Solver modules never
hold raw matrices (they go through npmask helpers), and the other
backends are free to loop.

Flagged, per function scope:

* ``for`` statements and comprehensions whose iterable is a name
  annotated ``Matrix`` (a row-per-vertex mask matrix) — iterate in
  the kernel, not the interpreter;
* iteration over ``<anything>.flat`` — an element-by-element walk of
  an array;
* ``np.nditer(...)`` / ``nditer(...)`` calls anywhere — the explicit
  element-iteration API has no vectorised reading.

Scalar-bounded loops stay legal: iterating a *Python list* of masks
(``matrix_from_masks``), a ``.tolist()`` materialisation of an index
vector (greedy colouring must be sequential), or a ``while`` over
peeling iterations are all fine — the per-iteration work is still
vectorised.  A deliberate row walk (none exist today) would carry
``# repro: noqa R010`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding
from .common import annotation_name

__all__ = ["VectorizationDisciplineRule"]

#: The module this rule polices.
NPMASK_MODULE = "repro.kernels.npmask"

#: Annotations that mark a name as a row-per-vertex mask matrix.
MATRIX_ANNOTATIONS = frozenset({"Matrix"})


def _matrix_names(func: ast.FunctionDef | ast.AsyncFunctionDef,
                  ) -> set[str]:
    """Names bound to mask matrices inside ``func``.

    Parameters and annotated assignments whose annotation's terminal
    identifier is ``Matrix`` — the module's own aliasing convention,
    enforced alongside R007's completeness gate.
    """
    args = func.args
    names = {
        arg.arg
        for arg in (args.posonlyargs + args.args + args.kwonlyargs)
        if annotation_name(arg.annotation) in MATRIX_ANNOTATIONS
    }
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                annotation_name(node.annotation) in MATRIX_ANNOTATIONS:
            names.add(node.target.id)
    return names


def _is_flat_walk(iterable: ast.expr) -> bool:
    """Whether an iterable is an element walk via ``.flat``."""
    return isinstance(iterable, ast.Attribute) and \
        iterable.attr == "flat"


def _is_nditer_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Name):
        return node.func.id == "nditer"
    if isinstance(node.func, ast.Attribute):
        return node.func.attr == "nditer"
    return False


class VectorizationDisciplineRule(Rule):
    rule_id = "R010"
    title = "no Python-level row loops in the numpy kernel backend"
    rationale = (
        "the numpy engine's speedup comes from whole-frontier ufunc "
        "calls; a Python for loop over matrix rows (or .flat/nditer "
        "element walks) keeps results correct but re-introduces the "
        "per-row interpreter dispatch the backend exists to avoid")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.module == NPMASK_MODULE

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            matrices = _matrix_names(func)
            yield from self._check_function(module, func, matrices)

    def _check_function(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        matrices: set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.For):
                yield from self._check_iterable(
                    module, node, node.iter, matrices)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    yield from self._check_iterable(
                        module, node, generator.iter, matrices)
            elif isinstance(node, ast.Call) and _is_nditer_call(node):
                yield self.finding(
                    module, node,
                    "np.nditer() walks array elements through the "
                    "interpreter — express the kernel as whole-array "
                    "ufunc calls instead")

    def _check_iterable(
        self,
        module: ModuleInfo,
        node: ast.AST,
        iterable: ast.expr,
        matrices: set[str],
    ) -> Iterator[Finding]:
        if isinstance(iterable, ast.Name) and iterable.id in matrices:
            yield self.finding(
                module, node,
                f"Python-level loop over the rows of matrix "
                f"{iterable.id!r} — use a vectorised kernel "
                f"(e.g. popcount(mat & active).sum(axis=1)) instead")
        elif _is_flat_walk(iterable):
            yield self.finding(
                module, node,
                "iteration over .flat walks array elements through "
                "the interpreter — use whole-array operations instead")
