"""R011 — graph mutation in ``repro.dynamic`` only via the guarded API.

The dynamic solver's whole correctness story rests on one invariant:
every mutation of the wrapped graph flows through
``DynamicSolver.add_edge`` / ``remove_edge`` / ``flip_sign``, which
update the solver-owned adjacency bits, the incremental fingerprint
and the dirty-ego sets in the same breath.  A bare
``graph.remove_edge(...)`` anywhere else in the package would leave
the caches silently desynchronised — the solver would keep returning
*certified-looking* answers for a graph that no longer exists (the
fingerprint resync only protects against mutations from *outside* the
package, at the next solve).

So, inside ``repro.dynamic``: any call of a graph mutator method — on
**any** receiver expression, since the graph hides behind attributes
like ``self._graph`` — is flagged unless it appears directly inside
one of the three guard methods.  Nested functions defined inside a
guard method do not inherit the exemption (a closure escaping the
guard is exactly the bug class this rule exists for).

The mutator name list is shared with R004 (which polices the same
methods from the *solver argument* angle in ``repro.core`` /
``repro.dichromatic``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleInfo, Rule
from ..findings import Finding
from .r004_graph_mutation import GRAPH_MUTATORS

__all__ = ["DynamicMutationRule", "GUARD_METHODS"]

#: The only function bodies allowed to call a graph mutator.
GUARD_METHODS = frozenset({
    "DynamicSolver.add_edge",
    "DynamicSolver.remove_edge",
    "DynamicSolver.flip_sign",
})

TARGET_PACKAGE = "repro.dynamic"


def _mutator_calls(scope: ast.AST) -> Iterator[ast.Call]:
    """Mutator calls executing in ``scope``'s own body.

    Descends through plain statements but *not* into nested
    ``def`` / ``class`` / ``lambda`` — those run in their own scope
    and are checked (and exempted) separately.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in GRAPH_MUTATORS:
            yield node
        stack.extend(ast.iter_child_nodes(node))


class DynamicMutationRule(Rule):
    rule_id = "R011"
    title = "repro.dynamic mutates graphs only inside the guard methods"
    rationale = (
        "an unguarded graph.add_edge() desynchronises the solver's "
        "bit caches, fingerprint and dirty sets — every later solve "
        "then returns certified-looking answers for a stale graph")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package == TARGET_PACKAGE

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_scope(module, module.tree, None)

    def _check_scope(
        self,
        module: ModuleInfo,
        scope: ast.AST,
        qualname: str | None,
    ) -> Iterator[Finding]:
        if qualname not in GUARD_METHODS:
            for call in _mutator_calls(scope):
                assert isinstance(call.func, ast.Attribute)
                yield self.finding(
                    module, call,
                    f".{call.func.attr}() outside the DynamicSolver "
                    f"mutation API — graph edits must go through "
                    f"add_edge/remove_edge/flip_sign so the bound "
                    f"caches stay in sync")
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                yield from self._check_scope(module, node, None)
            elif not isinstance(node, ast.Lambda):
                yield from self._descend(module, node)

    def _check_class(self, module: ModuleInfo,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                yield from self._check_scope(
                    module, node, f"{cls.name}.{node.name}")
            else:
                yield from self._descend(module, node)

    def _descend(self, module: ModuleInfo,
                 node: ast.AST) -> Iterator[Finding]:
        """Find nested defs/classes hiding below plain statements."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._check_class(module, child)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                yield from self._check_scope(module, child, None)
            elif not isinstance(child, ast.Lambda):
                yield from self._descend(module, child)
