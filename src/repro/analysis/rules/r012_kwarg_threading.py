"""R012 — threaded-kwarg completeness across the call graph.

The anytime contract (DESIGN.md, ``repro.resilience.budget``) only
holds if ``budget=`` reaches every branch-and-bound subtree: a layer
that accepts a budget but calls a budget-aware callee without
forwarding it silently detaches that subtree from the deadline, and
the solver then claims a certified optimum it never had time to earn.
The same threading argument applies to ``trace=`` (a dropped tracer
makes a whole phase invisible to ``repro.obs``) and ``engine=`` (a
dropped engine pin silently falls back to the default kernel, which is
exactly the class of "benchmarks compare the wrong engine" bug the
registry was built to prevent).

The rule runs over the resolved call graph: for every edge where the
*caller* accepts one of the threaded kwargs and the *callee* accepts
it too, the call expression must forward it — explicitly by keyword,
via a ``**`` splat, or positionally (the ``mbc_star -> _pipeline``
hand-off passes thirteen arguments positionally and is still
complete).  :data:`THREADED_KWARGS` drives the kwarg list and its
caller-side aliases (``_pipeline`` names its tracer ``tracer``), so
extending the contract to a new kwarg is a one-line config change.

Unresolved calls never fire — the graph is under-approximate, so a
missing edge means "could not resolve", not "safe to drop".
"""

from __future__ import annotations

from typing import Iterator

from ..engine import ProgramRule
from ..findings import Finding
from ..program import Program, call_passes_kwarg

__all__ = ["KwargThreadingRule", "THREADED_KWARGS"]

#: Canonical kwarg -> accepted parameter spellings on either side of
#: an edge.  The canonical name comes first; aliases cover renames
#: that survive in the tree (``_pipeline(tracer=...)``).
THREADED_KWARGS: dict[str, tuple[str, ...]] = {
    "budget": ("budget",),
    "trace": ("trace", "tracer"),
    "engine": ("engine",),
}


class KwargThreadingRule(ProgramRule):
    rule_id = "R012"
    title = "budget/trace/engine kwargs thread through every layer"
    rationale = (
        "a layer that accepts budget= but calls a budget-aware callee "
        "without forwarding it detaches that subtree from the "
        "deadline — the solve then overruns its SLO or publishes a "
        "bound the budget never certified; dropped trace/engine pins "
        "fail the same way, just quieter")

    def check_program(self, program: Program) -> Iterator[Finding]:
        for edge in program.edges:
            if edge.kind == "table":
                continue
            caller = program.function(edge.caller)
            callee = program.function(edge.callee)
            call = program.call_node(edge)
            if caller is None or callee is None or call is None:
                continue
            for canonical, spellings in THREADED_KWARGS.items():
                caller_param = next(
                    (s for s in spellings if caller.accepts(s)), None)
                callee_param = next(
                    (s for s in spellings if callee.accepts(s)), None)
                if caller_param is None or callee_param is None:
                    continue
                if call_passes_kwarg(call, callee, callee_param,
                                     edge.bound):
                    continue
                yield Finding(
                    path=edge.path,
                    line=edge.lineno,
                    col=call.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        f"{caller.qualname}() accepts "
                        f"'{caller_param}' but calls "
                        f"{callee.qualname}() without forwarding "
                        f"'{callee_param}=' — thread it through or "
                        f"drop the parameter (THREADED_KWARGS: "
                        f"{canonical})"),
                )
