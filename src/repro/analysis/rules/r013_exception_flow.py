"""R013 — exception-flow discipline for the anytime contract.

``BudgetExceeded`` is a *control-flow* signal, not an error: it must
propagate upward until it reaches a frame that owns an incumbent and
can return the best-so-far answer with ``certified=False``.  Catching
it anywhere else swallows the deadline — the caller keeps running (or
worse, publishes a bound as certified) after the budget said stop.
:data:`BUDGET_CATCH_ALLOWED` enumerates the incumbent-owning
boundaries, exactly the frames DESIGN.md's anytime section names: the
resilience package itself, the pool dispatcher/fan-out, and the three
driver layers that translate the exception into a truncated-but-valid
result (``pf``, ``mbc_star``, ``dynamic.solver``).

The second prong polices broad handlers in the worker/dispatch paths:
an ``except Exception`` in any function reachable from a
``run_*_chunk`` worker entry point (or anywhere in
``repro.parallel``) must either re-raise or record the failure on the
result envelope (:data:`RECORDING_CALLS`) — a worker that silently
eats an exception truncates its chunk's subtree, and the merged
"optimum" is then wrong with no fault recorded anywhere.  This is the
silent-truncation failure mode the fault-injection harness
(``repro.resilience.faults``) exists to surface; the lint closes the
gap for paths the chaos tests do not reach.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ProgramRule
from ..findings import Finding
from ..program import Program, iter_scopes, scope_walk

__all__ = ["ExceptionFlowRule", "BUDGET_CATCH_ALLOWED",
           "RECORDING_CALLS"]

#: Modules (or package prefixes) allowed to catch ``BudgetExceeded``:
#: each owns an incumbent and converts the signal into an uncertified
#: best-so-far result instead of swallowing it.
BUDGET_CATCH_ALLOWED: frozenset[str] = frozenset({
    "repro.resilience",
    "repro.parallel.dispatch",
    "repro.parallel.engine",
    "repro.core.pf",
    "repro.core.mbc_star",
    "repro.dynamic.solver",
})

#: Method/function names that count as "recording the failure on the
#: envelope" inside a broad handler (besides re-raising).
RECORDING_CALLS: frozenset[str] = frozenset({
    "record_failure", "record_exception", "abort",
})

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _exception_names(node: ast.expr | None) -> Iterator[str]:
    """Leaf names of the exception types an ``except`` clause names."""
    if node is None:
        return
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            yield from _exception_names(elt)
    elif isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr


def _module_allowed(module: str) -> bool:
    return any(
        module == allowed or module.startswith(allowed + ".")
        for allowed in BUDGET_CATCH_ALLOWED)


def _handler_disposes(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or records on the envelope."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name)
                    else None)
            if name in RECORDING_CALLS:
                return True
    return False


class ExceptionFlowRule(ProgramRule):
    rule_id = "R013"
    title = "BudgetExceeded propagates to incumbent-owning frames only"
    rationale = (
        "a swallowed BudgetExceeded detaches the caller from the "
        "deadline and can publish a bound as certified that the "
        "budget cut short; a broad except in a worker path that "
        "neither re-raises nor records truncates a chunk's subtree "
        "with no fault on the envelope — the merged optimum is then "
        "silently wrong")

    def check_program(self, program: Program) -> Iterator[Finding]:
        worker_paths = program.reachable_from(
            fn.key for fn in program.worker_entry_points())
        for module in program.modules.values():
            mod = module.module or module.path
            for qualname, scope, _cls in iter_scopes(module):
                key = f"{mod}:{qualname}"
                in_worker_path = (
                    mod.startswith("repro.parallel")
                    or key in worker_paths)
                for node in scope_walk(scope):
                    if not isinstance(node, ast.ExceptHandler):
                        continue
                    yield from self._check_handler(
                        module.path, mod, node, in_worker_path)

    def _check_handler(
        self, path: str, mod: str, handler: ast.ExceptHandler,
        in_worker_path: bool,
    ) -> Iterator[Finding]:
        names = list(_exception_names(handler.type))
        if "BudgetExceeded" in names and not _module_allowed(mod):
            yield Finding(
                path=path, line=handler.lineno,
                col=handler.col_offset, rule_id=self.rule_id,
                message=(
                    f"{mod} catches BudgetExceeded but owns no "
                    f"incumbent — let it propagate to an allowed "
                    f"boundary ({', '.join(sorted(BUDGET_CATCH_ALLOWED))})"),
            )
        is_broad = handler.type is None or any(
            name in _BROAD_NAMES for name in names)
        if is_broad and in_worker_path and \
                not _handler_disposes(handler):
            yield Finding(
                path=path, line=handler.lineno,
                col=handler.col_offset, rule_id=self.rule_id,
                message=(
                    f"broad except in worker/dispatch path ({mod}) "
                    f"must re-raise or record the failure on the "
                    f"envelope ({', '.join(sorted(RECORDING_CALLS))}) "
                    f"— a silent catch truncates the chunk's subtree"),
            )
