"""R014 — everything crossing a pool envelope must be picklable.

The parallel engine uses the **spawn** start method (R003's ban on
fork-captured state depends on it), so every value handed to the pool
is pickled: the runner callable, each payload chunk, and the
``initializer``/``initargs`` pair that rebuilds the worker context.
A lambda, a closure over local state, or a locally defined class
pickles either not at all (``PicklingError`` at dispatch time, after
the reduction phases already ran) or — worse — only appears to work
under fork on a developer laptop and then dies in CI's spawn context.

The rule inspects the arguments that actually cross the boundary:

* ``ResilientDispatcher.run(runner, payloads, ...)`` — the receiver
  is matched by inferred class name (local construction or parameter
  annotation), so test doubles named ``ResilientDispatcher`` are
  policed identically.  ``on_recover=`` is *exempt*: it runs in the
  parent as part of the rebuild ladder and never crosses the
  envelope.
* raw ``Pool(..., initializer=, initargs=)`` construction and the
  ``imap``/``imap_unordered``/``map_async``/``apply_async`` family
  (which R009 already confines to ``repro.parallel.dispatch``).

Only *definite* violations fire: a literal ``lambda``, a name bound
to one, or a reference to a function/class defined inside the
enclosing scope.  Names that cannot be resolved (parameters threaded
from a caller, module attributes) are trusted — the caller's own call
sites are checked where they resolve, keeping the rule quiet on the
under-approximate parts of the graph.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ProgramRule
from ..findings import Finding
from ..program import (
    DISPATCH_CLASSES,
    Program,
    ScopeBindings,
    iter_scopes,
    scan_bindings,
    scope_walk,
)

__all__ = ["SpawnPayloadRule", "ENVELOPE_KEYWORDS"]

#: Keyword arguments whose values cross the pool envelope.
ENVELOPE_KEYWORDS = frozenset({
    "runner", "payloads", "initializer", "initargs", "func",
    "iterable", "args",
})

#: attr name -> positional indices of envelope-crossing arguments.
_SEAM_POSITIONS: dict[str, tuple[int, ...]] = {
    "run": (0, 1),
    "imap": (0, 1),
    "imap_unordered": (0, 1),
    "map_async": (0, 1),
    "apply_async": (0, 1),
    "Pool": (1, 2),
}

_POOL_FAMILY = frozenset({
    "imap", "imap_unordered", "map_async", "apply_async", "Pool"})


def _local_definitions(scope: ast.AST) -> frozenset[str]:
    """Names of functions/classes defined *inside* ``scope``."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if node is scope:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
    return frozenset(names)


def _lambda_names(scope: ast.AST) -> frozenset[str]:
    """Local names bound directly to a ``lambda``."""
    names: set[str] = set()
    for node in scope_walk(scope):
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


class SpawnPayloadRule(ProgramRule):
    rule_id = "R014"
    title = "pool envelopes carry only picklable runners and payloads"
    rationale = (
        "the spawn start method pickles everything crossing the pool "
        "boundary; a lambda or locally defined callable dispatches "
        "fine under fork on a laptop and raises PicklingError in "
        "CI's spawn context — after the expensive reduction phases "
        "already ran")

    def check_program(self, program: Program) -> Iterator[Finding]:
        for module in program.modules.values():
            mod = module.module or module.path
            for qualname, scope, _cls in iter_scopes(module):
                owner = program.function(f"{mod}:{qualname}")
                bindings = scan_bindings(program, mod, scope, owner)
                # Module-level defs pickle by qualified name; only
                # *function-local* definitions are spawn-hostile.
                locals_ = (
                    _local_definitions(scope)
                    if isinstance(scope, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                    else frozenset())
                lambdas = _lambda_names(scope)
                for node in scope_walk(scope):
                    if not isinstance(node, ast.Call):
                        continue
                    yield from self._check_call(
                        module.path, node, bindings, locals_,
                        lambdas)

    def _is_seam(self, call: ast.Call,
                 bindings: ScopeBindings) -> str | None:
        """The seam method name when ``call`` crosses an envelope."""
        func = call.func
        if isinstance(func, ast.Name):
            return "Pool" if func.id == "Pool" else None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr in _POOL_FAMILY:
            return attr
        if attr == "run":
            base = func.value
            if isinstance(base, ast.Name) and bindings.instances.get(
                    base.id) in DISPATCH_CLASSES:
                return attr
        return None

    def _check_call(
        self, path: str, call: ast.Call, bindings: ScopeBindings,
        local_defs: frozenset[str], lambda_names: frozenset[str],
    ) -> Iterator[Finding]:
        seam = self._is_seam(call, bindings)
        if seam is None:
            return
        positions = _SEAM_POSITIONS[seam]
        crossing: list[ast.expr] = [
            call.args[i] for i in positions if i < len(call.args)]
        crossing.extend(
            kw.value for kw in call.keywords
            if kw.arg in ENVELOPE_KEYWORDS)
        for expr in crossing:
            yield from self._check_expr(
                path, seam, expr, local_defs, lambda_names)

    def _check_expr(
        self, path: str, seam: str, expr: ast.expr,
        local_defs: frozenset[str], lambda_names: frozenset[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            reason = None
            if isinstance(node, ast.Lambda):
                reason = "a lambda"
            elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load):
                if node.id in lambda_names:
                    reason = f"'{node.id}' (bound to a lambda)"
                elif node.id in local_defs:
                    reason = (f"'{node.id}' (defined in the "
                              f"enclosing scope)")
            if reason is None:
                continue
            yield Finding(
                path=path, line=node.lineno, col=node.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"{reason} cannot cross the spawn pool envelope "
                    f"via {seam}() — hoist it to a module-level "
                    f"def so it pickles"),
            )
