"""Comparison baselines external to the paper's own algorithms."""

from .polarseeds import PolarizedCommunity, good_seed_pairs, polar_seeds
from .balanced_subgraph import BalancedSubgraph, \
    eigensign_balanced_subgraph

__all__ = [
    "polar_seeds",
    "good_seed_pairs",
    "PolarizedCommunity",
    "eigensign_balanced_subgraph",
    "BalancedSubgraph",
]
