"""Maximum balanced subgraph heuristic (related work [8], [33]).

The paper's Related Work contrasts balanced *cliques* with the maximum
balanced *subgraph* problem: the largest vertex-induced subgraph that
is structurally balanced (no completeness requirement).  The problem is
NP-hard; Ordozgoiti et al. [8] attack it with a spectral relaxation
("eigensign") followed by greedy repair.  This module implements that
recipe so the library can reproduce the comparison the Related Work
discusses — balanced subgraphs are larger but lose the guarantees a
clique gives (e.g. staying balanced when absent edges appear).

Algorithm:

1. power-iterate the signed adjacency matrix to get a dominant
   eigenvector ``x``; ``sign(x_v)`` proposes the camp of ``v`` and
   ``|x_v|`` its confidence;
2. keep vertices above a confidence sweep threshold;
3. greedily delete the vertex incident to the most frustrated edges
   until the induced subgraph is balanced (exact check via
   :func:`repro.signed.balance.harary_partition`).
"""

from __future__ import annotations

import math

from ..signed.balance import harary_partition
from ..signed.graph import SignedGraph

__all__ = ["eigensign_balanced_subgraph", "BalancedSubgraph"]


class BalancedSubgraph:
    """Result: a vertex set whose induced subgraph is balanced."""

    def __init__(self, left: set[int], right: set[int],
                 edges_kept: int) -> None:
        self.left = left
        self.right = right
        self.edges_kept = edges_kept

    @property
    def vertices(self) -> set[int]:
        return self.left | self.right

    @property
    def size(self) -> int:
        return len(self.left) + len(self.right)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BalancedSubgraph(|L|={len(self.left)}, "
                f"|R|={len(self.right)}, edges={self.edges_kept})")


def eigensign_balanced_subgraph(
    graph: SignedGraph,
    iterations: int = 60,
    keep_fraction: float = 0.8,
) -> BalancedSubgraph:
    """Eigensign + greedy repair heuristic for the maximum balanced
    subgraph.

    Parameters
    ----------
    graph:
        The signed graph.
    iterations:
        Power-iteration steps for the dominant eigenvector.
    keep_fraction:
        Fraction of vertices (by eigenvector confidence) fed to the
        greedy repair stage.

    Returns
    -------
    BalancedSubgraph
        A (heuristically large) balanced induced subgraph with its
        camp split.
    """
    n = graph.num_vertices
    if n == 0:
        return BalancedSubgraph(set(), set(), 0)

    # Stage 1: dominant eigenvector of the signed adjacency, shifted to
    # dominate negative eigenvalues.
    x = [1.0 if v % 2 == 0 else -1.0 for v in range(n)]
    shift = max((graph.degree(v) for v in graph.vertices()),
                default=0) + 1.0
    for _ in range(iterations):
        nxt = [shift * value for value in x]
        for v in graph.vertices():
            for u in graph.pos_neighbors(v):
                nxt[v] += x[u]
            for u in graph.neg_neighbors(v):
                nxt[v] -= x[u]
        norm = math.sqrt(sum(value * value for value in nxt))
        if norm == 0:
            break
        x = [value / norm for value in nxt]

    # Stage 2: keep the most confident vertices.
    ranked = sorted(graph.vertices(), key=lambda v: abs(x[v]),
                    reverse=True)
    kept = set(ranked[:max(int(n * keep_fraction), 1)])

    # Stage 3: greedy repair — delete the most frustrated vertex until
    # the induced subgraph is balanced w.r.t. *some* partition.
    camp = {v: (0 if x[v] >= 0 else 1) for v in kept}

    def frustrated_degree(v: int) -> int:
        count = 0
        for u in graph.pos_neighbors(v):
            if u in kept and camp[u] != camp[v]:
                count += 1
        for u in graph.neg_neighbors(v):
            if u in kept and camp[u] == camp[v]:
                count += 1
        return count

    while kept:
        worst = max(kept, key=frustrated_degree)
        if frustrated_degree(worst) == 0:
            break
        kept.discard(worst)

    # The eigenvector camps are now violation-free, but re-derive the
    # canonical witness (and final edge count) from the exact check.
    sub, mapping = graph.subgraph(kept)
    partition = harary_partition(sub)
    assert partition is not None, "greedy repair left frustration"
    left = {mapping[v] for v in partition[0]}
    right = {mapping[v] for v in partition[1]}
    return BalancedSubgraph(left, right, sub.num_edges)
