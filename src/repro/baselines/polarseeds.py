"""PolarSeeds-style local spectral polarized-community search.

Simulates the comparison baseline of Figure 5 — PolarSeeds by Xiao,
Ordozgoiti and Gionis [15] — whose reference implementation is not
available offline.  The approach implemented here follows the same
recipe the paper describes:

1. take a *seed pair* ``(u, v)`` joined by a negative edge where both
   endpoints have positive degree above a threshold ``t``;
2. extract a local subgraph around the seeds (bounded BFS ball);
3. compute the dominant eigenvector of the signed adjacency matrix by
   power iteration (shifted to dominate negative eigenvalues), seeded
   with ``+1`` / ``-1`` at the two seeds — for a polarized structure
   this eigenvector separates the two camps by sign;
4. sweep prefixes of vertices ordered by ``|x_v|``, split each prefix
   by ``sign(x_v)``, and keep the split maximizing Polarity.

This exercises the exact comparison of Figure 5: a spectral community
admits disagreeing and escaping edges, so the balanced clique found by
MBC* scores a higher Polarity (and always has ``HAM = 1``) while the
spectral community wins on SBR.
"""

from __future__ import annotations

import math
import random
from collections import deque

from ..metrics.polarity import polarity
from ..signed.graph import SignedGraph

__all__ = ["polar_seeds", "good_seed_pairs", "PolarizedCommunity"]


class PolarizedCommunity:
    """Result of a PolarSeeds run: two opposing vertex groups."""

    def __init__(self, group1: set[int], group2: set[int],
                 score: float) -> None:
        self.group1 = group1
        self.group2 = group2
        self.score = score

    @property
    def size(self) -> int:
        return len(self.group1) + len(self.group2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PolarizedCommunity(|C1|={len(self.group1)}, "
                f"|C2|={len(self.group2)}, polarity={self.score:.3f})")


def good_seed_pairs(
    graph: SignedGraph,
    t: int = 3,
    count: int = 100,
    seed: int | None = None,
) -> list[tuple[int, int]]:
    """Sample seed pairs the way the paper does for Figure 5.

    ``(u, v)`` qualifies when the edge is negative and both endpoints
    have positive degree greater than ``t``.  Returns up to ``count``
    distinct pairs (all qualifying pairs if fewer exist).
    """
    pairs = [
        (u, v)
        for u, v, sign in graph.edges()
        if sign == -1
        and graph.pos_degree(u) > t
        and graph.pos_degree(v) > t
    ]
    rng = random.Random(seed)
    if len(pairs) <= count:
        return pairs
    return rng.sample(pairs, count)


def polar_seeds(
    graph: SignedGraph,
    seed_u: int,
    seed_v: int,
    max_subgraph: int = 400,
    iterations: int = 60,
    epsilon: float = 1e-3,
) -> PolarizedCommunity:
    """Find a polarized community around a negative-edge seed pair.

    Parameters
    ----------
    graph:
        The signed graph.
    seed_u, seed_v:
        The seed pair (ideally joined by a negative edge).
    max_subgraph:
        BFS ball size cap for the local subgraph.
    iterations:
        Power-iteration steps.
    epsilon:
        Convergence threshold on the iterate change (the paper's
        default ``1e-3``).
    """
    members = _local_ball(graph, (seed_u, seed_v), max_subgraph)
    order = sorted(members)
    index = {v: i for i, v in enumerate(order)}
    x = [0.0] * len(order)
    x[index[seed_u]] = 1.0
    x[index[seed_v]] = -1.0

    # Shift by the max degree so the dominant eigenvalue of A + dI is
    # the largest (most positive) eigenvalue of A.
    shift = max((graph.degree(v) for v in order), default=0) + 1.0
    for _ in range(iterations):
        nxt = [shift * value for value in x]
        for v in order:
            i = index[v]
            for u in graph.pos_neighbors(v):
                j = index.get(u)
                if j is not None:
                    nxt[i] += x[j]
            for u in graph.neg_neighbors(v):
                j = index.get(u)
                if j is not None:
                    nxt[i] -= x[j]
        norm = math.sqrt(sum(value * value for value in nxt))
        if norm == 0:
            break
        nxt = [value / norm for value in nxt]
        delta = max(abs(a - b) for a, b in zip(nxt, x))
        x = nxt
        if delta < epsilon:
            break

    # Orient the eigenvector so the u-seed is on the positive side.
    if x[index[seed_u]] < 0:
        x = [-value for value in x]

    ranked = sorted(order, key=lambda v: abs(x[index[v]]), reverse=True)
    best = PolarizedCommunity({seed_u}, {seed_v}, polarity(
        graph, {seed_u}, {seed_v}))
    group1: set[int] = set()
    group2: set[int] = set()
    for v in ranked:
        if x[index[v]] >= 0:
            group1.add(v)
        else:
            group2.add(v)
        if not group1 or not group2:
            continue
        score = polarity(graph, group1, group2)
        if score > best.score:
            best = PolarizedCommunity(set(group1), set(group2), score)
    return best


def _local_ball(
    graph: SignedGraph,
    seeds: tuple[int, ...],
    max_size: int,
) -> set[int]:
    """BFS ball around the seeds, capped at ``max_size`` vertices."""
    members: set[int] = set(seeds)
    queue = deque(seeds)
    while queue and len(members) < max_size:
        v = queue.popleft()
        for u in sorted(graph.neighbors(v)):
            if u not in members:
                members.add(u)
                queue.append(u)
                if len(members) >= max_size:
                    break
    return members
