"""Command-line interface.

Installed as ``repro`` (also ``python -m repro``).  Subcommands:

* ``repro mbc GRAPH --tau 3`` — maximum balanced clique
  (alias ``mbc-star``);
* ``repro pf GRAPH`` — polarization factor (alias ``pf-star``);
* ``repro gmbc GRAPH`` — a maximum balanced clique for every tau
  (alias ``gmbc-star``);
* ``repro dynamic GRAPH --edits FILE`` — stream an edit script
  through the incremental solver, re-solving after every edit
  (see ``docs/DYNAMIC.md``);
* ``repro stats GRAPH`` — dataset statistics (Table I columns);
* ``repro generate NAME OUT`` — write a stand-in dataset to a file;
* ``repro serve --port 8080`` — the async HTTP solve service:
  JSON requests in, cached/coalesced solves out
  (see ``docs/SERVING.md``);
* ``repro lint [PATHS]`` — the repo-specific invariant linter
  (see ``docs/STATIC_ANALYSIS.md``);
* ``repro callgraph [PATHS]`` — the whole-program call graph the
  linter's program rules run on, exported as JSON or DOT.

``GRAPH`` is either a path to an edge-list file (``u v sign`` lines) or
``dataset:NAME`` to use a built-in stand-in (e.g. ``dataset:douban``).

The solver commands accept ``--trace PATH`` (write the solve's
:mod:`repro.obs` span tree as schema-versioned JSONL) and ``--profile``
(print the human-readable span tree) — see ``docs/OBSERVABILITY.md``.

They also accept ``--timeout SECONDS`` and ``--max-nodes N`` solve
budgets (see ``docs/ROBUSTNESS.md``): on exhaustion the best result
found so far is printed with its certified lower bound and the process
exits with :data:`EXIT_BUDGET_EXHAUSTED` (3) — distinct from both
success (0) and errors (1) so scripts can tell a truncated answer from
a wrong invocation.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .core.gmbc import distinct_cliques_profile, gmbc_naive, gmbc_star
from .core.mbc_baseline import mbc_baseline
from .core.mbc_star import mbc_star
from .core.pf import pf_binary_search, pf_enumeration, pf_star
from .core.result import SolveResult
from .core.stats import SearchStats
from .datasets.registry import dataset_names, load
from .dynamic import DynamicSolver, apply_edit, parse_edit_script
from .kernels import DEFAULT_ENGINE, ENGINES
from .obs import Tracer, get_tracer, install_tracer, render_tree, \
    write_jsonl
from .resilience import Budget
from .signed.graph import SignedGraph
from .signed.io import load_signed_graph, save_signed_graph

__all__ = ["main", "build_parser", "EXIT_BUDGET_EXHAUSTED"]

#: Exit status when a solve hit its ``--timeout``/``--max-nodes``
#: budget: the printed answer is a valid clique / certified lower
#: bound, but optimality was not proven.
EXIT_BUDGET_EXHAUSTED = 3


def _add_engine_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--engine", choices=list(ENGINES), default=DEFAULT_ENGINE,
        help="kernel backend from the engine registry: bitset int "
             "masks (default), numpy vectorised mask matrices, or the "
             "original adjacency sets")
    subparser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the ego-network sweep (default 1 = "
             "serial; needs a parallel-capable engine: bitset or "
             "numpy)")
    subparser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a repro.obs JSONL trace of the solve to PATH")
    subparser.add_argument(
        "--profile", action="store_true",
        help="print the span-tree profile after the solve")
    subparser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock solve budget; on expiry print the best "
             "result so far and exit 3")
    subparser.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        dest="max_nodes",
        help="branch-and-bound node budget; same anytime contract "
             "as --timeout")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maximum structural balanced cliques in signed "
                    "graphs (ICDE 2022 reproduction).")
    sub = parser.add_subparsers(dest="command", required=True)

    mbc = sub.add_parser("mbc", aliases=["mbc-star"],
                         help="maximum balanced clique")
    mbc.add_argument("graph", help="edge-list path or dataset:NAME")
    mbc.add_argument("--tau", type=int, default=3,
                     help="polarization constraint (default 3)")
    mbc.add_argument(
        "--algorithm", choices=["star", "baseline"], default="star",
        help="solver: MBC* (default) or the enumeration baseline")
    _add_engine_flag(mbc)

    pf = sub.add_parser("pf", aliases=["pf-star"],
                        help="polarization factor")
    pf.add_argument("graph", help="edge-list path or dataset:NAME")
    pf.add_argument(
        "--algorithm", choices=["star", "binary-search", "enumeration"],
        default="star", help="solver (default PF*)")
    _add_engine_flag(pf)

    gmbc = sub.add_parser(
        "gmbc", aliases=["gmbc-star"],
        help="maximum balanced clique for every tau")
    gmbc.add_argument("graph", help="edge-list path or dataset:NAME")
    gmbc.add_argument(
        "--algorithm", choices=["star", "naive"], default="star")
    _add_engine_flag(gmbc)

    dynamic = sub.add_parser(
        "dynamic",
        help="incremental solving over a stream of edge edits")
    dynamic.add_argument("graph", help="edge-list path or dataset:NAME")
    dynamic.add_argument(
        "--edits", required=True, metavar="FILE",
        help="edit script ('add u v sign' / 'remove u v' / "
             "'flip u v' lines); the solver re-solves after every "
             "edit")
    dynamic.add_argument("--tau", type=int, default=3,
                         help="polarization constraint (default 3)")
    dynamic.add_argument(
        "--beta", action="store_true",
        help="also report the polarization factor after each edit")
    _add_engine_flag(dynamic)

    stats = sub.add_parser("stats", help="dataset statistics (Table I)")
    stats.add_argument("graph", help="edge-list path or dataset:NAME")
    stats.add_argument("--tau", type=int, default=3)

    gen = sub.add_parser("generate", help="write a stand-in dataset")
    gen.add_argument("name", choices=dataset_names())
    gen.add_argument("output", help="output edge-list path")
    gen.add_argument("--scale", type=float, default=1.0)

    enum = sub.add_parser(
        "enum", help="enumerate maximal balanced cliques (MBCEnum)")
    enum.add_argument("graph", help="edge-list path or dataset:NAME")
    enum.add_argument("--tau", type=int, default=0)
    enum.add_argument("--limit", type=int, default=1000,
                      help="stop after this many cliques")

    balance = sub.add_parser(
        "balance",
        help="global structural balance check (Harary) + frustration")
    balance.add_argument("graph", help="edge-list path or dataset:NAME")

    lint = sub.add_parser(
        "lint", help="AST invariant linter for the solver stack")
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the versioned JSON report instead of text")
    lint.add_argument(
        "--rule", action="append", dest="rule_ids", metavar="RXXX",
        help="run only this rule (repeatable)")
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")

    callgraph = sub.add_parser(
        "callgraph",
        help="export the resolved whole-program call graph")
    callgraph.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)")
    callgraph.add_argument(
        "--format", choices=["json", "dot"], default="json",
        dest="fmt", help="export format (default: json)")

    serve = sub.add_parser(
        "serve",
        help="run the HTTP solve service (see docs/SERVING.md)")
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port (default 8080; 0 picks an ephemeral port)")
    serve.add_argument(
        "--engine", choices=list(ENGINES), default=DEFAULT_ENGINE,
        help="default kernel backend for requests that don't name one")
    serve.add_argument(
        "--pool", type=int, default=None, metavar="N",
        help="worker threads running solves (default 4)")
    serve.add_argument(
        "--cache-size", type=int, default=None, dest="cache_size",
        metavar="N",
        help="result-cache capacity in entries (default 1024)")

    return parser


def _build_budget(args: argparse.Namespace) -> Budget | None:
    """A :class:`~repro.resilience.Budget` when either budget flag was
    given (``Budget`` validates the values), else ``None`` so the
    solvers keep their zero-overhead hot path."""
    if args.timeout is None and args.max_nodes is None:
        return None
    return Budget(deadline=args.timeout, max_nodes=args.max_nodes)


def _budget_epilogue(budget: Budget | None) -> int:
    """Print the truncation notice and pick the exit status."""
    if budget is None or not budget.exhausted:
        return 0
    print(f"status: budget exhausted ({budget.reason}) — result is "
          f"the best found, optimality not proven")
    return EXIT_BUDGET_EXHAUSTED


def _load_graph(token: str) -> SignedGraph:
    if token.startswith("dataset:"):
        return load(token.split(":", 1)[1])
    return load_signed_graph(token)


def _install_cli_tracer(args: argparse.Namespace) -> Tracer | None:
    """A live ambient tracer when ``--trace``/``--profile`` ask for one.

    Installing (rather than only passing ``trace=``) also captures the
    kernel-layer spans, which read the ambient tracer.
    """
    if not args.trace and not args.profile:
        return None
    tracer = get_tracer(True)
    install_tracer(tracer)
    return tracer


def _report_trace(args: argparse.Namespace,
                  tracer: Tracer | None) -> None:
    """Uninstall the CLI tracer and emit its sinks."""
    if tracer is None:
        return
    install_tracer(None)
    if args.trace:
        lines = write_jsonl(tracer, args.trace)
        print(f"trace: {args.trace} ({lines} events)")
    if args.profile:
        print(render_tree(tracer))


def _cmd_mbc(args: argparse.Namespace) -> int:
    budget = _build_budget(args)
    if budget is not None and args.algorithm != "star":
        raise ValueError(
            "--timeout/--max-nodes require --algorithm star (the "
            "baseline enumerator has no anytime contract)")
    graph = _load_graph(args.graph)
    stats = SearchStats()
    tracer = _install_cli_tracer(args)
    started = time.perf_counter()
    try:
        if args.algorithm == "star":
            clique = mbc_star(graph, args.tau, stats=stats,
                              engine=args.engine, parallel=args.workers,
                              budget=budget)
            engine = args.engine
        else:
            clique = mbc_baseline(graph, args.tau, stats=stats)
            engine = "set"  # the baseline has no bitset path
    finally:
        elapsed = time.perf_counter() - started
        _report_trace(args, tracer)
    result = SolveResult.capture(clique, budget)
    if clique.is_empty:
        print(f"no balanced clique satisfies tau={args.tau}")
    else:
        print(clique.describe(graph))
        if not result.optimal:
            print(f"certified lower bound: {result.lower_bound}")
    print(f"time: {elapsed:.3f}s  nodes: {stats.nodes}  "
          f"instances: {stats.instances}  engine: {engine}")
    return _budget_epilogue(budget)


def _cmd_pf(args: argparse.Namespace) -> int:
    budget = _build_budget(args)
    graph = _load_graph(args.graph)
    tracer = _install_cli_tracer(args)
    started = time.perf_counter()
    try:
        if args.algorithm == "star":
            beta = pf_star(graph, engine=args.engine,
                           parallel=args.workers, budget=budget)
            engine = args.engine
        elif args.algorithm == "binary-search":
            beta = pf_binary_search(graph, engine=args.engine,
                                    parallel=args.workers,
                                    budget=budget)
            engine = args.engine
        else:
            beta = pf_enumeration(graph, budget=budget)
            engine = "set"  # enumeration has no bitset path
    finally:
        elapsed = time.perf_counter() - started
        _report_trace(args, tracer)
    # A truncated PF solve certifies beta as a *lower* bound (the last
    # proven tau*), so print the inequality rather than a wrong "=".
    relation = ">=" if budget is not None and budget.exhausted else "="
    print(f"polarization factor beta(G) {relation} {beta}")
    print(f"time: {elapsed:.3f}s  engine: {engine}")
    return _budget_epilogue(budget)


def _cmd_dynamic(args: argparse.Namespace) -> int:
    """Stream an edit script through the incremental solver.

    ``--timeout``/``--max-nodes`` are *per-solve* budgets: every
    re-solve after an edit gets a fresh one (the streaming contract
    is a latency bound per edit, not per session).  The exit status
    reports whether any solve was truncated.
    """
    graph = _load_graph(args.graph)
    with open(args.edits, encoding="utf-8") as handle:
        edits = parse_edit_script(handle.read())
    tracer = _install_cli_tracer(args)
    solver = DynamicSolver(graph, args.tau, engine=args.engine,
                           parallel=args.workers)
    any_truncated = False

    def solve_once(prefix: str) -> None:
        nonlocal any_truncated
        budget = _build_budget(args)
        result = solver.solve(budget)
        line = f"{prefix} -> {result.clique.describe(graph)}"
        if args.beta:
            line += f"  beta(G) = {solver.beta(_build_budget(args))}"
        print(line)
        if budget is not None and budget.exhausted:
            any_truncated = True

    started = time.perf_counter()
    try:
        solve_once("initial".ljust(24))
        for edit in edits:
            changed = apply_edit(solver, edit)
            suffix = "" if changed else " (no-op)"
            solve_once(f"{edit.as_line()}{suffix}".ljust(24))
    finally:
        elapsed = time.perf_counter() - started
        _report_trace(args, tracer)
    summary = (f"edits: {len(edits)}  time: {elapsed:.3f}s  "
               f"engine: {args.engine}")
    if tracer is not None:
        counters = tracer.counters_snapshot()
        summary += (
            f"  ego re-solves: "
            f"{counters.get('dynamic.egos_resolved', 0)}  "
            f"cache reuses: "
            f"{counters.get('dynamic.egos_reused', 0)}")
    print(summary)
    if any_truncated:
        print("status: at least one per-edit solve hit its budget — "
              "those results are certified lower bounds")
        return EXIT_BUDGET_EXHAUSTED
    return 0


def _cmd_gmbc(args: argparse.Namespace) -> int:
    budget = _build_budget(args)
    graph = _load_graph(args.graph)
    tracer = _install_cli_tracer(args)
    started = time.perf_counter()
    try:
        if args.algorithm == "star":
            results = gmbc_star(graph, engine=args.engine,
                                parallel=args.workers, budget=budget)
        else:
            results = gmbc_naive(graph, engine=args.engine,
                                 parallel=args.workers, budget=budget)
    finally:
        elapsed = time.perf_counter() - started
        _report_trace(args, tracer)
    for tau, clique in enumerate(results):
        print(f"tau={tau:3d}  {clique.describe(graph)}")
    profile = distinct_cliques_profile(results)
    print(f"distinct cliques: {profile['distinct']}  "
          f"beta: {profile['beta']}  time: {elapsed:.3f}s  "
          f"engine: {args.engine}")
    return _budget_epilogue(budget)


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    clique = mbc_star(graph, args.tau)
    beta = pf_star(graph)
    print(f"|V| = {graph.num_vertices}")
    print(f"|E| = {graph.num_edges}")
    print(f"|E-|/|E| = {graph.negative_ratio:.2f}")
    print(f"|C*| (tau={args.tau}) = {clique.size}")
    print(f"beta(G) = {beta}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load(args.name, scale=args.scale)
    save_signed_graph(graph, args.output)
    print(f"wrote {args.output}: n={graph.num_vertices} "
          f"m={graph.num_edges}")
    return 0


def _cmd_enum(args: argparse.Namespace) -> int:
    from .core.mbc_baseline import enumerate_maximal_balanced_cliques

    graph = _load_graph(args.graph)
    cliques = enumerate_maximal_balanced_cliques(
        graph, tau=args.tau, limit=args.limit)
    cliques.sort(key=lambda c: c.size, reverse=True)
    for clique in cliques:
        print(clique.describe(graph))
    capped = " (limit reached)" if len(cliques) >= args.limit else ""
    print(f"{len(cliques)} maximal balanced cliques with "
          f"tau={args.tau}{capped}")
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    from .signed.balance import frustration_partition_local_search, \
        harary_partition

    graph = _load_graph(args.graph)
    partition = harary_partition(graph)
    if partition is not None:
        left, right = partition
        print("structurally balanced: yes")
        print(f"camps: {len(left)} / {len(right)} vertices")
    else:
        print("structurally balanced: no")
        _left, _right, frustration = \
            frustration_partition_local_search(graph)
        print(f"local-search frustration upper bound: {frustration} "
              f"edges (of {graph.num_edges})")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import run_lint
    from .analysis.rules import ALL_RULES

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    try:
        return run_lint(args.paths, rule_ids=args.rule_ids,
                        as_json=args.as_json)
    except (OSError, KeyError) as exc:
        # Usage errors exit 2 (the lint CI contract), distinct from
        # "findings present" (1) — don't fall through to main()'s
        # generic handler, which exits 1.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_callgraph(args: argparse.Namespace) -> int:
    from .analysis.cli import run_callgraph

    try:
        return run_callgraph(args.paths, fmt=args.fmt)
    except (OSError, KeyError) as exc:
        # Same exit-code contract as lint: usage errors exit 2.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import (
        DEFAULT_CACHE_CAPACITY,
        DEFAULT_POOL_SIZE,
        ServeApp,
        SolverService,
    )

    service = SolverService(
        default_engine=args.engine,
        cache_capacity=(DEFAULT_CACHE_CAPACITY
                        if args.cache_size is None
                        else args.cache_size))
    app = ServeApp(
        service, host=args.host, port=args.port,
        pool_size=(DEFAULT_POOL_SIZE if args.pool is None
                   else args.pool))

    async def _serve() -> None:
        await app.start()
        print(f"repro serve listening on "
              f"http://{app.host}:{app.port} "
              f"(engine={args.engine}, "
              f"cache={service.cache.capacity})")
        await app.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


_COMMANDS = {
    "mbc": _cmd_mbc,
    "mbc-star": _cmd_mbc,
    "pf": _cmd_pf,
    "pf-star": _cmd_pf,
    "gmbc": _cmd_gmbc,
    "gmbc-star": _cmd_gmbc,
    "dynamic": _cmd_dynamic,
    "stats": _cmd_stats,
    "generate": _cmd_generate,
    "enum": _cmd_enum,
    "balance": _cmd_balance,
    "lint": _cmd_lint,
    "callgraph": _cmd_callgraph,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
