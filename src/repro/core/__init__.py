"""Core algorithms of the paper: MBC, MBC-Adv, MBC*, PF-E/BS/*, gMBC."""

from .balance import is_balanced_clique, is_clique, split_sides
from .result import EMPTY_RESULT, BalancedClique
from .stats import SearchStats
from .reductions import edge_reduction, edge_reduction_fast, \
    polar_core_numbers, polar_core_vertices, polarization_order, \
    polarization_upper_bound, vertex_reduction
from .heuristic import mbc_heuristic
from .mbc_baseline import enumerate_maximal_balanced_cliques, mbc_baseline
from .mbc_adv import mbc_adv
from .mbc_star import mbc_star
from .pf import pf_binary_search, pf_enumeration, pf_star
from .gmbc import distinct_cliques_profile, gmbc_naive, gmbc_star
from .related import is_alpha_k_clique, maximum_alpha_k_clique, \
    maximum_trusted_clique
from .bruteforce import brute_force_maximum_balanced_clique, \
    brute_force_polarization_factor, enumerate_balanced_cliques, \
    enumerate_cliques

__all__ = [
    "BalancedClique",
    "EMPTY_RESULT",
    "SearchStats",
    "is_balanced_clique",
    "is_clique",
    "split_sides",
    "vertex_reduction",
    "edge_reduction",
    "edge_reduction_fast",
    "polar_core_numbers",
    "polar_core_vertices",
    "polarization_order",
    "polarization_upper_bound",
    "mbc_heuristic",
    "mbc_baseline",
    "enumerate_maximal_balanced_cliques",
    "mbc_adv",
    "mbc_star",
    "pf_enumeration",
    "pf_binary_search",
    "pf_star",
    "gmbc_naive",
    "gmbc_star",
    "distinct_cliques_profile",
    "brute_force_maximum_balanced_clique",
    "brute_force_polarization_factor",
    "enumerate_balanced_cliques",
    "enumerate_cliques",
    "maximum_trusted_clique",
    "maximum_alpha_k_clique",
    "is_alpha_k_clique",
]
