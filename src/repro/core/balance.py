"""Structural balance: side-splitting and balanced-clique validation.

Definitions 1 and 2 of the paper.  A vertex set ``C`` of a signed graph
is a *balanced clique* when (1) every pair is joined by an edge and
(2) ``C`` splits into sides ``C_L``/``C_R`` with all within-side edges
positive and all cross-side edges negative.  The split is unique up to
swapping the sides (and one side may be empty).

:func:`split_sides` recovers the split — it two-colours the *negative*
subgraph of ``G[C]``; a balanced clique's negative edges form a complete
bipartite graph, so a BFS two-colouring plus a full verification pass
decides balance.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..signed.graph import SignedGraph

__all__ = ["split_sides", "is_balanced_clique", "is_clique"]


def is_clique(graph: SignedGraph, vertices: Iterable[int]) -> bool:
    """Whether the vertices are pairwise joined by (signed) edges."""
    members = list(vertices)
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            if not graph.has_edge(u, v):
                return False
    return True


def split_sides(
    graph: SignedGraph, vertices: Iterable[int]
) -> tuple[set[int], set[int]] | None:
    """Split a vertex set into balanced sides, or ``None``.

    Returns ``(C_L, C_R)`` such that within-side pairs are positive
    edges and cross-side pairs are negative edges, or ``None`` if the
    set is not a balanced clique.  When both sides are non-empty the
    side containing the smallest vertex id is returned first, making
    the output deterministic.
    """
    members = sorted(set(vertices))
    if not members:
        return set(), set()
    member_set = set(members)
    # Two-colour via negative edges: endpoints of a negative edge must
    # be on opposite sides; positive edges demand the same side.
    side: dict[int, int] = {}
    for start in members:
        if start in side:
            continue
        side[start] = 0
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neg_neighbors(v) & member_set:
                expected = 1 - side[v]
                if u not in side:
                    side[u] = expected
                    queue.append(u)
                elif side[u] != expected:
                    return None
            for u in graph.pos_neighbors(v) & member_set:
                if u not in side:
                    side[u] = side[v]
                    queue.append(u)
                elif side[u] != side[v]:
                    return None
    # Full verification: clique-ness plus sign/side agreement.
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            sign = graph.sign(u, v)
            if sign is None:
                return None
            same_side = side[u] == side[v]
            if same_side and sign != 1:
                return None
            if not same_side and sign != -1:
                return None
    left = {v for v in members if side[v] == side[members[0]]}
    right = member_set - left
    return left, right


def is_balanced_clique(
    graph: SignedGraph,
    vertices: Iterable[int],
    tau: int = 0,
) -> bool:
    """Whether ``vertices`` is a balanced clique whose sides both have
    at least ``tau`` members (the polarization constraint)."""
    sides = split_sides(graph, vertices)
    if sides is None:
        return False
    left, right = sides
    return min(len(left), len(right)) >= tau
