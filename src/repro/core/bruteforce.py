"""Exhaustive reference oracles (test ground truth).

Deliberately simple and independent of the optimized solvers: cliques
are enumerated by plain recursion over the unsigned view, and balance
is decided by :func:`repro.core.balance.split_sides` on each candidate.
Exponential — use on small graphs only (property tests keep
``n <= ~14``).
"""

from __future__ import annotations

from typing import Iterator

from ..signed.graph import SignedGraph
from .balance import split_sides
from .result import EMPTY_RESULT, BalancedClique

__all__ = [
    "enumerate_cliques",
    "enumerate_balanced_cliques",
    "brute_force_maximum_balanced_clique",
    "brute_force_polarization_factor",
]


def enumerate_cliques(graph: SignedGraph) -> Iterator[frozenset[int]]:
    """Yield every non-empty clique of the unsigned view of ``graph``."""
    adjacency = {
        v: graph.pos_neighbors(v) | graph.neg_neighbors(v)
        for v in graph.vertices()
    }

    def extend(clique: list[int], candidates: list[int]) \
            -> Iterator[frozenset[int]]:
        for index, v in enumerate(candidates):
            new_clique = clique + [v]
            yield frozenset(new_clique)
            narrowed = [u for u in candidates[index + 1:]
                        if u in adjacency[v]]
            yield from extend(new_clique, narrowed)

    yield from extend([], list(graph.vertices()))


def enumerate_balanced_cliques(
    graph: SignedGraph, tau: int = 0
) -> Iterator[BalancedClique]:
    """Yield every balanced clique whose sides both have ``>= tau``
    vertices (not only maximal ones)."""
    for clique in enumerate_cliques(graph):
        sides = split_sides(graph, clique)
        if sides is None:
            continue
        left, right = sides
        if min(len(left), len(right)) >= tau:
            yield BalancedClique.from_sides(left, right)


def brute_force_maximum_balanced_clique(
    graph: SignedGraph, tau: int
) -> BalancedClique:
    """Ground-truth maximum balanced clique satisfying ``tau``."""
    best = EMPTY_RESULT
    for clique in enumerate_balanced_cliques(graph, tau):
        if clique.size > best.size:
            best = clique
    return best


def brute_force_polarization_factor(graph: SignedGraph) -> int:
    """Ground-truth ``beta(G)``."""
    best = 0
    for clique in enumerate_balanced_cliques(graph, 0):
        if clique.polarization > best:
            best = clique.polarization
    return best
