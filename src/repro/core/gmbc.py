"""Generalized maximum balanced clique (Section V).

Reports a maximum balanced clique for *every* ``0 <= tau <= beta(G)``,
removing the need for users to pick a threshold.

* :func:`gmbc_naive` (``gMBC``) — invoke MBC* independently for
  ``tau = 0, 1, 2, ...`` until the result is empty.
* :func:`gmbc_star` (``gMBC*``, Algorithm 6) — first compute
  ``beta(G)`` with PF*, then sweep ``tau`` *downwards*, seeding each
  MBC* invocation with the optimum for ``tau + 1`` (Lemma 6: maxima
  are monotonically non-increasing in ``tau``), which shares work
  because ``|C^tau| = |C^{tau+1}|`` for most ``tau`` in practice
  (Table V).  The per-``tau`` core reductions of Algorithm 6 happen
  inside MBC*, whose size bar already folds in the seed size and the
  ``2 tau`` feasibility bound.
"""

from __future__ import annotations

from ..obs import Tracer, current_tracer
from ..resilience.budget import Budget
from ..signed.graph import SignedGraph
from .mbc_star import mbc_star
from .pf import pf_star
from .result import BalancedClique
from .stats import SearchStats

__all__ = ["gmbc_naive", "gmbc_star", "distinct_cliques_profile"]


def gmbc_naive(
    graph: SignedGraph,
    stats: SearchStats | None = None,
    engine: str = "bitset",
    parallel: int = 0,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
) -> list[BalancedClique]:
    """gMBC: maxima for all ``tau``, each computed from scratch.

    Returns ``results`` with ``results[tau]`` the maximum balanced
    clique for threshold ``tau``; ``len(results) == beta(G) + 1``.
    ``parallel`` forwards to every MBC* invocation.  A shared
    ``budget`` truncates the upward sweep: the returned prefix covers
    ``tau = 0 .. k`` for some ``k <= beta(G)``, each entry still a
    real balanced clique for its tau (though possibly sub-maximum for
    the last one) — check ``budget.status`` for which case applies.
    """
    tracer = trace if trace is not None else current_tracer()
    results: list[BalancedClique] = []
    with tracer.span("gmbc", n=graph.num_vertices,
                     engine=engine) as root:
        tau = 0
        while True:
            if budget is not None and budget.exhausted:
                break
            with tracer.span("tau", tau=tau):
                clique = mbc_star(
                    graph, tau, stats=stats, engine=engine,
                    parallel=parallel, trace=tracer, budget=budget)
            if clique.is_empty or not clique.satisfies(tau):
                break
            results.append(clique)
            tau += 1
        root.set(beta=len(results) - 1)
        if tracer.enabled and budget is not None:
            root.set(status=budget.status.value)
    return results


def gmbc_star(
    graph: SignedGraph,
    stats: SearchStats | None = None,
    engine: str = "bitset",
    parallel: int = 0,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
) -> list[BalancedClique]:
    """gMBC* (Algorithm 6): shared-computation downward sweep.

    Same contract as :func:`gmbc_naive`; ``parallel`` forwards to the
    PF* bootstrap and to every per-``tau`` MBC* invocation.

    A shared ``budget`` keeps the anytime shape of the answer: the PF*
    bootstrap's ``beta`` becomes a certified lower bound, and once the
    budget runs out mid-sweep the remaining (smaller) taus are filled
    with the best clique already in hand — valid for them by Lemma 6
    monotonicity, though possibly sub-maximum.  ``results[tau]`` stays
    a real balanced clique satisfying ``tau`` in every case.
    """
    if graph.num_vertices == 0:
        return []
    tracer = trace if trace is not None else current_tracer()
    results: list[BalancedClique] = []
    with tracer.span("gmbc_star", n=graph.num_vertices,
                     engine=engine) as root:
        outcome = pf_star(
            graph, stats=stats, engine=engine, parallel=parallel,
            trace=tracer, return_witness=True, budget=budget)
        assert isinstance(outcome, tuple)
        beta, pf_witness = outcome
        root.set(beta=beta)
        previous: BalancedClique | None = None
        for tau in range(beta, -1, -1):
            if budget is not None and budget.exhausted:
                # Anytime fill-down: the clique proven for some larger
                # tau also satisfies this one (Lemma 6); the PF*
                # witness covers the case where no MBC* call finished.
                filler = previous if previous is not None else pf_witness
                results.append(filler)
                continue
            with tracer.span("tau", tau=tau):
                clique = mbc_star(
                    graph, tau, initial=previous, stats=stats,
                    engine=engine, parallel=parallel, trace=tracer,
                    budget=budget)
            if clique.is_empty:
                if budget is not None and budget.exhausted:
                    results.append(
                        previous if previous is not None else pf_witness)
                    continue
                # Cannot happen for tau <= beta(G) by definition; guard
                # for robustness against a caller-mangled graph.
                raise RuntimeError(
                    f"no balanced clique found for tau={tau} "
                    f"<= beta={beta}")
            results.append(clique)
            previous = clique
        if tracer.enabled and budget is not None:
            root.set(status=budget.status.value)
    results.reverse()
    return results


def distinct_cliques_profile(
    results: list[BalancedClique],
) -> dict[str, object]:
    """Summaries for Table V: distinct clique count and size range.

    Parameters
    ----------
    results:
        Output of :func:`gmbc_naive` / :func:`gmbc_star` (indexed by
        ``tau``).

    Returns
    -------
    dict
        ``distinct`` — ``|{C^0, ..., C^beta}|``; ``beta`` —
        ``len(results) - 1``; ``largest`` / ``most_polarized`` — the
        ``(size, |C_L|, |C_R|)`` triples for ``tau = 0`` and
        ``tau = beta`` that Table V prints as ``size<l|r>``.
    """
    if not results:
        return {"distinct": 0, "beta": -1,
                "largest": None, "most_polarized": None}
    keys = {(clique.left, clique.right) for clique in results}

    def triple(clique: BalancedClique) -> tuple[int, int, int]:
        sides = sorted((len(clique.left), len(clique.right)))
        return clique.size, sides[0], sides[1]

    return {
        "distinct": len(keys),
        "beta": len(results) - 1,
        "largest": triple(results[0]),
        "most_polarized": triple(results[-1]),
    }
