"""MBC-Heu — the greedy heuristic of Algorithm 3.

Starting from an anchor vertex ``u`` (the implementation note in the
paper picks the vertex maximizing ``min(d+(u), d-(u))``), build the
dichromatic network ``g_u`` and greedily grow a clique: repeatedly take
the maximum-degree vertex of the current candidate subgraph, preferring
the side that is currently smaller so the result stays balanced, and
restrict the candidates to the new vertex's neighbourhood.

Runs in ``O(m)``; the result (when it meets the polarization constraint
``tau``) seeds MBC* with a lower bound — the ``Heu`` column of Table IV.
"""

from __future__ import annotations

from ..dichromatic.build import build_dichromatic_network
from ..signed.graph import SignedGraph
from .result import EMPTY_RESULT, BalancedClique

__all__ = ["mbc_heuristic"]


def mbc_heuristic(
    graph: SignedGraph,
    tau: int,
    anchor: int | None = None,
    tries: int = 8,
) -> BalancedClique:
    """Greedy balanced clique satisfying ``tau``, or the empty result.

    Parameters
    ----------
    graph:
        The signed graph.
    tau:
        Polarization constraint both sides must meet.
    anchor:
        Optional start vertex; by default the vertices with the largest
        ``min(d+, d-)`` (most capable of anchoring a polarized clique)
        are tried.
    tries:
        How many top-ranked anchors to attempt when ``anchor`` is not
        given (the paper's implementation note uses the single best
        anchor; trying a handful costs ``O(tries * m)`` and makes the
        initial bound far more robust).
    """
    if graph.num_vertices == 0:
        return EMPTY_RESULT
    if anchor is not None:
        return _grow_from(graph, anchor, tau)
    ranked = sorted(
        graph.vertices(),
        key=lambda v: min(graph.pos_degree(v), graph.neg_degree(v)),
        reverse=True)
    best = EMPTY_RESULT
    for candidate in ranked[:max(tries, 1)]:
        clique = _grow_from(graph, candidate, tau)
        if clique.size > best.size:
            best = clique
    return best


def _grow_from(
    graph: SignedGraph, anchor: int, tau: int
) -> BalancedClique:
    """One greedy growth pass from ``anchor`` (Algorithm 3 proper)."""
    network = build_dichromatic_network(graph, anchor)
    active = set(network.vertices())
    left: set[int] = {anchor}
    right: set[int] = set()

    while active:
        left_pool = {v for v in active if network.is_left[v]}
        right_pool = active - left_pool
        take_right = not left_pool or (right_pool and
                                       len(left) >= len(right))
        pool = right_pool if take_right else left_pool
        v = max(pool, key=lambda x: len(network.neighbors(x) & active))
        if network.is_left[v]:
            left.add(network.origin[v])
        else:
            right.add(network.origin[v])
        active &= network.neighbors(v)

    clique = BalancedClique.from_sides(left, right)
    if clique.satisfies(tau):
        return clique
    return EMPTY_RESULT
