"""MBC-Heu — the greedy heuristic of Algorithm 3.

Starting from an anchor vertex ``u`` (the implementation note in the
paper picks the vertex maximizing ``min(d+(u), d-(u))``), build the
dichromatic network ``g_u`` and greedily grow a clique: repeatedly take
the maximum-degree vertex of the current candidate subgraph, preferring
the side that is currently smaller so the result stays balanced, and
restrict the candidates to the new vertex's neighbourhood.

Runs in ``O(m)``; the result (when it meets the polarization constraint
``tau``) seeds MBC* with a lower bound — the ``Heu`` column of Table IV.
"""

from __future__ import annotations

from ..dichromatic.build import build_dichromatic_network, \
    build_dichromatic_network_bits, build_dichromatic_network_matrix
from ..kernels import npmask, validate_engine
from ..signed.graph import SignedGraph
from .result import EMPTY_RESULT, BalancedClique

__all__ = ["mbc_heuristic"]


def mbc_heuristic(
    graph: SignedGraph,
    tau: int,
    anchor: int | None = None,
    tries: int = 8,
    engine: str = "bitset",
) -> BalancedClique:
    """Greedy balanced clique satisfying ``tau``, or the empty result.

    Parameters
    ----------
    graph:
        The signed graph.
    tau:
        Polarization constraint both sides must meet.
    anchor:
        Optional start vertex; by default the vertices with the largest
        ``min(d+, d-)`` (most capable of anchoring a polarized clique)
        are tried.
    tries:
        How many top-ranked anchors to attempt when ``anchor`` is not
        given (the paper's implementation note uses the single best
        anchor; trying a handful costs ``O(tries * m)`` and makes the
        initial bound far more robust).
    engine:
        ``"bitset"`` (default) grows the clique over mask adjacency,
        ``"numpy"`` over the uint64 mask-matrix kernels (same lowest-id
        tie-break as bitset); ``"set"`` is the original implementation.
        Tie-breaking while picking the max-degree vertex may differ
        between engines, so the greedy results can legitimately
        diverge — all are valid lower bounds for the exact search they
        seed.
    """
    validate_engine(engine)
    if engine == "bitset":
        grow = _grow_from_bits
    elif engine == "numpy":
        grow = _grow_from_np
    else:
        grow = _grow_from
    if graph.num_vertices == 0:
        return EMPTY_RESULT
    if anchor is not None:
        return grow(graph, anchor, tau)
    ranked = sorted(
        graph.vertices(),
        key=lambda v: min(graph.pos_degree(v), graph.neg_degree(v)),
        reverse=True)
    best = EMPTY_RESULT
    for candidate in ranked[:max(tries, 1)]:
        clique = grow(graph, candidate, tau)
        if clique.size > best.size:
            best = clique
    return best


def _grow_from_bits(
    graph: SignedGraph, anchor: int, tau: int
) -> BalancedClique:
    """Bitset fast path of :func:`_grow_from`."""
    network = build_dichromatic_network_bits(graph, anchor)
    adj = network.adjacency_bits()
    left_bits = network.left_bits()
    active = network.all_bits()
    origin = network.origin
    left: set[int] = {anchor}
    right: set[int] = set()

    while active:
        left_pool = active & left_bits
        right_pool = active & ~left_bits
        take_right = not left_pool or (right_pool and
                                       len(left) >= len(right))
        pool = right_pool if take_right else left_pool
        best_v = -1
        best_degree = -1
        rest = pool
        while rest:
            low = rest & -rest
            rest ^= low
            v = low.bit_length() - 1
            degree = (adj[v] & active).bit_count()
            if degree > best_degree:
                best_degree = degree
                best_v = v
        v = best_v
        if left_bits & (1 << v):
            left.add(origin[v])
        else:
            right.add(origin[v])
        active &= adj[v]

    clique = BalancedClique.from_sides(left, right)
    if clique.satisfies(tau):
        return clique
    return EMPTY_RESULT


def _grow_from_np(
    graph: SignedGraph, anchor: int, tau: int
) -> BalancedClique:
    """Numpy fast path of :func:`_grow_from`.

    The per-step max-degree scan is one vectorised degree pass plus a
    masked argmax (first occurrence = lowest id, matching the bitset
    engine's tie-break).
    """
    network = build_dichromatic_network_matrix(graph, anchor)
    mat = network.adjacency_matrix()
    left_row = network.left_row()
    n = network.num_vertices
    active = network.all_row()
    origin = network.origin
    left: set[int] = {anchor}
    right: set[int] = set()

    while True:
        left_alive = npmask.row_bool(active & left_row, n)
        right_alive = npmask.row_bool(active & ~left_row, n)
        has_left = bool(left_alive.any())
        has_right = bool(right_alive.any())
        if not has_left and not has_right:
            break
        take_right = not has_left or (has_right and
                                      len(left) >= len(right))
        alive = right_alive if take_right else left_alive
        degree = npmask.degrees_in_active(mat, active)
        v = npmask.argmax_active(degree, alive)
        if npmask.test_bit(left_row, v):
            left.add(origin[v])
        else:
            right.add(origin[v])
        active = active & mat[v]

    clique = BalancedClique.from_sides(left, right)
    if clique.satisfies(tau):
        return clique
    return EMPTY_RESULT


def _grow_from(
    graph: SignedGraph, anchor: int, tau: int
) -> BalancedClique:
    """One greedy growth pass from ``anchor`` (Algorithm 3 proper)."""
    network = build_dichromatic_network(graph, anchor)
    active = set(network.vertices())
    left: set[int] = {anchor}
    right: set[int] = set()

    while active:
        left_pool = {v for v in active if network.is_left[v]}
        right_pool = active - left_pool
        take_right = not left_pool or (right_pool and
                                       len(left) >= len(right))
        pool = right_pool if take_right else left_pool
        v = max(pool, key=lambda x: len(network.neighbors(x) & active))
        if network.is_left[v]:
            left.add(network.origin[v])
        else:
            right.add(network.origin[v])
        active &= network.neighbors(v)

    clique = BalancedClique.from_sides(left, right)
    if clique.satisfies(tau):
        return clique
    return EMPTY_RESULT
