"""MBC-Adv — the naive-strategy baseline of Figure 8.

Applies the *unsigned* pruning toolbox (degree-based candidate
reduction and greedy-colouring upper bounds, ignoring edge signs and
the structural-balance constraint) directly inside the two-sided
enumeration of MBC, without the paper's dichromatic transformation.
The paper uses this variant to show that the transformation itself —
not merely borrowing unsigned pruning — is what delivers the speedup:
signs are abundant, so sign-blind bounds are loose (Figure 3's
6-vertex example colours with 6 colours although the balanced clique
has only 3 vertices).
"""

from __future__ import annotations

from ..signed.graph import SignedGraph
from ..unsigned.coloring import coloring_upper_bound
from ..unsigned.cores import k_core_subset
from ..unsigned.graph import UnsignedGraph
from .heuristic import mbc_heuristic
from .reductions import vertex_reduction
from .result import EMPTY_RESULT, BalancedClique
from .stats import SearchStats

__all__ = ["mbc_adv"]


def mbc_adv(
    graph: SignedGraph,
    tau: int,
    stats: SearchStats | None = None,
    node_limit: int | None = None,
) -> BalancedClique:
    """Maximum balanced clique via sign-blind pruning (``MBC-Adv``).

    Same contract as :func:`repro.core.mbc_star.mbc_star`; exists to
    reproduce the Figure 8 comparison.
    """
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    alive = vertex_reduction(graph, tau)
    working, mapping = graph.subgraph(alive)

    best = mbc_heuristic(working, tau)
    if stats is not None:
        stats.heuristic_size = best.size

    unsigned = UnsignedGraph.from_signed(working)
    required = max(best.size + 1, 2 * tau)
    core_alive = k_core_subset(unsigned, required - 1, unsigned.vertices())

    search = _AdvancedSearch(working, unsigned, tau, best, stats,
                             node_limit)
    search.run(core_alive)
    best = search.best
    if best.is_empty:
        return EMPTY_RESULT
    return BalancedClique.from_sides(
        {mapping[v] for v in best.left},
        {mapping[v] for v in best.right})


class _AdvancedSearch:
    """Two-sided BK with unsigned degree + colouring pruning."""

    def __init__(
        self,
        graph: SignedGraph,
        unsigned: UnsignedGraph,
        tau: int,
        initial: BalancedClique,
        stats: SearchStats | None,
        node_limit: int | None,
    ) -> None:
        self.graph = graph
        self.unsigned = unsigned
        self.tau = tau
        self.best = initial
        self.stats = stats
        self.node_limit = node_limit
        self.nodes = 0

    def run(self, vertices: set[int]) -> None:
        self._enum(set(), set(), set(vertices), set(vertices))

    def _required(self) -> int:
        """Minimum acceptable total clique size."""
        return max(self.best.size + 1, 2 * self.tau)

    def _enum(
        self,
        c_left: set[int],
        c_right: set[int],
        p_left: set[int],
        p_right: set[int],
    ) -> None:
        self.nodes += 1
        if self.stats is not None:
            self.stats.nodes += 1
        if self.node_limit is not None and self.nodes > self.node_limit:
            raise RuntimeError(
                f"MBC-Adv exceeded node limit {self.node_limit}")
        tau = self.tau
        size = len(c_left) + len(c_right)
        if (len(c_left) >= tau and len(c_right) >= tau
                and size >= self._required()):
            self.best = BalancedClique.from_sides(c_left, c_right)

        # Degree-based pruning, signs ignored: survivors must keep
        # enough unsigned neighbours among the candidates.
        candidates = p_left | p_right
        need = self._required() - size - 1
        if need > 0:
            survivors = k_core_subset(self.unsigned, need, candidates)
            if len(survivors) < len(candidates):
                p_left = p_left & survivors
                p_right = p_right & survivors
                candidates = survivors

        while p_left or p_right:
            if len(c_left) + len(p_left) < tau:
                return
            if len(c_right) + len(p_right) < tau:
                return
            remaining = self._required() - size
            if len(p_left | p_right) < remaining:
                return
            # Colouring-based pruning, signs ignored.
            if coloring_upper_bound(
                    self.unsigned, p_left | p_right) < remaining:
                return

            v, to_left = self._pick(c_left, c_right, p_left, p_right)
            graph = self.graph
            if to_left:
                self._enum(
                    c_left | {v}, c_right,
                    graph.pos_neighbors(v) & p_left,
                    graph.neg_neighbors(v) & p_right)
            else:
                self._enum(
                    c_left, c_right | {v},
                    graph.neg_neighbors(v) & p_left,
                    graph.pos_neighbors(v) & p_right)
            p_left.discard(v)
            p_right.discard(v)

    def _pick(
        self,
        c_left: set[int],
        c_right: set[int],
        p_left: set[int],
        p_right: set[int],
    ) -> tuple[int, bool]:
        if not c_left and not c_right:
            return min(p_left), True
        if p_left and (not p_right or len(c_left) <= len(c_right)):
            return min(p_left), True
        return min(p_right), False
