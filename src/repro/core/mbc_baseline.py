"""Enumeration-based baselines: MBC (Algorithm 1) and MBCEnum [13].

``MBC`` adapts the maximal balanced clique enumerator of Chen et
al. [13] to report the maximum: it grows the two sides ``C_L``/``C_R``
with candidate sets ``P_L``/``P_R`` (vertices positively connected to
everything on their side and negatively connected to everything on the
other side) and prunes with *size bounds only* — that is the point of
the baseline (Section III-A): no colouring, no core reductions inside
the search.

Branching note.  Algorithm 1 as printed forces a side swap whenever the
opposite candidate set is non-empty (and line 11 passes ``P_R`` where
``C_R'`` is clearly meant).  Taken literally that rule can strand
same-side extensions (a clique needing two consecutive L-additions
while junk R-candidates exist is never completed), so this
implementation uses the standard complete two-sided Bron–Kerbosch
branching — every branch vertex is tried on its admissible side, then
excluded from both candidate sets — and keeps the paper's alternation
as a *preference* (grow the currently smaller side first, which is what
the alternation is for: avoiding skewed intermediate results).  The
first vertex is always placed on the L side, which cuts the mirrored
half of the search space (the side split is unique up to swapping).

``MBCEnum`` is the full maximal enumerator (with exclusion sets) used
by the case studies to count maximal balanced cliques.
"""

from __future__ import annotations

from typing import Callable

from ..signed.graph import SignedGraph
from .reductions import edge_reduction, vertex_reduction
from .result import EMPTY_RESULT, BalancedClique
from .stats import SearchStats

__all__ = ["mbc_baseline", "enumerate_maximal_balanced_cliques"]


def mbc_baseline(
    graph: SignedGraph,
    tau: int,
    use_edge_reduction: bool = True,
    stats: SearchStats | None = None,
    node_limit: int | None = None,
) -> BalancedClique:
    """MBC (Algorithm 1): maximum balanced clique by enumeration.

    Parameters
    ----------
    graph, tau:
        The signed graph and the polarization constraint.
    use_edge_reduction:
        Apply ``EdgeReduction`` of [13] before searching (the paper's
        ``MBC``); ``False`` gives the ``MBC-noER`` variant of Figure 6.
    stats:
        Optional instrumentation accumulator.
    node_limit:
        Optional cap on recursion nodes; exceeded search raises
        ``RuntimeError`` (guards benchmarks against pathological
        instances).

    Returns
    -------
    BalancedClique
        The maximum balanced clique satisfying ``tau`` (empty result if
        none exists).
    """
    alive = vertex_reduction(graph, tau)
    working, mapping = graph.subgraph(alive)
    if use_edge_reduction:
        working = edge_reduction(working, tau)
        # Edge removal may invalidate the degree bounds again.
        alive2 = vertex_reduction(working, tau)
        if len(alive2) < working.num_vertices:
            working, mapping2 = working.subgraph(alive2)
            mapping = [mapping[idx] for idx in mapping2]

    search = _TwoSidedSearch(working, tau, stats, node_limit)
    search.run()
    if search.best is None:
        return EMPTY_RESULT
    left, right = search.best
    return BalancedClique.from_sides(
        {mapping[v] for v in left}, {mapping[v] for v in right})


class _TwoSidedSearch:
    """Complete two-sided BK search with size-bound pruning only."""

    def __init__(
        self,
        graph: SignedGraph,
        tau: int,
        stats: SearchStats | None,
        node_limit: int | None,
    ) -> None:
        self.graph = graph
        self.tau = tau
        self.stats = stats
        self.node_limit = node_limit
        self.nodes = 0
        self.best: tuple[set[int], set[int]] | None = None
        self.best_size = 2 * tau - 1  # anything smaller cannot qualify

    def run(self) -> None:
        vertices = set(self.graph.vertices())
        self._enum(set(), set(), set(vertices), set(vertices))

    def _enum(
        self,
        c_left: set[int],
        c_right: set[int],
        p_left: set[int],
        p_right: set[int],
    ) -> None:
        self.nodes += 1
        if self.stats is not None:
            self.stats.nodes += 1
        if self.node_limit is not None and self.nodes > self.node_limit:
            raise RuntimeError(
                f"MBC baseline exceeded node limit {self.node_limit}")
        tau = self.tau
        size = len(c_left) + len(c_right)
        if (len(c_left) >= tau and len(c_right) >= tau
                and size > self.best_size):
            self.best = (set(c_left), set(c_right))
            self.best_size = size

        graph = self.graph
        while p_left or p_right:
            # Size-based feasibility / optimality bounds (the only
            # pruning the baseline performs).
            if len(c_left) + len(p_left) < tau:
                return
            if len(c_right) + len(p_right) < tau:
                return
            if size + len(p_left | p_right) <= self.best_size:
                return

            v, to_left = self._pick(c_left, c_right, p_left, p_right)
            if to_left:
                self._enum(
                    c_left | {v}, c_right,
                    graph.pos_neighbors(v) & p_left,
                    graph.neg_neighbors(v) & p_right)
            else:
                self._enum(
                    c_left, c_right | {v},
                    graph.neg_neighbors(v) & p_left,
                    graph.pos_neighbors(v) & p_right)
            p_left.discard(v)
            p_right.discard(v)

    def _pick(
        self,
        c_left: set[int],
        c_right: set[int],
        p_left: set[int],
        p_right: set[int],
    ) -> tuple[int, bool]:
        """Choose the next branch vertex and its side.

        The first vertex is forced onto the L side (mirror dedup); then
        the currently smaller side is preferred, which realizes the
        paper's alternating growth.
        """
        if not c_left and not c_right:
            return min(p_left), True
        if p_left and (not p_right or len(c_left) <= len(c_right)):
            return min(p_left), True
        return min(p_right), False


def enumerate_maximal_balanced_cliques(
    graph: SignedGraph,
    tau: int = 0,
    limit: int | None = None,
    on_clique: Callable[[BalancedClique], None] | None = None,
) -> list[BalancedClique]:
    """MBCEnum [13]: all maximal balanced cliques with sides ``>= tau``.

    A balanced clique is *maximal* when no vertex can be added to
    either side.  Results are canonicalized and deduplicated (the search
    may reach the same clique through both side assignments).

    Parameters
    ----------
    limit:
        Stop after this many distinct cliques (``None`` = unlimited);
        protects against the combinatorial blow-up the paper reports
        (Douban has more than 10^9 maximal balanced cliques).
    on_clique:
        Optional callback invoked for each distinct maximal clique.
    """
    alive = vertex_reduction(graph, tau)
    working, mapping = graph.subgraph(alive)
    found: dict[tuple[frozenset[int], frozenset[int]], BalancedClique] = {}

    class _Stop(Exception):
        pass

    def report(c_left: set[int], c_right: set[int]) -> None:
        clique = BalancedClique.from_sides(
            {mapping[v] for v in c_left}, {mapping[v] for v in c_right})
        key = (clique.left, clique.right)
        if key in found:
            return
        found[key] = clique
        if on_clique is not None:
            on_clique(clique)
        if limit is not None and len(found) >= limit:
            raise _Stop

    def compatible(v: int, on_left: bool,
                   p_left: set[int], p_right: set[int]) -> set[int]:
        """Candidates that remain available after adding ``v`` to the
        given side: same-side positive + cross-side negative."""
        if on_left:
            return ((working.pos_neighbors(v) & p_left)
                    | (working.neg_neighbors(v) & p_right))
        return ((working.neg_neighbors(v) & p_left)
                | (working.pos_neighbors(v) & p_right))

    def pick_pivot(
        p_left: set[int],
        p_right: set[int],
        x_left: set[int],
        x_right: set[int],
    ) -> set[int]:
        """Bron-Kerbosch pivoting, two-sided: return the compatibility
        set of the pivot covering the most candidates.  Any maximal
        clique avoiding the pivot must contain a candidate *outside*
        that set, so only those (plus the pivot itself, still in P)
        need branching — this collapses large planted cliques to a
        linear descent instead of an exponential subset sweep."""
        best: set[int] | None = None
        for pool, on_left in ((p_left, True), (p_right, False),
                              (x_left, True), (x_right, False)):
            for p in pool:
                compat = compatible(p, on_left, p_left, p_right)
                compat.discard(p)
                if best is None or len(compat) > len(best):
                    best = compat
        return best if best is not None else set()

    def enum(
        c_left: set[int],
        c_right: set[int],
        p_left: set[int],
        p_right: set[int],
        x_left: set[int],
        x_right: set[int],
    ) -> None:
        if not p_left and not p_right:
            if not x_left and not x_right and (c_left or c_right):
                if len(c_left) >= tau and len(c_right) >= tau:
                    report(c_left, c_right)
            return
        # Feasibility bound.
        if len(c_left) + len(p_left) < tau:
            return
        if len(c_right) + len(p_right) < tau:
            return
        if p_left & p_right:
            # Root-level pools overlap (a candidate's side is not yet
            # determined), where the pivot's compatibility set is
            # ill-defined; branch on everything.
            covered: set[int] = set()
        else:
            covered = pick_pivot(p_left, p_right, x_left, x_right)
        branchable = (p_left | p_right) - covered
        for v in sorted(branchable):
            if v not in p_left and v not in p_right:
                continue  # already moved to X by an earlier branch
            if v in p_left:
                enum(
                    c_left | {v}, c_right,
                    working.pos_neighbors(v) & p_left,
                    working.neg_neighbors(v) & p_right,
                    working.pos_neighbors(v) & x_left,
                    working.neg_neighbors(v) & x_right)
            else:
                enum(
                    c_left, c_right | {v},
                    working.neg_neighbors(v) & p_left,
                    working.pos_neighbors(v) & p_right,
                    working.neg_neighbors(v) & x_left,
                    working.pos_neighbors(v) & x_right)
            if v in p_left:
                p_left.discard(v)
                x_left = x_left | {v}
            if v in p_right:
                p_right.discard(v)
                x_right = x_right | {v}

    vertices = set(working.vertices())
    try:
        enum(set(), set(), set(vertices), set(vertices), set(), set())
    except _Stop:
        pass
    return list(found.values())
