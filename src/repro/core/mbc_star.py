"""MBC* — the paper's maximum balanced clique algorithm (Algorithm 2).

Pipeline:

1. ``VertexReduction`` of [13] (``EdgeReduction`` only in the
   ``MBC*-withER`` variant — the paper shows it is a net overhead);
2. ``MBC-Heu`` supplies an initial solution ``C*``;
3. reduce the graph to its ``|C*|``-core (signs ignored) and compute
   the degeneracy ordering;
4. for each vertex ``u`` in *reverse* degeneracy order, build the
   dichromatic network ``g_u`` over ``u``'s higher-ranked neighbours,
   core-reduce it, skip it when the colouring bound cannot beat
   ``|C*|``, and otherwise solve a maximum dichromatic clique instance
   (:func:`repro.dichromatic.mdc.solve_mdc`).

Every size bar below also folds in the feasibility bound
``|C| >= 2 * tau`` (both sides need ``tau`` vertices), which is what
lets gMBC* seed the search with ``(2 tau - 1)``-cores.
"""

from __future__ import annotations

from ..dichromatic.build import build_dichromatic_network, \
    build_dichromatic_network_bits, build_dichromatic_network_matrix, \
    ego_edge_count_from_matrix, ego_network_edge_count, \
    ego_network_edge_count_bits
from ..dichromatic.cores import k_core_active
from ..dichromatic.mdc import solve_mdc
from ..kernels import engine_spec, npmask, validate_engine
from ..kernels.active import (
    active_edge_count_mask,
    coloring_upper_bound_active_mask,
    degeneracy_ordering_mask,
    k_core_active_mask,
)
from ..kernels.bitset import iter_bits
from ..obs import Tracer, current_tracer
from ..parallel.engine import mbc_ego_fanout, resolve_workers
from ..resilience.budget import Budget, BudgetExceeded
from ..signed.graph import SignedGraph
from ..unsigned.coloring import coloring_upper_bound
from ..unsigned.cores import k_core_subset
from ..unsigned.graph import UnsignedGraph
from ..unsigned.ordering import HigherRanked, degeneracy_ordering
from .heuristic import mbc_heuristic
from .reductions import edge_reduction, edge_reduction_fast, \
    vertex_reduction
from .result import EMPTY_RESULT, BalancedClique
from .stats import SearchStats

__all__ = ["mbc_star"]


def mbc_star(
    graph: SignedGraph,
    tau: int,
    use_edge_reduction: bool = False,
    initial: BalancedClique | None = None,
    stats: SearchStats | None = None,
    check_only: bool = False,
    ordering: str = "degeneracy",
    use_coloring: bool = True,
    use_core: bool = True,
    engine: str = "bitset",
    parallel: int = 0,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
) -> BalancedClique:
    """Maximum balanced clique satisfying the polarization constraint.

    Parameters
    ----------
    graph, tau:
        The signed graph and polarization constraint.
    use_edge_reduction:
        Apply ``EdgeReduction`` too (the ``MBC*-withER`` variant of
        Figure 6); off by default, as in the paper.
    initial:
        Optional known balanced clique satisfying ``tau`` (gMBC* passes
        the optimum for ``tau + 1``); used as the starting lower bound
        and returned unchanged when nothing larger exists.
    stats:
        Optional instrumentation (Table IV counters).
    check_only:
        If True, return the first balanced clique satisfying ``tau``
        that the search encounters (not necessarily maximum) — the
        early-termination mode PF-BS uses.  Returns the empty result if
        none exists.
    ordering:
        Vertex processing order: ``'degeneracy'`` (the paper's choice —
        minimizes ego-network sizes), ``'degree'`` (non-decreasing
        degree) or ``'id'`` (vertex id); the alternatives exist for the
        ordering ablation benchmark.
    use_coloring, use_core:
        Ablation switches for the colouring-bound and core-reduction
        pruning (both on by default, as in the paper).
    engine:
        ``"bitset"`` (default) runs the per-instance kernels and the
        MDC search on int-mask adjacency (see :mod:`repro.kernels`);
        ``"numpy"`` runs them on vectorised uint64 mask matrices
        (:mod:`repro.kernels.npmask`); ``"set"`` is the original
        adjacency-set path, retained for differential testing and the
        ablation benchmarks.
    parallel:
        Number of worker processes for the ego-network sweep.  ``0`` or
        ``1`` run the serial sweep; larger values fan the per-vertex
        MDC instances out across a process pool with a shared incumbent
        (:mod:`repro.parallel`).  Requires an engine whose registry
        descriptor reports parallel support (bitset and numpy; the set
        engine is serial-only); the optimum size is identical to the
        serial sweep's.  ``check_only`` runs always stay serial (the
        first witness ends the search, so there is nothing to fan out).
    trace:
        Optional :class:`repro.obs.Tracer`; defaults to the ambient
        tracer.  A traced run closes one ``mbc_star`` root span with
        per-phase children (``vertex_reduction``, ``heuristic``,
        ``core_reduction``, ``ordering``, ``sweep``) and one ``ego``
        span per examined vertex — see ``docs/OBSERVABILITY.md``.
    budget:
        Optional :class:`repro.resilience.Budget` making this an
        *anytime* solve: reduction and heuristic always run, then the
        budget is checked per ego network and charged per
        branch-and-bound node; on exhaustion the current incumbent is
        returned and ``budget.status`` reads ``BUDGET_EXHAUSTED``
        (``check_only`` truncation returns the empty result — "not
        proven").  See ``docs/ROBUSTNESS.md``.

    Returns
    -------
    BalancedClique
        The maximum balanced clique (or the feasibility witness in
        ``check_only`` mode); empty when no clique satisfies ``tau``.
        Under an exhausted budget: the best incumbent proven so far.
    """
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    if ordering not in ("degeneracy", "degree", "id"):
        raise ValueError(f"unknown ordering {ordering!r}")
    validate_engine(engine)
    workers = resolve_workers(parallel)
    if workers > 1 and not engine_spec(engine).supports_parallel:
        raise ValueError(
            f"parallel execution requires an engine with parallel "
            f"support; engine {engine!r} is serial-only")
    best = initial if initial is not None else EMPTY_RESULT
    if not best.is_empty and not best.satisfies(tau):
        raise ValueError("initial clique violates the tau constraint")

    tracer = trace if trace is not None else current_tracer()
    root = tracer.span(
        "mbc_star", n=graph.num_vertices, tau=tau, engine=engine,
        workers=workers, check_only=check_only)
    with root:
        result = _pipeline(
            graph, tau, use_edge_reduction, stats, check_only, ordering,
            use_coloring, use_core, engine, workers, best, tracer,
            budget)
        if tracer.enabled:
            root.set(size=result.size)
            if budget is not None:
                root.set(status=budget.status.value,
                         budget_nodes=budget.nodes)
    return result


def _pipeline(
    graph: SignedGraph,
    tau: int,
    use_edge_reduction: bool,
    stats: SearchStats | None,
    check_only: bool,
    ordering: str,
    use_coloring: bool,
    use_core: bool,
    engine: str,
    workers: int,
    best: BalancedClique,
    tracer: Tracer,
    budget: "Budget | None",
) -> BalancedClique:
    """The MBC* pipeline behind :func:`mbc_star` (root span open)."""
    # Line 1: VertexReduction (plus EdgeReduction for the variant).
    with tracer.span("vertex_reduction", n=graph.num_vertices) as phase:
        alive = vertex_reduction(graph, tau)
        working, mapping = graph.subgraph(alive)
        phase.set(kept=working.num_vertices)
    if use_edge_reduction:
        with tracer.span("edge_reduction",
                         edges=working.num_edges) as phase:
            reducer = edge_reduction_fast if engine == "bitset" \
                else edge_reduction
            working = reducer(working, tau)
            alive2 = vertex_reduction(working, tau)
            if len(alive2) < working.num_vertices:
                working, mapping2 = working.subgraph(alive2)
                mapping = [mapping[idx] for idx in mapping2]
            phase.set(kept_edges=working.num_edges,
                      kept=working.num_vertices)

    # Line 2: heuristic initial solution.
    with tracer.span("heuristic") as phase:
        heuristic = mbc_heuristic(working, tau, engine=engine)
        phase.set(size=heuristic.size)
    if stats is not None:
        stats.heuristic_size = heuristic.size
    if heuristic.size > best.size:
        best = BalancedClique.from_sides(
            {mapping[v] for v in heuristic.left},
            {mapping[v] for v in heuristic.right})
    if check_only and best.satisfies(tau) and not best.is_empty:
        return best

    # First budget checkpoint: the polynomial preprocessing above
    # always runs (so a truncated answer is at least the heuristic);
    # everything exponential from here on is interruptible.
    if budget is not None:
        try:
            budget.check()
        except BudgetExceeded:
            return EMPTY_RESULT if check_only else best

    # Line 3: reduce to the |C*|-core, signs ignored.  ``required`` is
    # the minimum acceptable clique size: beat the incumbent and leave
    # room for tau vertices per side.
    required = max(best.size + 1, 2 * tau)
    with tracer.span("core_reduction", required=required) as phase:
        core_alive: set[int] | None = None
        if engine == "bitset":
            unsigned = UnsignedGraph.from_signed_bits(working)
            core_mask = k_core_active_mask(
                unsigned.adjacency_bits(), required - 1,
                unsigned.all_bits())
            phase.set(kept=core_mask.bit_count())
            if not core_mask:
                return best
        elif engine == "numpy":
            # Label-blind adjacency straight from the signed matrices;
            # no UnsignedGraph object is needed on this path.
            unsigned_mat = (working.pos_adjacency_matrix()
                            | working.neg_adjacency_matrix())
            core_row = npmask.k_core_active(
                unsigned_mat, required - 1,
                npmask.full_row(working.num_vertices))
            core_kept = npmask.row_count(core_row)
            phase.set(kept=core_kept)
            if core_kept == 0:
                return best
        else:
            unsigned = UnsignedGraph.from_signed(working)
            core_alive = k_core_subset(
                unsigned, required - 1, unsigned.vertices())
            phase.set(kept=len(core_alive))
            if not core_alive:
                return best

    # Line 4: vertex ordering (degeneracy by default; ego-networks of
    # higher-ranked neighbours then have at most degeneracy(G) many
    # vertices).
    with tracer.span("ordering", kind=ordering) as phase:
        if ordering == "degeneracy":
            if engine == "bitset":
                # Ordering the core-induced subgraph suffices: every
                # clique able to beat the incumbent lies inside the
                # |C*|-core, and the sweep only ever ranks core vertices.
                order = degeneracy_ordering_mask(
                    unsigned.adjacency_bits(), core_mask)
            elif engine == "numpy":
                order = npmask.degeneracy_ordering(
                    unsigned_mat, core_row)
            else:
                full_order = degeneracy_ordering(unsigned)
                order = [v for v in full_order if v in core_alive]
        else:
            if core_alive is None:
                if engine == "bitset":
                    core_alive = set(iter_bits(core_mask))
                else:
                    core_alive = set(npmask.row_indices(
                        core_row, working.num_vertices).tolist())
            if ordering == "degree":
                if engine == "numpy":
                    degrees = npmask.degrees_in_active(
                        unsigned_mat,
                        npmask.full_row(working.num_vertices))
                    order = sorted(
                        core_alive, key=lambda v: int(degrees[v]))
                else:
                    order = sorted(core_alive, key=unsigned.degree)
            else:
                order = sorted(core_alive)
        phase.set(n=len(order))
    rank = {v: position for position, v in enumerate(order)}

    # Parallel fan-out: the per-vertex instances of the sweep below are
    # order-independent, so with workers requested they are dispatched
    # to a process pool instead (identical optimum size guaranteed; see
    # repro.parallel).  check_only stays serial: its contract is "stop
    # at the first witness", which a fan-out cannot honour cheaply.
    if workers > 1 and engine_spec(engine).supports_parallel \
            and not check_only:
        return mbc_ego_fanout(
            working, mapping, tau, best, order, workers,
            use_core=use_core, use_coloring=use_coloring, stats=stats,
            engine=engine, trace=tracer, budget=budget)

    # Line 5: process vertices in reverse degeneracy order.  The bitset
    # engine carries the "higher-ranked" filter as a mask accumulated
    # over already-processed vertices (exactly the vertices ranked above
    # the current one).
    with tracer.span("sweep", n=len(order)):
        allowed_mask = 0
        allowed_row = npmask.row_from_mask(
            0, working.num_vertices) if engine == "numpy" else None
        for u in reversed(order):
            # Anytime contract: a budgeted sweep stops between (or,
            # via the per-node spend inside solve_mdc, within) ego
            # networks and falls through to return the incumbent.
            if budget is not None:
                try:
                    budget.check()
                except BudgetExceeded:
                    break
            with tracer.span("ego", v=mapping[u]) as ego:
                required = max(best.size + 1, 2 * tau)
                this_allowed_mask = allowed_mask
                allowed_mask |= 1 << u
                if allowed_row is not None:
                    this_allowed_row = allowed_row.copy()
                    npmask.set_bit(allowed_row, u)
                if stats is not None:
                    stats.vertices_examined += 1
                # Line 7: |C*|-core of g_u (k shifted by one: u is
                # excluded).  Line 8: colouring-based pruning of the
                # whole instance.  Both run on the engine's native
                # representation; the bitset path builds the network
                # straight from global adjacency masks and hands the
                # surviving mask to solve_mdc.
                if engine == "bitset":
                    network = build_dichromatic_network_bits(
                        working, u, this_allowed_mask)
                    if network.num_vertices + 1 < required:
                        ego.set(pruned="size")
                        continue
                    adj_bits = network.adjacency_bits()
                    active_mask = network.all_bits()
                    if use_core:
                        active_mask = k_core_active_mask(
                            adj_bits, required - 2, active_mask)
                    if active_mask.bit_count() + 1 < required:
                        ego.set(pruned="core")
                        continue
                    if use_coloring:
                        bound = coloring_upper_bound_active_mask(
                            adj_bits, active_mask)
                        if bound < required - 1:
                            ego.set(pruned="color")
                            continue
                    ego.set(n=network.num_vertices,
                            reduced=active_mask.bit_count())
                    if stats is not None:
                        stats.instances += 1
                        ego_edges = ego_network_edge_count_bits(
                            working, u, this_allowed_mask)
                        reduced_edges = active_edge_count_mask(
                            adj_bits, active_mask)
                        stats.record_reduction(
                            ego_edges, network.num_edges, reduced_edges)
                    try:
                        found = solve_mdc(
                            network, tau - 1, tau,
                            must_exceed=required - 2,
                            stats=stats,
                            check_only=check_only,
                            use_coloring=use_coloring,
                            use_core=use_core,
                            engine=engine,
                            active_mask=active_mask,
                            trace=tracer,
                            budget=budget)
                    except BudgetExceeded:
                        break
                elif engine == "numpy":
                    network = build_dichromatic_network_matrix(
                        working, u, this_allowed_row)
                    if network.num_vertices + 1 < required:
                        ego.set(pruned="size")
                        continue
                    adj_mat = network.adjacency_matrix()
                    active_row = network.all_row()
                    if use_core:
                        active_row = npmask.k_core_active(
                            adj_mat, required - 2, active_row)
                    reduced_count = npmask.row_count(active_row)
                    if reduced_count + 1 < required:
                        ego.set(pruned="core")
                        continue
                    if use_coloring:
                        bound = npmask.coloring_upper_bound_active(
                            adj_mat, active_row)
                        if bound < required - 1:
                            ego.set(pruned="color")
                            continue
                    ego.set(n=network.num_vertices,
                            reduced=reduced_count)
                    if stats is not None:
                        stats.instances += 1
                        ego_edges = ego_edge_count_from_matrix(
                            working.pos_adjacency_matrix(),
                            working.neg_adjacency_matrix(),
                            u, this_allowed_row)
                        reduced_edges = npmask.active_edge_count(
                            adj_mat, active_row)
                        stats.record_reduction(
                            ego_edges, network.num_edges, reduced_edges)
                    try:
                        found = solve_mdc(
                            network, tau - 1, tau,
                            must_exceed=required - 2,
                            stats=stats,
                            check_only=check_only,
                            use_coloring=use_coloring,
                            use_core=use_core,
                            engine=engine,
                            active_row=active_row,
                            trace=tracer,
                            budget=budget)
                    except BudgetExceeded:
                        break
                else:
                    allowed = HigherRanked(rank, rank[u])
                    network = build_dichromatic_network(
                        working, u, allowed)
                    if network.num_vertices + 1 < required:
                        ego.set(pruned="size")
                        continue
                    active = set(network.vertices())
                    if use_core:
                        active = k_core_active(
                            network, required - 2, active)
                    if len(active) + 1 < required:
                        ego.set(pruned="core")
                        continue
                    if use_coloring:
                        bound = _color_bound(network, active)
                        if bound < required - 1:
                            ego.set(pruned="color")
                            continue
                    ego.set(n=network.num_vertices, reduced=len(active))
                    if stats is not None:
                        stats.instances += 1
                        ego_edges = ego_network_edge_count(
                            working, u, allowed)
                        reduced_edges = _active_edge_count(
                            network, active)
                        stats.record_reduction(
                            ego_edges, network.num_edges, reduced_edges)
                    try:
                        found = solve_mdc(
                            network, tau - 1, tau,
                            must_exceed=required - 2,
                            stats=stats,
                            check_only=check_only,
                            active=active,
                            use_coloring=use_coloring,
                            use_core=use_core,
                            engine=engine,
                            trace=tracer,
                            budget=budget)
                    except BudgetExceeded:
                        break
                ego.set(found=found is not None)
                if found is None:
                    continue
                left = {mapping[u]}
                right: set[int] = set()
                for v in found:
                    orig = mapping[network.origin[v]]
                    if network.is_left[v]:
                        left.add(orig)
                    else:
                        right.add(orig)
                candidate = BalancedClique.from_sides(left, right)
                if check_only:
                    return candidate
                if candidate.size > best.size:
                    best = candidate

    if check_only:
        return EMPTY_RESULT
    return best


def _color_bound(network: "DichromaticGraph", active: set[int]) -> int:
    """Greedy-colouring clique bound over ``active`` in ``network``."""
    from ..dichromatic.cores import coloring_upper_bound_active

    return coloring_upper_bound_active(network, active)


def _active_edge_count(network: "DichromaticGraph",
                       active: set[int]) -> int:
    """Edges of the dichromatic network inside ``active``."""
    return sum(
        len(network.neighbors(v) & active) for v in active) // 2
