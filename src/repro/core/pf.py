"""Polarization factor algorithms (Section IV).

``beta(G)`` is the largest ``tau`` for which a balanced clique with
both sides of size ``>= tau`` exists.  Three solvers, mirroring the
paper's experimental line-up:

* :func:`pf_enumeration` (``PF-E``) — enumerate balanced cliques and
  track the best ``min(|C_L|, |C_R|)`` (with the natural size-bound
  pruning);
* :func:`pf_binary_search` (``PF-BS``) — binary search on ``tau``,
  deciding feasibility with MBC* in early-termination mode;
* :func:`pf_star` (``PF*``, Algorithm 4) — direct adaptation of MBC*:
  process vertices in reverse *polarization order* (``PDecompose``),
  and for each ask only the +1 question — "does ``g_u`` hold a
  dichromatic clique with ``tau* + 1`` vertices per side?" — via DCC,
  justified by Lemma 4.  ``ordering='degeneracy'`` gives the
  ``PF*-DOrder`` variant of Figure 9.
"""

from __future__ import annotations

from ..dichromatic.build import build_dichromatic_network, \
    build_dichromatic_network_bits, build_dichromatic_network_matrix, \
    ego_edge_count_from_matrix, ego_network_edge_count, \
    ego_network_edge_count_bits
from ..dichromatic.cores import bicore_active
from ..dichromatic.dcc import dichromatic_clique_witness
from ..kernels import engine_spec, npmask, validate_engine
from ..kernels.active import active_edge_count_mask, bicore_active_mask, \
    degeneracy_ordering_mask
from ..obs import Tracer, current_tracer
from ..parallel.engine import pf_round_fanout, resolve_workers
from ..resilience.budget import Budget, BudgetExceeded
from ..signed.graph import SignedGraph
from ..unsigned.graph import UnsignedGraph
from ..unsigned.ordering import HigherRanked, degeneracy_ordering
from .heuristic import mbc_heuristic
from .mbc_star import mbc_star
from .reductions import polar_core_numbers, polarization_upper_bound, \
    vertex_reduction
from .result import BalancedClique
from .stats import SearchStats

__all__ = ["pf_enumeration", "pf_binary_search", "pf_star"]


def pf_enumeration(
    graph: SignedGraph,
    stats: SearchStats | None = None,
    node_limit: int | None = None,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
) -> int:
    """PF-E: polarization factor by exhaustive enumeration.

    An exhausted ``budget`` (anytime contract) returns the best
    polarization proven so far — unlike ``node_limit``, which is a
    hard error used by tests to bound runaway enumerations.
    """
    tracer = trace if trace is not None else current_tracer()
    with tracer.span("pf_enum", n=graph.num_vertices) as span:
        best = _pf_enumeration(graph, stats, node_limit, budget)
        span.set(beta=best)
        if tracer.enabled and budget is not None:
            span.set(status=budget.status.value)
    return best


def _pf_enumeration(
    graph: SignedGraph,
    stats: SearchStats | None,
    node_limit: int | None,
    budget: "Budget | None" = None,
) -> int:
    """The PF-E recursion behind :func:`pf_enumeration`."""
    best = 0
    nodes = 0

    def enum(
        c_left: set[int],
        c_right: set[int],
        p_left: set[int],
        p_right: set[int],
    ) -> None:
        nonlocal best, nodes
        nodes += 1
        if stats is not None:
            stats.nodes += 1
        if budget is not None:
            budget.spend()
        if node_limit is not None and nodes > node_limit:
            raise RuntimeError(
                f"PF-E exceeded node limit {node_limit}")
        polarization = min(len(c_left), len(c_right))
        if polarization > best:
            best = polarization
        # Upper bound on what this branch can still achieve.
        if min(len(c_left) + len(p_left),
               len(c_right) + len(p_right)) <= best:
            return
        while p_left or p_right:
            if min(len(c_left) + len(p_left),
                   len(c_right) + len(p_right)) <= best:
                return
            if not c_left and not c_right:
                v, to_left = min(p_left), True
            elif p_left and (not p_right or len(c_left) <= len(c_right)):
                v, to_left = min(p_left), True
            else:
                v, to_left = min(p_right), False
            if to_left:
                enum(
                    c_left | {v}, c_right,
                    graph.pos_neighbors(v) & p_left,
                    graph.neg_neighbors(v) & p_right)
            else:
                enum(
                    c_left, c_right | {v},
                    graph.neg_neighbors(v) & p_left,
                    graph.pos_neighbors(v) & p_right)
            p_left.discard(v)
            p_right.discard(v)

    vertices = set(graph.vertices())
    try:
        enum(set(), set(), set(vertices), set(vertices))
    except BudgetExceeded:
        pass  # anytime: return the best polarization proven so far
    return best


def pf_binary_search(
    graph: SignedGraph,
    stats: SearchStats | None = None,
    engine: str = "bitset",
    parallel: int = 0,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
) -> int:
    """PF-BS: binary search on ``tau``, feasibility via MBC*.

    Each probe runs MBC* in ``check_only`` mode (terminate as soon as
    both residual thresholds hit zero — the Section IV-B optimization).
    ``parallel`` is accepted for interface parity but the probes stay
    serial: ``check_only`` searches stop at the first witness.

    A ``budget`` is shared by all probes.  On exhaustion the returned
    value is the last *certified* ``tau`` — a probe that produced a
    real witness certifies its ``tau`` even when truncated afterwards,
    but a truncated probe that found nothing is inconclusive and never
    shrinks the search window.
    """
    tracer = trace if trace is not None else current_tracer()
    with tracer.span("pf_bs", n=graph.num_vertices,
                     engine=engine) as root:
        low = 0
        high = polarization_upper_bound(graph)
        while low < high:
            if budget is not None and budget.exhausted:
                break
            mid = (low + high + 1) // 2
            with tracer.span("probe", tau=mid) as probe:
                witness = mbc_star(
                    graph, mid, check_only=True, stats=stats,
                    engine=engine, parallel=parallel, trace=tracer,
                    budget=budget)
                feasible = witness.satisfies(mid) \
                    and not witness.is_empty
                probe.set(feasible=feasible)
            if feasible:
                low = mid
            elif budget is not None and budget.exhausted:
                break  # "infeasible" was not proven, only truncated
            else:
                high = mid - 1
        root.set(beta=low)
        if tracer.enabled and budget is not None:
            root.set(status=budget.status.value)
    return low


def pf_star(
    graph: SignedGraph,
    stats: SearchStats | None = None,
    ordering: str = "polarization",
    return_witness: bool = False,
    engine: str = "bitset",
    parallel: int = 0,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
) -> "int | tuple[int, BalancedClique]":
    """PF* (Algorithm 4): the dichromatic-clique-checking algorithm.

    Parameters
    ----------
    ordering:
        ``'polarization'`` (default, POrder from ``PDecompose``) or
        ``'degeneracy'`` (the ``PF*-DOrder`` variant).  The
        polarization order additionally enables the Lemma-5 early
        break: once ``pn(u) <= tau*``, no later vertex can improve.
    return_witness:
        Also return a balanced clique achieving the factor.
    engine:
        ``"bitset"`` (default) runs the per-vertex bicore reduction and
        DCC check on int-mask adjacency, ``"numpy"`` on vectorised
        uint64 mask matrices; ``"set"`` is the original adjacency-set
        path.
    parallel:
        Number of worker processes.  ``0``/``1`` run the serial sweep;
        larger values run the round-based fan-out of
        :func:`repro.parallel.engine.pf_round_fanout`, which asks the
        +1 questions of all still-viable vertices concurrently and
        iterates until the bar stops rising — the fixpoint is exactly
        ``beta(G)``.  Requires an engine with parallel support (bitset
        or numpy).
    budget:
        Optional :class:`repro.resilience.Budget` (anytime contract):
        the heuristic always runs, then the budget is checked per ego
        network / round and charged per branch-and-bound node inside
        the DCC probes.  On exhaustion the returned ``tau*`` is the
        last *proven* bar — its witness clique certifies it — and
        ``budget.status`` reads ``BUDGET_EXHAUSTED``.

    Returns
    -------
    int | tuple[int, BalancedClique]
        ``beta(G)``; with ``return_witness``, also a clique whose
        smaller side has exactly ``beta(G)`` vertices.  Under an
        exhausted budget these are a certified lower bound and its
        witness.
    """
    if ordering not in ("polarization", "degeneracy"):
        raise ValueError(f"unknown ordering {ordering!r}")
    validate_engine(engine)
    workers = resolve_workers(parallel)
    if workers > 1 and not engine_spec(engine).supports_parallel:
        raise ValueError(
            f"parallel execution requires an engine with parallel "
            f"support; engine {engine!r} is serial-only")

    tracer = trace if trace is not None else current_tracer()
    root = tracer.span(
        "pf_star", n=graph.num_vertices, engine=engine,
        workers=workers, ordering=ordering)
    with root:
        tau_star, witness = _pf_pipeline(
            graph, stats, ordering, engine, workers, tracer, budget)
        if tracer.enabled:
            root.set(beta=tau_star)
            if budget is not None:
                root.set(status=budget.status.value,
                         budget_nodes=budget.nodes)
    if return_witness:
        return tau_star, witness
    return tau_star


def _pf_pipeline(
    graph: SignedGraph,
    stats: SearchStats | None,
    ordering: str,
    engine: str,
    workers: int,
    tracer: Tracer,
    budget: "Budget | None",
) -> "tuple[int, BalancedClique]":
    """The PF* pipeline behind :func:`pf_star` (root span open)."""
    # Line 1: heuristic lower bound.
    with tracer.span("heuristic") as phase:
        heuristic = mbc_heuristic(graph, 0, engine=engine)
        tau_star = heuristic.polarization
        witness = heuristic
        phase.set(size=tau_star)
    if stats is not None:
        stats.heuristic_size = tau_star

    # First budget checkpoint: the heuristic above always runs, so a
    # truncated solve still returns a real witness for its bound.
    if budget is not None:
        try:
            budget.check()
        except BudgetExceeded:
            return tau_star, witness

    # Line 2: VertexReduction for tau* + 1.
    with tracer.span("vertex_reduction", n=graph.num_vertices) as phase:
        alive = vertex_reduction(graph, tau_star + 1)
        working, mapping = graph.subgraph(alive)
        phase.set(kept=working.num_vertices)

    # Line 3: total ordering.
    with tracer.span("ordering", kind=ordering) as phase:
        if ordering == "polarization":
            order, pn = polar_core_numbers(working)
        elif engine == "bitset":
            unsigned = UnsignedGraph.from_signed_bits(working)
            order = degeneracy_ordering_mask(
                unsigned.adjacency_bits(), unsigned.all_bits())
            pn = None
        elif engine == "numpy":
            unsigned_mat = (working.pos_adjacency_matrix()
                            | working.neg_adjacency_matrix())
            order = npmask.degeneracy_ordering(
                unsigned_mat, npmask.full_row(working.num_vertices))
            pn = None
        else:
            order = degeneracy_ordering(
                UnsignedGraph.from_signed(working))
            pn = None
        phase.set(n=len(order))
    rank = {v: position for position, v in enumerate(order)}

    # Parallel fan-out: rounds of concurrent +1 questions instead of
    # the serial sweep (identical beta(G); see repro.parallel).
    if workers > 1 and engine_spec(engine).supports_parallel:
        return pf_round_fanout(
            working, mapping, order, pn, tau_star, witness, workers,
            stats=stats, engine=engine, trace=tracer, budget=budget)

    # Lines 4-8: reverse-order sweep with DCC checks.  As in MBC*, the
    # bitset engine accumulates the higher-ranked filter as a mask of
    # already-processed vertices.
    with tracer.span("sweep", n=len(order)):
        allowed_mask = 0
        allowed_row = npmask.row_from_mask(
            0, working.num_vertices) if engine == "numpy" else None
        for u in reversed(order):
            if pn is not None and pn[u] <= tau_star:
                # Lemma 5: pn(u) >= gamma(g_u); nothing later helps.
                break
            # Anytime contract: tau_star below is always proven by
            # ``witness``, so stopping here returns a certified bound.
            if budget is not None:
                try:
                    budget.check()
                except BudgetExceeded:
                    break
            with tracer.span("ego", v=mapping[u], bar=tau_star) as ego:
                this_allowed_mask = allowed_mask
                allowed_mask |= 1 << u
                if allowed_row is not None:
                    this_allowed_row = allowed_row.copy()
                    npmask.set_bit(allowed_row, u)
                if stats is not None:
                    stats.vertices_examined += 1
                if engine == "bitset":
                    network = build_dichromatic_network_bits(
                        working, u, this_allowed_mask)
                elif engine == "numpy":
                    network = build_dichromatic_network_matrix(
                        working, u, this_allowed_row)
                else:
                    allowed = HigherRanked(rank, rank[u])
                    network = build_dichromatic_network(
                        working, u, allowed)
                # Line 6: (tau*+1, tau*+1)-core of g_u; thresholds
                # shifted because u (an L-vertex adjacent to everyone)
                # is excluded.
                if engine == "bitset":
                    adj_bits = network.adjacency_bits()
                    left_bits = network.left_bits()
                    active_mask = bicore_active_mask(
                        adj_bits, left_bits, tau_star, tau_star + 1,
                        network.all_bits())
                    left_count = (active_mask & left_bits).bit_count()
                    right_count = active_mask.bit_count() - left_count
                elif engine == "numpy":
                    adj_mat = network.adjacency_matrix()
                    left_row = network.left_row()
                    active_row = npmask.bicore_active(
                        adj_mat, left_row, tau_star, tau_star + 1,
                        network.all_row())
                    left_count = npmask.row_count(
                        active_row & left_row)
                    right_count = npmask.row_count(
                        active_row) - left_count
                else:
                    active = bicore_active(
                        network, tau_star, tau_star + 1,
                        set(network.vertices()))
                    left_count = sum(
                        1 for v in active if network.is_left[v])
                    right_count = len(active) - left_count
                # Line 7: u must itself survive in the core.
                if left_count < tau_star or right_count < tau_star + 1:
                    ego.set(pruned="core")
                    continue
                ego.set(n=network.num_vertices)
                if stats is not None:
                    stats.instances += 1
                    if engine == "bitset":
                        ego_edges = ego_network_edge_count_bits(
                            working, u, this_allowed_mask)
                        reduced = active_edge_count_mask(
                            adj_bits, active_mask)
                    elif engine == "numpy":
                        ego_edges = ego_edge_count_from_matrix(
                            working.pos_adjacency_matrix(),
                            working.neg_adjacency_matrix(),
                            u, this_allowed_row)
                        reduced = npmask.active_edge_count(
                            adj_mat, active_row)
                    else:
                        ego_edges = ego_network_edge_count(
                            working, u, allowed)
                        reduced = sum(
                            len(network.neighbors(v) & active)
                            for v in active) // 2
                    stats.record_reduction(
                        ego_edges, network.num_edges, reduced)
                # Line 8: one +1 feasibility question per vertex
                # (Lemma 4).
                try:
                    if engine == "bitset":
                        found = dichromatic_clique_witness(
                            network, tau_star, tau_star + 1,
                            stats=stats, engine=engine,
                            active_mask=active_mask, trace=tracer,
                            budget=budget)
                    elif engine == "numpy":
                        found = dichromatic_clique_witness(
                            network, tau_star, tau_star + 1,
                            stats=stats, engine=engine,
                            active_row=active_row, trace=tracer,
                            budget=budget)
                    else:
                        found = dichromatic_clique_witness(
                            network, tau_star, tau_star + 1,
                            stats=stats, active=active, engine=engine,
                            trace=tracer, budget=budget)
                except BudgetExceeded:
                    break
                ego.set(found=found is not None)
                if found is not None:
                    tau_star += 1
                    left = {mapping[u]}
                    right: set[int] = set()
                    for v in found:
                        orig = mapping[network.origin[v]]
                        if network.is_left[v]:
                            left.add(orig)
                        else:
                            right.add(orig)
                    witness = BalancedClique.from_sides(left, right)

    return tau_star, witness
