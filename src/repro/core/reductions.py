"""Graph reductions: VertexReduction, EdgeReduction, polar cores.

* :func:`vertex_reduction` / :func:`edge_reduction` re-implement the
  reductions of Chen et al. [13] that the paper reuses: a vertex of a
  balanced clique satisfying the polarization constraint ``tau`` has
  positive degree ``>= tau - 1`` and negative degree ``>= tau``; an edge
  of such a clique participates in a sign-compatible set of triangles
  (see :func:`edge_reduction`).
* :func:`polar_core_numbers` implements ``PDecompose`` (Algorithm 5):
  the peeling that yields every vertex's polar-core number ``pn(u)`` and
  the *polarization order* used by PF*.
* :func:`polar_core_vertices` extracts the ``k``-polar-core directly
  (Definition 3), used to cross-check ``PDecompose`` in tests.
"""

from __future__ import annotations

import heapq
from collections import deque

from ..signed.graph import SignedGraph

__all__ = [
    "vertex_reduction",
    "edge_reduction",
    "edge_reduction_fast",
    "polar_core_numbers",
    "polarization_order",
    "polar_core_vertices",
    "polarization_upper_bound",
]


def vertex_reduction(graph: SignedGraph, tau: int) -> set[int]:
    """``VertexReduction`` of [13]: survivors of degree-based peeling.

    Iteratively discards vertices with ``d+ < tau - 1`` or ``d- < tau``
    (degrees measured among survivors).  Every balanced clique whose
    sides both have ``>= tau`` vertices is contained in the returned
    set.  ``O(n + m)``.
    """
    alive = set(graph.vertices())
    if tau <= 0:
        return alive
    pos_deg = {v: graph.pos_degree(v) for v in alive}
    neg_deg = {v: graph.neg_degree(v) for v in alive}

    def violates(v: int) -> bool:
        return pos_deg[v] < tau - 1 or neg_deg[v] < tau

    queue = deque(v for v in alive if violates(v))
    queued = set(queue)
    while queue:
        v = queue.popleft()
        if v not in alive:
            continue
        alive.discard(v)
        for u in graph.pos_neighbors(v):
            if u in alive:
                pos_deg[u] -= 1
                if u not in queued and violates(u):
                    queue.append(u)
                    queued.add(u)
        for u in graph.neg_neighbors(v):
            if u in alive:
                neg_deg[u] -= 1
                if u not in queued and violates(u):
                    queue.append(u)
                    queued.add(u)
    return alive


def edge_reduction(graph: SignedGraph, tau: int) -> SignedGraph:
    """``EdgeReduction`` of [13]: drop edges missing required triangles.

    For an edge of a balanced clique ``C`` with ``|C_L|, |C_R| >= tau``:

    * a **positive** edge joins two same-side vertices, so it closes at
      least ``tau - 2`` triangles with two further positive edges
      (third vertex on the same side) and at least ``tau`` triangles
      with two negative edges (third vertex on the other side);
    * a **negative** edge joins opposite sides, so it closes at least
      ``tau - 1`` triangles whose third vertex sees one endpoint
      positively and the other negatively — in *both* orientations.

    Edges violating these counts are removed; removal is iterated to a
    fixpoint since deleting an edge invalidates other edges' triangles.
    Returns a reduced copy (the input graph is untouched).  This is the
    ``O(m^{3/2})``-style reduction that helps the slow baseline but is a
    net overhead for MBC* (Figure 6).
    """
    reduced = graph.copy()
    if tau <= 0:
        return reduced
    changed = True
    while changed:
        changed = False
        to_remove: list[tuple[int, int]] = []
        for u, v, sign in reduced.edges():
            if sign == 1:
                same_pos = len(
                    reduced.pos_neighbors(u) & reduced.pos_neighbors(v))
                cross_neg = len(
                    reduced.neg_neighbors(u) & reduced.neg_neighbors(v))
                if same_pos < tau - 2 or cross_neg < tau:
                    to_remove.append((u, v))
            else:
                forward = len(
                    reduced.pos_neighbors(u) & reduced.neg_neighbors(v))
                backward = len(
                    reduced.neg_neighbors(u) & reduced.pos_neighbors(v))
                if forward < tau - 1 or backward < tau - 1:
                    to_remove.append((u, v))
        for u, v in to_remove:
            if reduced.has_edge(u, v):
                reduced.remove_edge(u, v)
                changed = True
    return reduced


def edge_reduction_fast(graph: SignedGraph, tau: int) -> SignedGraph:
    """Worklist :func:`edge_reduction`: same fixpoint, no full rescans.

    Deleting ``(u, v)`` only destroys triangles ``{u, v, w}`` with
    ``w`` adjacent to both endpoints, so only the edges ``(u, w)`` and
    ``(v, w)`` for ``w ∈ N(u) ∩ N(v)`` can newly fall below their
    support thresholds — the pass-based rescan of every surviving edge
    is replaced by exactly those re-checks.  The reduction is monotone
    (removals only shrink supports), hence the fixpoint is unique and
    both implementations keep the same edges; this is differential-
    tested in ``tests/test_engines.py``.

    Supports are counted with sparse set intersections rather than the
    bitset kernels: on the vertex-reduced benchmark graphs
    (``n`` up to a few thousand, mean degree ~20) an ``O(min degree)``
    C-level set intersection beats an ``O(n/64)`` wide-mask AND by
    3-10x, so the worklist — not the mask — is the win here.  Used by
    the ``bitset`` engine's ``use_edge_reduction`` path; the ``set``
    engine keeps the pass-based original as the reference.
    """
    reduced = graph.copy()
    if tau <= 0:
        return reduced
    queue = deque((u, v) for u, v, _ in reduced.edges())
    queued = set(queue)
    while queue:
        u, v = queue.popleft()
        queued.discard((u, v))
        pos_u = reduced.pos_neighbors(u)
        neg_u = reduced.neg_neighbors(u)
        if v in pos_u:
            survives = \
                len(pos_u & reduced.pos_neighbors(v)) >= tau - 2 \
                and len(neg_u & reduced.neg_neighbors(v)) >= tau
        elif v in neg_u:
            survives = \
                len(pos_u & reduced.neg_neighbors(v)) >= tau - 1 \
                and len(neg_u & reduced.pos_neighbors(v)) >= tau - 1
        else:
            continue  # already removed by an earlier re-check
        if survives:
            continue
        reduced.remove_edge(u, v)
        common = reduced.neighbors(u) & reduced.neighbors(v)
        for w in common:
            for key in ((u, w) if u < w else (w, u),
                        (v, w) if v < w else (w, v)):
                if key not in queued:
                    queued.add(key)
                    queue.append(key)
    return reduced


def polar_core_numbers(graph: SignedGraph) -> tuple[list[int], list[int]]:
    """``PDecompose`` (Algorithm 5): polarization order + ``pn`` values.

    Iteratively removes the vertex ``u`` minimizing
    ``min(d+(u) + 1, d-(u))`` in the remaining graph, records
    ``pn(u)`` as that value, and decrements neighbour degrees — but only
    while they exceed ``pn(u)``, which keeps the sequence of recorded
    values non-decreasing (same clamping as degeneracy peeling).

    Returns ``(order, pn)``: ``order`` lists vertices in non-decreasing
    ``pn`` (the *polarization order*), ``pn[v]`` is the polar-core
    number of ``v``.
    """
    n = graph.num_vertices
    pos_deg = [graph.pos_degree(v) for v in range(n)]
    neg_deg = [graph.neg_degree(v) for v in range(n)]

    def key(v: int) -> int:
        return min(pos_deg[v] + 1, neg_deg[v])

    heap: list[tuple[int, int]] = [(key(v), v) for v in range(n)]
    heapq.heapify(heap)
    removed = [False] * n
    pn = [0] * n
    order: list[int] = []
    current = 0
    while heap:
        value, u = heapq.heappop(heap)
        if removed[u] or value != key(u):
            continue  # stale heap entry
        removed[u] = True
        current = max(current, value)
        pn[u] = current
        order.append(u)
        for v in graph.pos_neighbors(u):
            if not removed[v] and pos_deg[v] + 1 > pn[u]:
                pos_deg[v] -= 1
                heapq.heappush(heap, (key(v), v))
        for v in graph.neg_neighbors(u):
            if not removed[v] and neg_deg[v] > pn[u]:
                neg_deg[v] -= 1
                heapq.heappush(heap, (key(v), v))
    return order, pn


def polarization_order(graph: SignedGraph) -> list[int]:
    """The polarization order ``POrder`` (vertices by non-decreasing
    polar-core number)."""
    order, _pn = polar_core_numbers(graph)
    return order


def polar_core_vertices(graph: SignedGraph, k: int) -> set[int]:
    """The ``k``-polar-core (Definition 3) by direct peeling.

    The maximal subgraph ``g`` with ``min(d+_g(u) + 1, d-_g(u)) >= k``
    for every vertex.  Equals ``{u : pn(u) >= k}``; the equivalence is
    property-tested.
    """
    alive = set(graph.vertices())
    if k <= 0:
        return alive
    pos_deg = {v: graph.pos_degree(v) for v in alive}
    neg_deg = {v: graph.neg_degree(v) for v in alive}

    def violates(v: int) -> bool:
        return min(pos_deg[v] + 1, neg_deg[v]) < k

    queue = deque(v for v in alive if violates(v))
    queued = set(queue)
    while queue:
        v = queue.popleft()
        if v not in alive:
            continue
        alive.discard(v)
        for u in graph.pos_neighbors(v):
            if u in alive:
                pos_deg[u] -= 1
                if u not in queued and violates(u):
                    queue.append(u)
                    queued.add(u)
        for u in graph.neg_neighbors(v):
            if u in alive:
                neg_deg[u] -= 1
                if u not in queued and violates(u):
                    queue.append(u)
                    queued.add(u)
    return alive


def polarization_upper_bound(graph: SignedGraph) -> int:
    """Upper bound on ``beta(G)`` used by PF-BS:
    ``max_v min(d+(v) + 1, d-(v))``."""
    return max(
        (min(graph.pos_degree(v) + 1, graph.neg_degree(v))
         for v in graph.vertices()),
        default=0,
    )
