"""Related-work clique notions (Section VII of the paper).

The paper positions balanced cliques against two other signed-clique
formulations; both are implemented here so the comparison can be made
concrete:

* **k-balanced trusted cliques** (Hao et al. [34]) — cliques whose
  edges are all positive.  As the paper notes, this reduces to the
  classic clique problem on the positive subgraph;
  :func:`maximum_trusted_clique` does exactly that.
* **(alpha, k)-cliques** (Li et al. [31]) — cliques where every member
  has at most ``k`` negative neighbours and at least ``alpha * k``
  positive neighbours *within the clique*.  Structural balance is not
  enforced, so these may contain unbalanced triangles;
  :func:`maximum_alpha_k_clique` is an exact branch-and-bound.

Both return plain vertex sets — these notions have no side split.
"""

from __future__ import annotations

import math

from ..signed.graph import SignedGraph
from ..unsigned.clique import maximum_clique
from ..unsigned.coloring import coloring_upper_bound
from ..unsigned.graph import UnsignedGraph

__all__ = ["maximum_trusted_clique", "maximum_alpha_k_clique",
           "is_alpha_k_clique"]


def maximum_trusted_clique(graph: SignedGraph) -> set[int]:
    """Largest all-positive clique (k-balanced trusted clique [34]).

    Equivalent to maximum clique on the positive subgraph — the
    reduction the paper points out when dismissing [34]'s techniques
    for the balanced-clique problem.
    """
    positive = UnsignedGraph(graph.num_vertices)
    for u, v, sign in graph.edges():
        if sign == 1:
            positive.add_edge(u, v)
    return maximum_clique(positive)


def is_alpha_k_clique(
    graph: SignedGraph,
    vertices: "set[int] | frozenset[int]",
    alpha: float,
    k: int,
) -> bool:
    """Whether ``vertices`` is an (alpha, k)-clique of [31]."""
    members = list(vertices)
    need_pos = math.ceil(alpha * k)
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            if not graph.has_edge(u, v):
                return False
    for u in members:
        neg_inside = len(graph.neg_neighbors(u) & set(members))
        pos_inside = len(graph.pos_neighbors(u) & set(members))
        if neg_inside > k or pos_inside < need_pos:
            return False
    return True


def maximum_alpha_k_clique(
    graph: SignedGraph,
    alpha: float,
    k: int,
) -> set[int]:
    """Exact maximum (alpha, k)-clique via branch-and-bound.

    Within the clique each member may have at most ``k`` negative
    neighbours (checked incrementally — violations only get worse as
    the clique grows) and must have at least ``ceil(alpha * k)``
    positive neighbours (checked on candidates' potential and on the
    final clique).  Pruned with the unsigned colouring bound.  Returns
    the empty set when no non-empty (alpha, k)-clique exists (e.g.
    ``alpha * k`` exceeds every achievable positive degree).
    """
    unsigned = UnsignedGraph.from_signed(graph)
    need_pos = math.ceil(alpha * k)
    best: set[int] = set()

    def qualifies(clique: set[int]) -> bool:
        for u in clique:
            if len(graph.pos_neighbors(u) & clique) < need_pos:
                return False
        return True

    def search(clique: set[int], candidates: set[int]) -> None:
        nonlocal best
        if len(clique) > len(best) and qualifies(clique):
            best = set(clique)
        if not candidates:
            return
        if len(clique) + len(candidates) <= len(best):
            return
        if (len(clique)
                + coloring_upper_bound(unsigned, candidates)
                <= len(best)):
            return
        pool = set(candidates)
        while pool:
            v = min(pool, key=lambda u: len(unsigned.neighbors(u)
                                            & pool))
            # Negative-degree feasibility is monotone: filter the new
            # candidate set to vertices that keep every member (and
            # themselves) within the k-negative budget.
            new_clique = clique | {v}
            new_candidates = set()
            for u in unsigned.neighbors(v) & pool:
                if len(graph.neg_neighbors(u) & new_clique) > k:
                    continue
                new_candidates.add(u)
            feasible = all(
                len(graph.neg_neighbors(u) & new_clique) <= k
                for u in new_clique)
            if feasible:
                search(new_clique, new_candidates)
            pool.discard(v)
            if len(clique) + len(pool) <= len(best):
                return

    vertices = {
        v for v in graph.vertices()
        if graph.pos_degree(v) >= need_pos
    }
    search(set(), vertices)
    return best
