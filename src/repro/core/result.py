"""Result types returned by the search algorithms.

Both types carry a stable JSON wire form (``to_json`` /
``from_json``): the serve layer (``repro.serve``) ships results over
HTTP and caches them by value, so the codec — not ``__repr__`` — is
the compatibility contract.  :data:`RESULT_SCHEMA` versions it; a
future incompatible change bumps the tag rather than silently
re-shaping payloads under deployed clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resilience.budget import Budget, Status
from ..signed.graph import SignedGraph
from .balance import split_sides

__all__ = ["BalancedClique", "EMPTY_RESULT", "SolveResult",
           "RESULT_SCHEMA"]

#: Schema tag stamped into every :meth:`SolveResult.to_json` payload.
RESULT_SCHEMA = "repro.result/1"


def _int_list(value: object, where: str) -> list[int]:
    """Validate a JSON array of vertex ids (bools are not vertices)."""
    if not isinstance(value, list) or any(
            not isinstance(v, int) or isinstance(v, bool)
            for v in value):
        raise ValueError(
            f"{where} must be an array of integer vertex ids, "
            f"got {value!r}")
    return value


@dataclass(frozen=True)
class BalancedClique:
    """A balanced clique with its (canonical) side split.

    ``left`` and ``right`` are frozen vertex sets; ``left`` is the side
    containing the smallest vertex id whenever both sides are non-empty,
    so two equal cliques compare equal regardless of discovery order.
    """

    left: frozenset[int] = field(default_factory=frozenset)
    right: frozenset[int] = field(default_factory=frozenset)

    @classmethod
    def from_sides(
        cls, left: "set[int] | frozenset[int]",
        right: "set[int] | frozenset[int]",
    ) -> "BalancedClique":
        """Build with canonical side ordering."""
        left_f = frozenset(left)
        right_f = frozenset(right)
        if not left_f:
            left_f, right_f = right_f, left_f
        elif right_f and min(right_f) < min(left_f):
            left_f, right_f = right_f, left_f
        return cls(left_f, right_f)

    @classmethod
    def from_vertices(
        cls, graph: SignedGraph, vertices: "set[int] | frozenset[int]"
    ) -> "BalancedClique":
        """Recover the side split of a balanced clique of ``graph``.

        Raises ``ValueError`` if the vertex set is not a balanced clique.
        """
        sides = split_sides(graph, vertices)
        if sides is None:
            raise ValueError(
                f"{sorted(vertices)} is not a balanced clique")
        return cls.from_sides(*sides)

    @property
    def vertices(self) -> frozenset[int]:
        """``C = C_L ∪ C_R``."""
        return self.left | self.right

    @property
    def size(self) -> int:
        """``|C|``."""
        return len(self.left) + len(self.right)

    @property
    def polarization(self) -> int:
        """``min(|C_L|, |C_R|)`` — the largest ``tau`` this clique
        satisfies."""
        return min(len(self.left), len(self.right))

    def satisfies(self, tau: int) -> bool:
        """Whether both sides have at least ``tau`` members."""
        return self.polarization >= tau

    @property
    def is_empty(self) -> bool:
        return not self.left and not self.right

    def to_json(self) -> dict:
        """Plain-data wire form: sorted vertex lists per side."""
        return {"left": sorted(self.left), "right": sorted(self.right)}

    @classmethod
    def from_json(cls, payload: object) -> "BalancedClique":
        """Rebuild from :meth:`to_json` output.

        Raises ``ValueError`` on malformed payloads.  Sides are
        re-canonicalised through :meth:`from_sides`, so a hand-written
        payload with swapped sides decodes to the same value the
        encoder would have produced.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"clique payload must be an object, got {payload!r}")
        unknown = set(payload) - {"left", "right"}
        if unknown:
            raise ValueError(
                f"unknown clique fields: {sorted(unknown)}")
        left = _int_list(payload.get("left", []), "clique.left")
        right = _int_list(payload.get("right", []), "clique.right")
        if set(left) & set(right):
            raise ValueError(
                f"clique sides overlap: {sorted(set(left) & set(right))}")
        return cls.from_sides(set(left), set(right))

    def describe(self, graph: SignedGraph | None = None) -> str:
        """Human-readable summary, using vertex labels when available."""

        def names(side: frozenset[int]) -> str:
            if graph is None:
                return ", ".join(str(v) for v in sorted(side))
            return ", ".join(graph.label(v) for v in sorted(side))

        return (f"|C|={self.size} <{len(self.left)}|{len(self.right)}> "
                f"L=[{names(self.left)}] R=[{names(self.right)}]")


#: Shared sentinel for "no qualifying clique".
EMPTY_RESULT = BalancedClique()


@dataclass(frozen=True)
class SolveResult:
    """An anytime solver outcome: incumbent + status + certified bound.

    A budgeted solve (``--timeout`` / ``--max-nodes``) may stop before
    proving optimality.  ``clique`` is then the best incumbent it
    *did* prove (always a real balanced clique, possibly empty),
    ``status`` says whether the answer is exact, and ``lower_bound``
    is the quantity the incumbent certifies — ``clique.size`` for the
    MBC problems, the last proven ``tau*`` for PF.  ``nodes`` is the
    budget's branch-and-bound node count at capture time.
    """

    clique: BalancedClique
    status: Status = Status.OPTIMAL
    lower_bound: int = 0
    nodes: int = 0

    @property
    def optimal(self) -> bool:
        """Whether the solve ran to completion (answer is exact)."""
        return self.status is Status.OPTIMAL

    @classmethod
    def capture(
        cls,
        clique: BalancedClique,
        budget: "Budget | None",
        lower_bound: "int | None" = None,
    ) -> "SolveResult":
        """Wrap a solver's return against the budget it ran under.

        With no budget the solve was unbounded, hence optimal.
        ``lower_bound`` defaults to ``clique.size`` (the MBC
        certificate); PF callers pass their proven ``tau*``.
        """
        status = Status.OPTIMAL if budget is None else budget.status
        return cls(
            clique=clique,
            status=status,
            lower_bound=(clique.size if lower_bound is None
                         else lower_bound),
            nodes=0 if budget is None else budget.nodes)

    def to_json(self) -> dict:
        """Stable wire form (schema :data:`RESULT_SCHEMA`).

        Everything a client needs to act on an anytime answer: the
        witness clique, whether it is exact, and the certified lower
        bound the witness backs.  ``from_json`` round-trips this
        exactly.
        """
        return {
            "schema": RESULT_SCHEMA,
            "status": self.status.value,
            "lower_bound": self.lower_bound,
            "nodes": self.nodes,
            "clique": self.clique.to_json(),
        }

    @classmethod
    def from_json(cls, payload: object) -> "SolveResult":
        """Rebuild from :meth:`to_json` output.

        Raises ``ValueError`` on malformed payloads — wrong schema
        tag, unknown status, missing or mistyped fields — so a serve
        client can tell a corrupt response from a valid truncated one.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"result payload must be an object, got {payload!r}")
        schema = payload.get("schema")
        if schema != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported result schema {schema!r} "
                f"(expected {RESULT_SCHEMA!r})")
        unknown = set(payload) - {
            "schema", "status", "lower_bound", "nodes", "clique"}
        if unknown:
            raise ValueError(
                f"unknown result fields: {sorted(unknown)}")
        try:
            status = Status(payload.get("status"))
        except ValueError:
            raise ValueError(
                f"unknown result status {payload.get('status')!r}; "
                f"expected one of "
                f"{sorted(s.value for s in Status)}") from None
        lower_bound = payload.get("lower_bound")
        nodes = payload.get("nodes", 0)
        for name, value in (("lower_bound", lower_bound),
                            ("nodes", nodes)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise ValueError(
                    f"result.{name} must be a non-negative integer, "
                    f"got {value!r}")
        assert isinstance(lower_bound, int)
        assert isinstance(nodes, int)
        clique = BalancedClique.from_json(payload.get("clique", {}))
        return cls(clique=clique, status=status,
                   lower_bound=lower_bound, nodes=nodes)
