"""Result types returned by the search algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resilience.budget import Budget, Status
from ..signed.graph import SignedGraph
from .balance import split_sides

__all__ = ["BalancedClique", "EMPTY_RESULT", "SolveResult"]


@dataclass(frozen=True)
class BalancedClique:
    """A balanced clique with its (canonical) side split.

    ``left`` and ``right`` are frozen vertex sets; ``left`` is the side
    containing the smallest vertex id whenever both sides are non-empty,
    so two equal cliques compare equal regardless of discovery order.
    """

    left: frozenset[int] = field(default_factory=frozenset)
    right: frozenset[int] = field(default_factory=frozenset)

    @classmethod
    def from_sides(
        cls, left: "set[int] | frozenset[int]",
        right: "set[int] | frozenset[int]",
    ) -> "BalancedClique":
        """Build with canonical side ordering."""
        left_f = frozenset(left)
        right_f = frozenset(right)
        if not left_f:
            left_f, right_f = right_f, left_f
        elif right_f and min(right_f) < min(left_f):
            left_f, right_f = right_f, left_f
        return cls(left_f, right_f)

    @classmethod
    def from_vertices(
        cls, graph: SignedGraph, vertices: "set[int] | frozenset[int]"
    ) -> "BalancedClique":
        """Recover the side split of a balanced clique of ``graph``.

        Raises ``ValueError`` if the vertex set is not a balanced clique.
        """
        sides = split_sides(graph, vertices)
        if sides is None:
            raise ValueError(
                f"{sorted(vertices)} is not a balanced clique")
        return cls.from_sides(*sides)

    @property
    def vertices(self) -> frozenset[int]:
        """``C = C_L ∪ C_R``."""
        return self.left | self.right

    @property
    def size(self) -> int:
        """``|C|``."""
        return len(self.left) + len(self.right)

    @property
    def polarization(self) -> int:
        """``min(|C_L|, |C_R|)`` — the largest ``tau`` this clique
        satisfies."""
        return min(len(self.left), len(self.right))

    def satisfies(self, tau: int) -> bool:
        """Whether both sides have at least ``tau`` members."""
        return self.polarization >= tau

    @property
    def is_empty(self) -> bool:
        return not self.left and not self.right

    def describe(self, graph: SignedGraph | None = None) -> str:
        """Human-readable summary, using vertex labels when available."""

        def names(side: frozenset[int]) -> str:
            if graph is None:
                return ", ".join(str(v) for v in sorted(side))
            return ", ".join(graph.label(v) for v in sorted(side))

        return (f"|C|={self.size} <{len(self.left)}|{len(self.right)}> "
                f"L=[{names(self.left)}] R=[{names(self.right)}]")


#: Shared sentinel for "no qualifying clique".
EMPTY_RESULT = BalancedClique()


@dataclass(frozen=True)
class SolveResult:
    """An anytime solver outcome: incumbent + status + certified bound.

    A budgeted solve (``--timeout`` / ``--max-nodes``) may stop before
    proving optimality.  ``clique`` is then the best incumbent it
    *did* prove (always a real balanced clique, possibly empty),
    ``status`` says whether the answer is exact, and ``lower_bound``
    is the quantity the incumbent certifies — ``clique.size`` for the
    MBC problems, the last proven ``tau*`` for PF.  ``nodes`` is the
    budget's branch-and-bound node count at capture time.
    """

    clique: BalancedClique
    status: Status = Status.OPTIMAL
    lower_bound: int = 0
    nodes: int = 0

    @property
    def optimal(self) -> bool:
        """Whether the solve ran to completion (answer is exact)."""
        return self.status is Status.OPTIMAL

    @classmethod
    def capture(
        cls,
        clique: BalancedClique,
        budget: "Budget | None",
        lower_bound: "int | None" = None,
    ) -> "SolveResult":
        """Wrap a solver's return against the budget it ran under.

        With no budget the solve was unbounded, hence optimal.
        ``lower_bound`` defaults to ``clique.size`` (the MBC
        certificate); PF callers pass their proven ``tau*``.
        """
        status = Status.OPTIMAL if budget is None else budget.status
        return cls(
            clique=clique,
            status=status,
            lower_bound=(clique.size if lower_bound is None
                         else lower_bound),
            nodes=0 if budget is None else budget.nodes)
