"""Instrumentation for the search algorithms (Table IV of the paper).

Table IV reports, per dataset and algorithm (MBC*, PF*):

* ``Heu`` — size (resp. lower bound) found by the heuristic;
* ``#MDC`` / ``#DCC`` — how many branch-and-bound instances were
  actually launched (most ego-networks are pruned outright);
* ``SR1`` — average edge-reduction ratio of the dichromatic
  transformation, ``1 - |E(g_u)| / |E(G_u)|``;
* ``SR2`` — average edge-reduction ratio after the additional core
  reduction, ``1 - |E(g)| / |E(G_u)|``.

:class:`SearchStats` accumulates these counters; the algorithms accept
an optional instance so instrumentation has zero cost when unused.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SearchStats"]

# NOTE: instances of this class cross process boundaries — the parallel
# fan-out workers return one per chunk — so it must stay picklable
# (plain dataclass fields only).


@dataclass
class SearchStats:
    """Counters accumulated during one algorithm run."""

    #: Size of the initial heuristic solution (``Heu`` column); for PF*
    #: this is the heuristic lower bound on ``beta(G)``.
    heuristic_size: int = 0
    #: Branch-and-bound instances actually launched (``#MDC``/``#DCC``).
    instances: int = 0
    #: Vertices whose ego-network was examined at all.
    vertices_examined: int = 0
    #: Total recursion nodes across all instances.
    nodes: int = 0
    #: Per-instance ``1 - |E(g_u)| / |E(G_u)|`` samples.
    sr1_samples: list[float] = field(default_factory=list)
    #: Per-instance ``1 - |E(g)| / |E(G_u)|`` samples.
    sr2_samples: list[float] = field(default_factory=list)

    def record_reduction(
        self,
        ego_edges: int,
        dichromatic_edges: int,
        reduced_edges: int,
    ) -> None:
        """Record the two-stage size reduction for one instance.

        Instances whose ego-network has no edges are skipped (the ratio
        is undefined), mirroring the paper's per-instance averaging.
        """
        if ego_edges <= 0:
            return
        self.sr1_samples.append(1.0 - dichromatic_edges / ego_edges)
        self.sr2_samples.append(1.0 - reduced_edges / ego_edges)

    @property
    def sr1(self) -> float | None:
        """Average stage-1 size-reduction ratio (``None`` if no samples,
        printed as '-' in Table IV)."""
        if not self.sr1_samples:
            return None
        return sum(self.sr1_samples) / len(self.sr1_samples)

    @property
    def sr2(self) -> float | None:
        """Average overall size-reduction ratio."""
        if not self.sr2_samples:
            return None
        return sum(self.sr2_samples) / len(self.sr2_samples)

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Fold another accumulator's counters into this one.

        The single accumulation routine shared by every consumer: gMBC*
        folds per-``tau`` runs together, and the parallel fan-out engine
        folds each worker's per-chunk :class:`SearchStats` into the
        caller's instance.  Additive counters and the SR sample lists
        accumulate; ``heuristic_size`` keeps the maximum, since each
        side reports the same quantity (the best initial bound seen)
        rather than a partial sum.  Returns ``self`` for chaining.
        """
        self.heuristic_size = max(self.heuristic_size,
                                  other.heuristic_size)
        self.instances += other.instances
        self.vertices_examined += other.vertices_examined
        self.nodes += other.nodes
        self.sr1_samples.extend(other.sr1_samples)
        self.sr2_samples.extend(other.sr2_samples)
        return self

    @classmethod
    def merged(cls, runs: "list[SearchStats]") -> "SearchStats":
        """One accumulator holding the fold of ``runs`` (used by the
        parallel aggregator to combine per-worker reports)."""
        total = cls()
        for run in runs:
            total.merge(run)
        return total
