"""Dataset stand-ins: Table I registry and labelled case studies."""

from .registry import DATASETS, DatasetSpec, dataset_names, load, load_spec
from .casestudies import ppi_case_study, reddit_case_study, \
    wordnet_case_study

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load",
    "load_spec",
    "reddit_case_study",
    "wordnet_case_study",
    "ppi_case_study",
]
