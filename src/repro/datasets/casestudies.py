"""Named toy graphs for the case studies (Tables II and III).

The paper's case studies run on the real Reddit and AdjWordNet graphs
and print human-readable members.  These builders construct small
labelled analogues with the same qualitative structure:

* :func:`reddit_case_study` — subreddits exchanging sentiment, with a
  planted conflict between a content cluster and a drama cluster plus
  background chatter (Table II's shape: videos/gaming/... vs
  subredditdrama/...);
* :func:`wordnet_case_study` — adjectives with synonym (positive) and
  antonym (negative) edges, planting the good-vs-bad clique of
  Table III;
* :func:`ppi_case_study` — a signed protein-protein interaction toy
  network (activation/inhibition) for the protein-complex example the
  introduction motivates.
"""

from __future__ import annotations

import random

from ..signed.generators import plant_balanced_clique
from ..signed.graph import NEGATIVE, POSITIVE, SignedGraph

__all__ = ["reddit_case_study", "wordnet_case_study", "ppi_case_study"]

_SUBREDDITS = [
    # The planted conflict clique (Table II).
    "videos", "gaming", "mma", "thepopcornstand", "canada",
    "subredditdrama", "trueredditdrama", "drama",
    # Background subreddits.
    "pics", "funny", "askreddit", "worldnews", "movies", "music",
    "science", "books", "sports", "food", "history", "art",
    "technology", "space", "fitness", "travel", "diy", "gardening",
    "photography", "cars", "anime", "programming",
]

_GOOD_WORDS = [
    "good", "better", "best", "wonderful", "excellent", "great",
    "superior", "awesome", "brilliant", "fabulous", "fantastic",
    "outstanding", "perfect", "superb", "splendid", "terrific",
]

_BAD_WORDS = [
    "bad", "worse", "worst", "terrible", "poor", "awful", "inferior",
    "horrendous", "weak", "dreadful", "despicable", "disastrous",
    "horrible", "deplorable", "abominable", "horrific",
]

_NEUTRAL_WORDS = [
    "big", "large", "huge", "small", "tiny", "fast", "quick", "slow",
    "bright", "dark", "warm", "cold", "loud", "quiet", "new", "old",
    "soft", "hard", "light", "heavy",
]


def reddit_case_study(seed: int = 7) -> SignedGraph:
    """Labelled subreddit-sentiment graph with a planted conflict.

    The content cluster (videos, gaming, mma, thepopcornstand, canada)
    shares positive sentiment internally and negative sentiment towards
    the drama cluster (subredditdrama, trueredditdrama, drama), which
    is itself internally positive — the maximum balanced clique for
    ``tau = 3``.
    """
    rng = random.Random(seed)
    graph = SignedGraph(len(_SUBREDDITS), labels=_SUBREDDITS)
    content = list(range(5))
    drama = list(range(5, 8))
    plant_balanced_clique(graph, content, drama)
    background = list(range(8, len(_SUBREDDITS)))
    # Background chatter: mostly-positive random sentiment.
    for v in background:
        for u in rng.sample(range(len(_SUBREDDITS)), 6):
            if u == v or graph.has_edge(u, v):
                continue
            sign = NEGATIVE if rng.random() < 0.2 else POSITIVE
            graph.add_edge(u, v, sign)
    return graph


def wordnet_case_study(seed: int = 11) -> SignedGraph:
    """Labelled synonym/antonym adjective graph (Table III's shape).

    Good-cluster words are pairwise synonyms, bad-cluster words are
    pairwise synonyms, and every good/bad pair is antonymous — a
    balanced clique with sides of 16 and 16.  Neutral words attach with
    sparse random relations.
    """
    words = _GOOD_WORDS + _BAD_WORDS + _NEUTRAL_WORDS
    rng = random.Random(seed)
    graph = SignedGraph(len(words), labels=words)
    good = list(range(len(_GOOD_WORDS)))
    bad = list(range(len(_GOOD_WORDS), len(_GOOD_WORDS) + len(_BAD_WORDS)))
    plant_balanced_clique(graph, good, bad)
    neutral_start = len(_GOOD_WORDS) + len(_BAD_WORDS)
    for v in range(neutral_start, len(words)):
        for u in rng.sample(range(len(words)), 4):
            if u == v or graph.has_edge(u, v):
                continue
            sign = NEGATIVE if rng.random() < 0.3 else POSITIVE
            graph.add_edge(u, v, sign)
    return graph


def ppi_case_study(
    complexes: int = 3,
    proteins_per_complex: int = 5,
    seed: int = 13,
) -> SignedGraph:
    """Signed PPI toy network: activation within complexes, inhibition
    between antagonistic complex pairs.

    Complex ``2k`` and complex ``2k+1`` are antagonistic (dense mutual
    inhibition), modelling the activation-inhibition structure that
    motivates balanced-clique-based complex detection [5], [19].
    """
    n = complexes * 2 * proteins_per_complex
    labels = [
        f"P{group}_{index}"
        for group in range(complexes * 2)
        for index in range(proteins_per_complex)
    ]
    rng = random.Random(seed)
    graph = SignedGraph(n, labels=labels)

    def members(group: int) -> list[int]:
        start = group * proteins_per_complex
        return list(range(start, start + proteins_per_complex))

    for pair in range(complexes):
        plant_balanced_clique(
            graph, members(2 * pair), members(2 * pair + 1))
    # Sparse cross-talk between unrelated complexes.
    for _ in range(n):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or graph.has_edge(u, v):
            continue
        sign = NEGATIVE if rng.random() < 0.4 else POSITIVE
        graph.add_edge(u, v, sign)
    return graph
