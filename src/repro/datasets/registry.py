"""Deterministic stand-ins for the paper's 14 evaluation datasets.

The paper evaluates on 12 real graphs (SNAP / KONECT / authors'
preprocessing) plus two SRN-generated synthetic graphs (Table I).  The
real graphs cannot be bundled offline, so every dataset is replaced by
a *stand-in*: a seeded synthetic graph preserving the properties the
algorithms are sensitive to —

* the **negative-edge ratio** of Table I,
* a **heavy-tailed degree distribution** (Chung–Lu background; the
  SN1/SN2 stand-ins use the SRN community generator instead, like the
  paper),
* a **planted polarized clique** whose smaller side pins ``beta(G)``
  and whose size pins the `|C*|` landscape, and
* a **planted skewed clique** (one side nearly empty) reproducing the
  Table V contrast between the well-balanced ``C^beta`` and the highly
  skewed ``C^0``.

Vertex/edge counts are scaled down by roughly 10-100x so the
*exponential baselines* (MBC, PF-E) terminate in CPython; all paper
claims under reproduction are about ratios between algorithms on the
same instance, which survive this scaling.

Use :func:`load` / :func:`load_spec`; generation is cached per process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from ..signed.generators import chung_lu_signed_graph, \
    plant_balanced_clique, srn_community_graph
from ..signed.graph import SignedGraph

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load", "load_spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one stand-in dataset."""

    #: Dataset name as in Table I (lower-cased).
    name: str
    #: Table I category (Trade, Social, Rating, ...).
    category: str
    #: Stand-in vertex count at scale 1.0.
    n: int
    #: Stand-in edge count (background, before planting) at scale 1.0.
    m: int
    #: Target negative-edge ratio of the background.
    neg_ratio: float
    #: Side sizes of the planted polarized clique ``(smaller, larger)``;
    #: the smaller side is the intended ``beta(G)`` anchor.
    polarized: tuple[int, int]
    #: Side sizes of the planted skewed clique, or ``None``.
    skewed: tuple[int, int] | None
    #: Side sizes of an intermediate planted clique, or ``None``.
    #: Sits between the skewed and the fully polarized clique in the
    #: tau-profile so Table V shows more than two distinct maxima.
    mid: tuple[int, int] | None = None
    #: Dense random-sign noise blocks ``(count, size, density)``.
    #: These are the instance-hardness driver: a dense block with
    #: coin-flip signs holds an enormous number of small balanced
    #: cliques, which blows up the size-bound-only baseline (MBC) while
    #: the dichromatic transformation + colouring bound of MBC* prunes
    #: it cheaply — the dynamic behind Figures 6-8.
    noise_blocks: tuple[int, int, float] | None = None
    #: Noise-block flavour: ``'random'`` (coin-flip signs; balanced
    #: cliques inside stay tiny) or ``'polarized'`` (two near-balanced
    #: camps with ~12% flipped signs; the conflict-removed view of such
    #: a block is dense but two-sided, so its colouring bound is about
    #: the larger camp — far below the planted ``|C*|`` — and MBC*
    #: discards it instantly while size-bound-only search churns).
    noise_kind: str = "random"
    #: Background family: ``'chung_lu'`` or ``'srn'``.
    family: str = "chung_lu"
    #: RNG seed.
    seed: int = 0
    #: Paper-reported reference values (for EXPERIMENTS.md context):
    #: (n, m, neg_ratio, |C*| at tau=3, beta).
    paper_reference: tuple[int, int, float, int, int] = (0, 0, 0.0, 0, 0)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "bitcoin", "Trade", 600, 2100, 0.15,
            polarized=(5, 6), skewed=(1, 12), noise_blocks=(8, 22, 0.8), mid=(2, 10), seed=101,
            paper_reference=(5881, 21492, 0.15, 11, 5)),
        DatasetSpec(
            "adjwordnet", "Language", 800, 3900, 0.32,
            polarized=(14, 16), skewed=None, noise_blocks=(12, 24, 0.8), seed=102,
            paper_reference=(16259, 76845, 0.32, 60, 28)),
        DatasetSpec(
            "reddit", "Social", 1200, 5000, 0.08,
            polarized=(3, 5), skewed=(0, 10), noise_blocks=(14, 20, 0.7), mid=(2, 9), seed=103,
            paper_reference=(54075, 220151, 0.08, 8, 3)),
        DatasetSpec(
            "referendum", "Political", 500, 6000, 0.05,
            polarized=(5, 12), skewed=(0, 20), noise_blocks=(12, 24, 0.8), mid=(2, 18), seed=104,
            paper_reference=(10884, 251406, 0.05, 19, 5)),
        DatasetSpec(
            "epinions", "Social", 2000, 11000, 0.17,
            polarized=(6, 9), skewed=(0, 28), noise_blocks=(18, 24, 0.8), mid=(2, 20), seed=105,
            paper_reference=(131828, 711210, 0.17, 15, 6)),
        DatasetSpec(
            "wikiconflict", "Editing", 1800, 16000, 0.63,
            polarized=(3, 3), skewed=(1, 9), noise_blocks=(16, 20, 0.75), mid=(2, 8), seed=106,
            paper_reference=(116717, 2026646, 0.63, 6, 3)),
        DatasetSpec(
            "amazon", "Rating", 2200, 18000, 0.11,
            polarized=(7, 15), skewed=(0, 26), noise_blocks=(22, 24, 0.8), mid=(2, 21), seed=107,
            paper_reference=(176816, 2685570, 0.11, 29, 7)),
        DatasetSpec(
            "bookcross", "Rating", 900, 22000, 0.07,
            polarized=(24, 30), skewed=(1, 60), noise_blocks=(24, 26, 0.8), mid=(12, 45), seed=108,
            paper_reference=(63535, 3890104, 0.07, 550, 118)),
        DatasetSpec(
            "dblp", "Coauthor", 3000, 26000, 0.72,
            polarized=(12, 20), skewed=(1, 40), noise_blocks=(28, 26, 0.8), mid=(6, 30), seed=109,
            paper_reference=(2387365, 11915023, 0.72, 73, 24)),
        DatasetSpec(
            "douban", "Social", 2500, 26000, 0.25,
            polarized=(14, 20), skewed=(0, 42), noise_blocks=(28, 26, 0.8), mid=(8, 30), seed=110,
            paper_reference=(1588455, 18709948, 0.25, 116, 43)),
        DatasetSpec(
            "tripadvisor", "Rating", 1500, 26000, 0.14,
            polarized=(30, 40), skewed=(5, 90), noise_blocks=(28, 26, 0.8), mid=(10, 70), seed=111,
            paper_reference=(145315, 20569277, 0.14, 1916, 201)),
        DatasetSpec(
            "yahoosong", "Rating", 2500, 28000, 0.18,
            polarized=(10, 16), skewed=(0, 44), noise_blocks=(30, 26, 0.8), mid=(5, 25), seed=112,
            paper_reference=(1000990, 30139524, 0.18, 127, 21)),
        DatasetSpec(
            "sn1", "Synthetic", 2400, 30000, 0.41,
            polarized=(5, 8), skewed=(0, 16), family="srn", noise_blocks=(24, 24, 0.8), mid=(2, 12), seed=113,
            paper_reference=(2000000, 50154048, 0.41, 13, 5)),
        DatasetSpec(
            "sn2", "Synthetic", 2400, 38000, 0.39,
            polarized=(7, 12), skewed=(0, 20), family="srn", noise_blocks=(28, 26, 0.8), mid=(2, 18), seed=114,
            paper_reference=(2000000, 111573268, 0.39, 19, 7)),
    ]
}


def dataset_names() -> list[str]:
    """All stand-in names in Table I order."""
    return list(DATASETS)


def load(name: str, scale: float = 1.0) -> SignedGraph:
    """Load (generate) a stand-in dataset by name.

    ``scale`` shrinks both the background (vertices/edges) and the
    planted cliques, for quick smoke runs.  Values above 1.0 grow the
    background only.
    """
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}")
    return _generate(key, scale)


def load_spec(name: str) -> DatasetSpec:
    """The spec of a stand-in (metadata only, no generation)."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}")
    return DATASETS[key]


@lru_cache(maxsize=32)
def _generate(name: str, scale: float) -> SignedGraph:
    spec = DATASETS[name]
    n = max(int(spec.n * scale), 20)
    m = min(max(int(spec.m * scale), 40), n * (n - 1) // 2)
    # Noise blocks use coin-flip signs (50% negative), which would drag
    # the overall negative ratio away from the Table I target on the
    # smaller datasets; compensate in the background sign mix.
    neg_ratio = spec.neg_ratio
    if spec.noise_blocks is not None:
        count, size, density = spec.noise_blocks
        block_edges = count * size * (size - 1) // 2 * density
        block_neg = 0.5 if spec.noise_kind == "random" else 0.12
        wanted = spec.neg_ratio * (m + block_edges)
        neg_ratio = min(max((wanted - block_neg * block_edges) / m, 0.0),
                        1.0)
    if spec.family == "srn":
        communities = 6
        # Pick p_in / p_out to land near the requested m and ratio.
        pairs_in = n * (n / communities - 1) / 2
        pairs_out = n * n * (communities - 1) / (2 * communities)
        p_in = min((1 - neg_ratio) * m / max(pairs_in, 1), 0.9)
        p_out = min(neg_ratio * m / max(pairs_out, 1), 0.9)
        graph = srn_community_graph(
            n, communities, p_in=p_in, p_out=p_out,
            noise=0.05, seed=spec.seed)
    else:
        graph = chung_lu_signed_graph(
            n, m, neg_ratio=neg_ratio, exponent=2.3, seed=spec.seed)

    def scaled_side(side: int) -> int:
        if scale >= 1.0:
            return side
        return max(int(round(side * scale)), 2)

    cursor = 0
    left_size = scaled_side(spec.polarized[0])
    right_size = scaled_side(spec.polarized[1])
    left = range(cursor, cursor + left_size)
    cursor += left_size
    right = range(cursor, cursor + right_size)
    cursor += right_size
    plant_balanced_clique(graph, list(left), list(right))

    for extra in (spec.skewed, spec.mid):
        if extra is None:
            continue
        extra_left = scaled_side(extra[0]) if extra[0] else 0
        extra_right = scaled_side(extra[1])
        left2 = range(cursor, cursor + extra_left)
        cursor += extra_left
        right2 = range(cursor, cursor + extra_right)
        cursor += extra_right
        plant_balanced_clique(graph, list(left2), list(right2))

    if spec.noise_blocks is not None and cursor < n - 8:
        count, size, density = spec.noise_blocks
        if scale < 1.0:
            count = max(int(round(count * scale)), 1)
            size = max(int(round(size * scale)), 6)
        rng = random.Random(spec.seed + 9999)
        pool = range(cursor, n)
        for _block in range(count):
            members = rng.sample(pool, min(size, len(pool)))
            if len(members) < 2:
                break
            _plant_noise_block(graph, members, density, spec.noise_kind,
                               rng)
    return graph


def _plant_noise_block(
    graph: SignedGraph,
    members: list[int],
    density: float,
    kind: str,
    rng: random.Random,
) -> None:
    """Overlay one dense noise block (instance-hardness driver).

    ``kind='random'`` flips a coin per edge sign; ``kind='polarized'``
    splits the block into two camps with the balanced sign pattern and
    flips ~12% of the signs, producing many overlapping medium balanced
    cliques without a large one.
    """
    half = len(members) // 2
    camp = {v: (i < half) for i, v in enumerate(members)}
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            if rng.random() >= density:
                continue
            if kind == "polarized":
                sign = 1 if camp[u] == camp[v] else -1
                if rng.random() < 0.12:
                    sign = -sign
            else:
                sign = 1 if rng.random() < 0.5 else -1
            current = graph.sign(u, v)
            if current == sign:
                continue
            if current is not None:
                graph.remove_edge(u, v)
            graph.add_edge(u, v, sign)
