"""Dichromatic substrate: the paper's ego-network transformation plus
the MDC (maximum) and DCC (feasibility) branch-and-bound engines."""

from .graph import DichromaticGraph
from .build import build_dichromatic_network, ego_network_edge_count
from .cores import bicore_active, coloring_upper_bound_active, k_core_active
from .mdc import solve_mdc
from .dcc import dichromatic_clique_check, dichromatic_clique_witness

__all__ = [
    "DichromaticGraph",
    "build_dichromatic_network",
    "ego_network_edge_count",
    "bicore_active",
    "coloring_upper_bound_active",
    "k_core_active",
    "solve_mdc",
    "dichromatic_clique_check",
    "dichromatic_clique_witness",
]
