"""Ego-network extraction and the dichromatic transformation.

This is the paper's central graph-reduction technique (Section III-B).
For a vertex ``u`` of the signed graph ``G`` (optionally restricted to a
set of *allowed* neighbours, e.g. those ranked higher in the degeneracy
ordering):

1. the **ego-network** ``G_u`` is the signed subgraph induced by ``u``'s
   (allowed) neighbours;
2. the **dichromatic network** ``g_u`` labels ``u``'s positive
   neighbours L and negative neighbours R, drops all *conflicting
   edges* —

   * negative edges between two L-vertices,
   * negative edges between two R-vertices,
   * positive edges between an L-vertex and an R-vertex —

   and finally discards the signs.

Following the paper's implementation note, ``u`` itself is *excluded*
from the returned network: ``u`` is adjacent to every remaining vertex
and none of its incident edges can be conflicting, so including it only
inflates every degree by one.  Callers account for ``u`` by lowering the
L-side threshold by one.

Every clique of ``g_u`` plus ``u`` is a balanced clique of ``G``
(soundness), and every balanced clique containing ``u`` survives the
transformation (completeness) — the two directions of Theorem 2, both
covered by property tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Container

from ..kernels import npmask
from ..kernels.bitset import bits_of
from ..signed.graph import SignedGraph
from .graph import DichromaticGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernels.npmask import Matrix, Row

__all__ = [
    "build_dichromatic_network",
    "build_dichromatic_network_bits",
    "dichromatic_network_from_masks",
    "build_dichromatic_network_matrix",
    "dichromatic_network_from_matrix",
    "ego_network_edge_count",
    "ego_network_edge_count_bits",
    "ego_edge_count_from_masks",
    "ego_edge_count_from_matrix",
]


def build_dichromatic_network(
    graph: SignedGraph,
    u: int,
    allowed: Container[int] | None = None,
) -> DichromaticGraph:
    """Build the dichromatic network ``g_u`` (without ``u`` itself).

    Parameters
    ----------
    graph:
        The signed graph ``G``.
    u:
        The anchor vertex assumed to be in the clique (on the L side).
    allowed:
        If given, only neighbours contained in ``allowed`` participate
        (MBC* passes the set of higher-ranked vertices).

    Returns
    -------
    DichromaticGraph
        Local ids cover ``u``'s retained neighbours; ``origin`` maps
        back to ``G``'s vertex ids; ``is_left[v]`` is True for positive
        neighbours of ``u``.
    """
    if allowed is None:
        left = sorted(graph.pos_neighbors(u))
        right = sorted(graph.neg_neighbors(u))
    else:
        left = sorted(v for v in graph.pos_neighbors(u) if v in allowed)
        right = sorted(v for v in graph.neg_neighbors(u) if v in allowed)
    origin = left + right
    is_left = [True] * len(left) + [False] * len(right)
    network = DichromaticGraph(is_left, origin)
    local = {orig: idx for idx, orig in enumerate(origin)}

    for idx, orig in enumerate(origin):
        left_vertex = network.is_left[idx]
        # Keep positive edges only towards same-side vertices...
        for other in graph.pos_neighbors(orig):
            jdx = local.get(other)
            if jdx is None or jdx <= idx:
                continue
            if network.is_left[jdx] == left_vertex:
                network.add_edge(idx, jdx)
        # ...and negative edges only towards opposite-side vertices.
        for other in graph.neg_neighbors(orig):
            jdx = local.get(other)
            if jdx is None or jdx <= idx:
                continue
            if network.is_left[jdx] != left_vertex:
                network.add_edge(idx, jdx)
    return network


def build_dichromatic_network_bits(
    graph: SignedGraph,
    u: int,
    allowed_mask: int | None = None,
) -> DichromaticGraph:
    """Bitset fast path of :func:`build_dichromatic_network`.

    Works entirely on the signed graph's cached global adjacency
    bitmasks: the sign/side filtering that the set builder performs with
    one dict probe per *candidate* edge collapses into two ``&`` ops per
    member, and only the retained edges are translated into local ids.
    The returned network is mask-backed
    (:meth:`DichromaticGraph.from_masks`) so the kernels reuse the masks
    without a rebuild.

    ``allowed_mask`` is the bitmask analogue of the set builder's
    ``allowed`` container (MBC*/PF* pass the higher-ranked vertex set).
    """
    return dichromatic_network_from_masks(
        graph.pos_adjacency_bits(), graph.neg_adjacency_bits(),
        u, allowed_mask)


def dichromatic_network_from_masks(
    pos_bits: list[int],
    neg_bits: list[int],
    u: int,
    allowed_mask: int | None = None,
) -> DichromaticGraph:
    """:func:`build_dichromatic_network_bits` over raw mask arrays.

    The parallel fan-out workers hold the reduced graph only as the two
    adjacency-mask lists shipped at pool start (no :class:`SignedGraph`
    object exists in the worker), so the builder's real implementation
    lives at this level.
    """
    pos_u = pos_bits[u]
    neg_u = neg_bits[u]
    if allowed_mask is not None:
        pos_u &= allowed_mask
        neg_u &= allowed_mask
    left = bits_of(pos_u)
    right = bits_of(neg_u)
    origin = left + right
    is_left = [True] * len(left) + [False] * len(right)
    local = {orig: idx for idx, orig in enumerate(origin)}
    boundary = len(left)

    # Positive edges survive towards same-side vertices, negative edges
    # towards opposite-side vertices.  Each retained edge is translated
    # exactly once: same-side pairs from their lower-global-id endpoint
    # (the remainder after the ``>> (orig + 1)`` shift), cross pairs
    # from their L endpoint.
    adjacency = [0] * len(origin)
    for idx, orig in enumerate(origin):
        bit = 1 << idx
        if idx < boundary:
            same_hi = (pos_bits[orig] & pos_u) >> (orig + 1)
            cross = neg_bits[orig] & neg_u
        else:
            same_hi = (pos_bits[orig] & neg_u) >> (orig + 1)
            cross = 0
        while same_hi:
            low = same_hi & -same_hi
            same_hi ^= low
            jdx = local[low.bit_length() + orig]
            adjacency[idx] |= 1 << jdx
            adjacency[jdx] |= bit
        while cross:
            low = cross & -cross
            cross ^= low
            jdx = local[low.bit_length() - 1]
            adjacency[idx] |= 1 << jdx
            adjacency[jdx] |= bit
    return DichromaticGraph.from_masks(is_left, origin, adjacency)


def build_dichromatic_network_matrix(
    graph: SignedGraph,
    u: int,
    allowed_row: "Row | None" = None,
) -> DichromaticGraph:
    """Matrix fast path of :func:`build_dichromatic_network`.

    The ``engine="numpy"`` analogue of
    :func:`build_dichromatic_network_bits`: side filtering is two
    vectorised ANDs against ``u``'s adjacency rows, and the per-edge
    translation loop collapses into one gather/pack pass
    (:func:`repro.kernels.npmask.dichromatic_adjacency`).  The returned
    network is matrix-backed (:meth:`DichromaticGraph.from_matrix`).
    """
    return dichromatic_network_from_matrix(
        graph.pos_adjacency_matrix(), graph.neg_adjacency_matrix(),
        u, allowed_row)


def dichromatic_network_from_matrix(
    pos_mat: "Matrix",
    neg_mat: "Matrix",
    u: int,
    allowed_row: "Row | None" = None,
) -> DichromaticGraph:
    """:func:`build_dichromatic_network_matrix` over raw mask matrices
    (the representation the numpy-engine parallel workers hold)."""
    n = pos_mat.shape[0]
    pos_u = pos_mat[u]
    neg_u = neg_mat[u]
    if allowed_row is not None:
        pos_u = pos_u & allowed_row
        neg_u = neg_u & allowed_row
    left = npmask.row_indices(pos_u, n).tolist()
    right = npmask.row_indices(neg_u, n).tolist()
    origin = left + right
    is_left = [True] * len(left) + [False] * len(right)
    adjacency = npmask.dichromatic_adjacency(
        pos_mat, neg_mat, origin, len(left), n)
    return DichromaticGraph.from_matrix(is_left, origin, adjacency)


def ego_network_edge_count(
    graph: SignedGraph,
    u: int,
    allowed: Container[int] | None = None,
) -> int:
    """``|E(G_u)|``: edges (any sign) among ``u``'s retained neighbours.

    Excludes ``u``'s own incident edges, matching
    :func:`build_dichromatic_network`; used for the SR1/SR2 reduction
    statistics of Table IV.
    """
    if allowed is None:
        members = graph.pos_neighbors(u) | graph.neg_neighbors(u)
    else:
        members = {v for v in graph.pos_neighbors(u) if v in allowed}
        members |= {v for v in graph.neg_neighbors(u) if v in allowed}
    count = 0
    for v in members:
        count += sum(1 for w in graph.pos_neighbors(v) if w in members)
        count += sum(1 for w in graph.neg_neighbors(v) if w in members)
    return count // 2


def ego_network_edge_count_bits(
    graph: SignedGraph,
    u: int,
    allowed_mask: int | None = None,
) -> int:
    """Bitset fast path of :func:`ego_network_edge_count`."""
    return ego_edge_count_from_masks(
        graph.pos_adjacency_bits(), graph.neg_adjacency_bits(),
        u, allowed_mask)


def ego_edge_count_from_masks(
    pos_bits: list[int],
    neg_bits: list[int],
    u: int,
    allowed_mask: int | None = None,
) -> int:
    """:func:`ego_network_edge_count_bits` over raw mask arrays (the
    representation the parallel workers hold)."""
    members = pos_bits[u] | neg_bits[u]
    if allowed_mask is not None:
        members &= allowed_mask
    count = 0
    rest = members
    while rest:
        low = rest & -rest
        rest ^= low
        v = low.bit_length() - 1
        count += ((pos_bits[v] | neg_bits[v]) & members).bit_count()
    return count // 2


def ego_edge_count_from_matrix(
    pos_mat: "Matrix",
    neg_mat: "Matrix",
    u: int,
    allowed_row: "Row | None" = None,
) -> int:
    """:func:`ego_edge_count_from_masks` over mask matrices.

    Positive and negative edge sets are disjoint, so the two induced
    counts sum to ``|E(G_u)|``.
    """
    members = pos_mat[u] | neg_mat[u]
    if allowed_row is not None:
        members = members & allowed_row
    return (npmask.active_edge_count(pos_mat, members)
            + npmask.active_edge_count(neg_mat, members))
