"""Core reductions on dichromatic graphs.

Two reductions appear in the paper:

* the plain **k-core** ignoring vertex labels (Lines 7 and 11 of
  Algorithm 2) — any clique larger than the current best lives in the
  ``|C*|``-core;
* the **(tau_L, tau_R)-core** (Algorithm 4): the unique maximal subgraph
  in which every L-vertex has at least ``tau_L - 1`` L-neighbours and
  ``tau_R`` R-neighbours, and every R-vertex has at least ``tau_L``
  L-neighbours and ``tau_R - 1`` R-neighbours.  Every vertex of a
  dichromatic clique satisfying ``(tau_L, tau_R)`` lies in this core.

Both operate on an *active vertex subset* and return the surviving
subset, so the branch-and-bound never materializes induced subgraphs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .graph import DichromaticGraph

__all__ = ["k_core_active", "bicore_active", "coloring_upper_bound_active"]


def k_core_active(
    graph: DichromaticGraph, k: int, active: Iterable[int]
) -> set[int]:
    """Label-blind ``k``-core of the subgraph induced by ``active``."""
    alive = set(active)
    if k <= 0:
        return alive
    degree = {v: len(graph.neighbors(v) & alive) for v in alive}
    queue = deque(v for v, d in degree.items() if d < k)
    queued = set(queue)
    while queue:
        v = queue.popleft()
        if v not in alive:
            continue
        alive.discard(v)
        for u in graph.neighbors(v):
            if u in alive:
                degree[u] -= 1
                if degree[u] < k and u not in queued:
                    queue.append(u)
                    queued.add(u)
    return alive


def bicore_active(
    graph: DichromaticGraph,
    tau_l: int,
    tau_r: int,
    active: Iterable[int],
) -> set[int]:
    """``(tau_L, tau_R)``-core of the subgraph induced by ``active``.

    Peels in linear time: a vertex is deleted while its same-side /
    cross-side degree requirements are violated.  Negative thresholds
    are treated as zero (MDC may drive them below zero).
    """
    tau_l = max(tau_l, 0)
    tau_r = max(tau_r, 0)
    alive = set(active)
    if tau_l == 0 and tau_r == 0:
        return alive
    left_deg: dict[int, int] = {}
    right_deg: dict[int, int] = {}
    for v in alive:
        l_count = 0
        r_count = 0
        for u in graph.neighbors(v):
            if u in alive:
                if graph.is_left[u]:
                    l_count += 1
                else:
                    r_count += 1
        left_deg[v] = l_count
        right_deg[v] = r_count

    def violates(v: int) -> bool:
        if graph.is_left[v]:
            return left_deg[v] < tau_l - 1 or right_deg[v] < tau_r
        return left_deg[v] < tau_l or right_deg[v] < tau_r - 1

    queue = deque(v for v in alive if violates(v))
    queued = set(queue)
    while queue:
        v = queue.popleft()
        if v not in alive:
            continue
        alive.discard(v)
        v_left = graph.is_left[v]
        for u in graph.neighbors(v):
            if u not in alive:
                continue
            if v_left:
                left_deg[u] -= 1
            else:
                right_deg[u] -= 1
            if u not in queued and violates(u):
                queue.append(u)
                queued.add(u)
    return alive


def coloring_upper_bound_active(
    graph: DichromaticGraph, active: Iterable[int]
) -> int:
    """Greedy-colouring clique bound on the induced subgraph, ignoring
    vertex labels (``colorUB`` of Algorithm 2)."""
    vertex_set = set(active)
    vertices = sorted(
        vertex_set,
        key=lambda v: len(graph.neighbors(v) & vertex_set),
        reverse=True,
    )
    colors: dict[int, int] = {}
    highest = -1
    for v in vertices:
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        color = 0
        while color in used:
            color += 1
        colors[v] = color
        if color > highest:
            highest = color
    return highest + 1
