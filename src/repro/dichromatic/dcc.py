"""DCC — dichromatic clique checking (Algorithm 4 of the paper).

``DCC(g, tau_L, tau_R)`` decides whether ``g`` contains *any*
dichromatic clique with at least ``tau_L`` L-vertices and ``tau_R``
R-vertices.  Unlike MDC it does not look for the maximum — it stops the
moment both quotas reach zero — and it prunes with the
``(tau_L, tau_R)``-core rather than colouring bounds, exactly as in the
pseudocode.

Like MDC, the check runs on one of three engines: ``"bitset"``
(default) carries the candidate set as an int mask over the kernels of
:mod:`repro.kernels.active` with incrementally maintained degrees,
``"numpy"`` carries it as a uint64 mask row over the vectorised
kernels of :mod:`repro.kernels.npmask`, and ``"set"`` is the original
adjacency-set implementation retained for differential testing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..kernels import npmask, validate_engine
from ..kernels.active import bicore_active_mask
from ..kernels.bitset import mask_of
from ..obs import Span, Tracer, current_tracer
from ..resilience.budget import Budget
from .cores import bicore_active
from .graph import DichromaticGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..core.stats import SearchStats
    from ..kernels.npmask import Matrix, Row

__all__ = ["dichromatic_clique_check", "dichromatic_clique_witness"]


def dichromatic_clique_check(
    graph: DichromaticGraph,
    tau_l: int,
    tau_r: int,
    stats: "SearchStats | None" = None,
    active: set[int] | None = None,
    engine: str = "bitset",
    active_mask: int | None = None,
    active_row: "Row | None" = None,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
) -> bool:
    """True iff ``graph`` has a dichromatic clique meeting the quotas.

    ``active`` optionally restricts the search to a vertex subset
    (callers pass an already-core-reduced set); the bitset engine also
    accepts it pre-packed as ``active_mask``, the numpy engine as an
    ``active_row``.  ``trace`` defaults to the ambient tracer; each
    check closes one ``dcc`` span.  A ``budget`` is charged one node
    per branch-and-bound node.
    """
    return dichromatic_clique_witness(
        graph, tau_l, tau_r, stats=stats, active=active,
        engine=engine, active_mask=active_mask, active_row=active_row,
        trace=trace, budget=budget) is not None


def dichromatic_clique_witness(
    graph: DichromaticGraph,
    tau_l: int,
    tau_r: int,
    stats: "SearchStats | None" = None,
    active: set[int] | None = None,
    engine: str = "bitset",
    active_mask: int | None = None,
    active_row: "Row | None" = None,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
) -> set[int] | None:
    """Like :func:`dichromatic_clique_check` but returns the witness
    clique (local vertex ids), or ``None`` when infeasible."""
    validate_engine(engine)
    tracer = trace if trace is not None else current_tracer()
    span = tracer.span(
        "dcc", n=graph.num_vertices, tau_l=tau_l, tau_r=tau_r,
        engine=engine)
    with span:
        found = _witness(graph, tau_l, tau_r, stats, active, engine,
                         active_mask, active_row,
                         span if tracer.enabled else None, budget)
        if tracer.enabled:
            span.set(found=found is not None)
    return found


def _witness(
    graph: DichromaticGraph,
    tau_l: int,
    tau_r: int,
    stats: "SearchStats | None",
    active: set[int] | None,
    engine: str,
    active_mask: int | None,
    active_row: "Row | None",
    span: Span | None,
    budget: "Budget | None",
) -> set[int] | None:
    """Engine dispatch behind the public check (span already open)."""
    witness: list[int] = []
    if engine == "set":
        if active is None:
            active = set(graph.vertices())
        else:
            active = set(active)
        if _check(graph, active, tau_l, tau_r, stats, witness, span,
                  budget):
            return set(witness)
        return None
    if engine == "numpy":
        if active_row is None:
            if active_mask is not None:
                active_row = npmask.row_from_mask(
                    active_mask, graph.num_vertices)
            elif active is not None:
                active_row = npmask.row_from_mask(
                    mask_of(active), graph.num_vertices)
            else:
                active_row = graph.all_row()
        if _check_np(
                graph.adjacency_matrix(), graph.left_row(),
                graph.num_vertices, active_row, tau_l, tau_r, stats,
                witness, span, budget):
            return set(witness)
        return None
    if active_mask is None:
        if active is None:
            active_mask = graph.all_bits()
        else:
            active_mask = mask_of(active)
    if _check_bits(
            graph.adjacency_bits(), graph.left_bits(), graph.num_vertices,
            active_mask, tau_l, tau_r, stats, witness, span, budget):
        return set(witness)
    return None


def _check_bits(
    adj: list[int],
    left_mask: int,
    num_vertices: int,
    active: int,
    tau_l: int,
    tau_r: int,
    stats: "SearchStats | None",
    witness: list[int],
    span: Span | None = None,
    budget: "Budget | None" = None,
) -> bool:
    if stats is not None:
        stats.nodes += 1
    if span is not None:
        span.count("nodes")
    if budget is not None:
        budget.spend()
    if tau_l == 0 and tau_r == 0:
        return True
    active = bicore_active_mask(adj, left_mask, tau_l, tau_r, active)
    left = active & left_mask
    left_count = left.bit_count()
    active_count = active.bit_count()
    # Feasibility guard (implicit in the pseudocode's empty loop): each
    # side must still be able to cover its quota.
    if left_count < tau_l or active_count - left_count < tau_r:
        return False

    if tau_l > 0 and tau_r == 0:
        pool = left
    elif tau_l == 0 and tau_r > 0:
        pool = active & ~left
    else:
        pool = active

    degree = [0] * num_vertices
    rest = active
    while rest:
        low = rest & -rest
        rest ^= low
        v = low.bit_length() - 1
        degree[v] = (adj[v] & active).bit_count()

    while pool:
        best_v = -1
        best_d = active_count
        rest = pool
        while rest:
            low = rest & -rest
            rest ^= low
            u = low.bit_length() - 1
            if degree[u] < best_d:
                best_d = degree[u]
                best_v = u
        v = best_v
        bit = 1 << v
        if left_mask & bit:
            next_l, next_r = tau_l - 1, tau_r
        else:
            next_l, next_r = tau_l, tau_r - 1
        witness.append(v)
        if _check_bits(adj, left_mask, num_vertices, adj[v] & active,
                       next_l, next_r, stats, witness, span, budget):
            return True
        witness.pop()
        pool &= ~bit
        active &= ~bit
        active_count -= 1
        rest = adj[v] & active
        while rest:
            low = rest & -rest
            rest ^= low
            degree[low.bit_length() - 1] -= 1
    return False


def _check_np(
    mat: "Matrix",
    left_row: "Row",
    num_vertices: int,
    active: "Row",
    tau_l: int,
    tau_r: int,
    stats: "SearchStats | None",
    witness: list[int],
    span: Span | None = None,
    budget: "Budget | None" = None,
) -> bool:
    """Numpy-engine mirror of :func:`_check_bits` (identical search)."""
    if stats is not None:
        stats.nodes += 1
    if span is not None:
        span.count("nodes")
    if budget is not None:
        budget.spend()
    if tau_l == 0 and tau_r == 0:
        return True
    active = npmask.bicore_active(mat, left_row, tau_l, tau_r, active)
    left = active & left_row
    left_count = npmask.row_count(left)
    active_count = npmask.row_count(active)
    # Feasibility guard (implicit in the pseudocode's empty loop): each
    # side must still be able to cover its quota.
    if left_count < tau_l or active_count - left_count < tau_r:
        return False

    if tau_l > 0 and tau_r == 0:
        pool = left
    elif tau_l == 0 and tau_r > 0:
        pool = active & ~left_row
    else:
        pool = active

    pool_alive = npmask.row_bool(pool, num_vertices)
    degree = npmask.degrees_in_active(mat, active)
    active = active.copy()
    while True:
        # Minimum-degree pool vertex (lowest id on ties).
        v = npmask.argmin_active(degree, pool_alive)
        if v < 0:
            break
        if npmask.test_bit(left_row, v):
            next_l, next_r = tau_l - 1, tau_r
        else:
            next_l, next_r = tau_l, tau_r - 1
        witness.append(v)
        if _check_np(mat, left_row, num_vertices,
                     npmask.intersect_active(mat, v, active),
                     next_l, next_r, stats, witness, span, budget):
            return True
        witness.pop()
        pool_alive[v] = False
        npmask.clear_bit(active, v)
        npmask.subtract_members(degree, mat[v] & active, num_vertices)
    return False


def _check(
    graph: DichromaticGraph,
    active: set[int],
    tau_l: int,
    tau_r: int,
    stats: "SearchStats | None",
    witness: list[int] | None,
    span: Span | None = None,
    budget: "Budget | None" = None,
) -> bool:
    if stats is not None:
        stats.nodes += 1
    if span is not None:
        span.count("nodes")
    if budget is not None:
        budget.spend()
    if tau_l == 0 and tau_r == 0:
        return True
    active = bicore_active(graph, tau_l, tau_r, active)
    left = {v for v in active if graph.is_left[v]}
    right = active - left
    # Feasibility guard (implicit in the pseudocode's empty loop): each
    # side must still be able to cover its quota.
    if len(left) < tau_l or len(right) < tau_r:
        return False

    if tau_l > 0 and tau_r == 0:
        branch_pool = left
    elif tau_l == 0 and tau_r > 0:
        branch_pool = right
    else:
        branch_pool = set(active)

    while branch_pool:
        v = min(
            branch_pool, key=lambda x: len(graph.neighbors(x) & active))
        if graph.is_left[v]:
            next_l, next_r = tau_l - 1, tau_r
        else:
            next_l, next_r = tau_l, tau_r - 1
        if witness is not None:
            witness.append(v)
        if _check(graph, graph.neighbors(v) & active,
                  next_l, next_r, stats, witness, span, budget):
            return True
        if witness is not None:
            witness.pop()
        branch_pool.discard(v)
        active.discard(v)
    return False
