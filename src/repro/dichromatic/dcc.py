"""DCC — dichromatic clique checking (Algorithm 4 of the paper).

``DCC(g, tau_L, tau_R)`` decides whether ``g`` contains *any*
dichromatic clique with at least ``tau_L`` L-vertices and ``tau_R``
R-vertices.  Unlike MDC it does not look for the maximum — it stops the
moment both quotas reach zero — and it prunes with the
``(tau_L, tau_R)``-core rather than colouring bounds, exactly as in the
pseudocode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .cores import bicore_active
from .graph import DichromaticGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..core.stats import SearchStats

__all__ = ["dichromatic_clique_check", "dichromatic_clique_witness"]


def dichromatic_clique_check(
    graph: DichromaticGraph,
    tau_l: int,
    tau_r: int,
    stats: "SearchStats | None" = None,
    active: set[int] | None = None,
) -> bool:
    """True iff ``graph`` has a dichromatic clique meeting the quotas.

    ``active`` optionally restricts the search to a vertex subset
    (callers pass an already-core-reduced set).
    """
    if active is None:
        active = set(graph.vertices())
    else:
        active = set(active)
    return _check(graph, active, tau_l, tau_r, stats, None)


def dichromatic_clique_witness(
    graph: DichromaticGraph,
    tau_l: int,
    tau_r: int,
    stats: "SearchStats | None" = None,
    active: set[int] | None = None,
) -> set[int] | None:
    """Like :func:`dichromatic_clique_check` but returns the witness
    clique (local vertex ids), or ``None`` when infeasible."""
    if active is None:
        active = set(graph.vertices())
    else:
        active = set(active)
    witness: list[int] = []
    if _check(graph, active, tau_l, tau_r, stats, witness):
        return set(witness)
    return None


def _check(
    graph: DichromaticGraph,
    active: set[int],
    tau_l: int,
    tau_r: int,
    stats: "SearchStats | None",
    witness: list[int] | None,
) -> bool:
    if stats is not None:
        stats.nodes += 1
    if tau_l == 0 and tau_r == 0:
        return True
    active = bicore_active(graph, tau_l, tau_r, active)
    left = {v for v in active if graph.is_left[v]}
    right = active - left
    # Feasibility guard (implicit in the pseudocode's empty loop): each
    # side must still be able to cover its quota.
    if len(left) < tau_l or len(right) < tau_r:
        return False

    if tau_l > 0 and tau_r == 0:
        branch_pool = left
    elif tau_l == 0 and tau_r > 0:
        branch_pool = right
    else:
        branch_pool = set(active)

    while branch_pool:
        v = min(
            branch_pool, key=lambda x: len(graph.neighbors(x) & active))
        if graph.is_left[v]:
            next_l, next_r = tau_l - 1, tau_r
        else:
            next_l, next_r = tau_l, tau_r - 1
        if witness is not None:
            witness.append(v)
        if _check(graph, graph.neighbors(v) & active,
                  next_l, next_r, stats, witness):
            return True
        if witness is not None:
            witness.pop()
        branch_pool.discard(v)
        active.discard(v)
    return False
