"""Dichromatic graphs (Problem 3 of the paper).

A *dichromatic graph* ``g = (V_L ∪ V_R, E)`` is an unsigned graph whose
vertices carry one of two labels, L or R.  A clique ``C`` of ``g`` is a
*dichromatic clique satisfying the constraint* ``(tau_L, tau_R)`` when
``|C ∩ V_L| >= tau_L`` and ``|C ∩ V_R| >= tau_R``.

:class:`DichromaticGraph` stores the label array, adjacency sets, and an
``origin`` array mapping local vertex ids back to vertices of the signed
graph the network was extracted from (see :mod:`repro.dichromatic.build`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..kernels import npmask
from ..kernels.bitset import adjacency_masks, full_mask, iter_bits, \
    left_side_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernels.npmask import Matrix, Row

__all__ = ["DichromaticGraph"]


class DichromaticGraph:
    """Vertex-labelled unsigned graph over local ids ``0..n-1``.

    Parameters
    ----------
    is_left:
        ``is_left[v]`` is True for L-vertices, False for R-vertices.
    origin:
        Optional mapping from local id to the original vertex id of the
        signed graph (defaults to the identity).
    """

    def __init__(
        self,
        is_left: Sequence[bool],
        origin: Sequence[int] | None = None,
    ) -> None:
        self.is_left: list[bool] = list(is_left)
        n = len(self.is_left)
        if origin is None:
            self.origin: list[int] = list(range(n))
        else:
            if len(origin) != n:
                raise ValueError(
                    f"expected {n} origin entries, got {len(origin)}")
            self.origin = list(origin)
        self._adj: list[set[int]] | None = [set() for _ in range(n)]
        self._adj_bits: list[int] | None = None
        self._adj_np: "Matrix | None" = None
        self._left_bits: int | None = None
        self._left_row: "Row | None" = None

    @classmethod
    def from_masks(
        cls,
        is_left: Sequence[bool],
        origin: Sequence[int],
        adjacency: Sequence[int],
    ) -> "DichromaticGraph":
        """Build directly from per-vertex adjacency bitmasks.

        The fast ego-network builder
        (:func:`repro.dichromatic.build.build_dichromatic_network_bits`)
        produces masks natively; adjacency *sets* are materialized
        lazily only if a set-based accessor is used.  ``adjacency`` must
        be symmetric and self-loop-free — callers own that invariant.
        """
        network = cls.__new__(cls)
        network.is_left = list(is_left)
        n = len(network.is_left)
        if len(origin) != n or len(adjacency) != n:
            raise ValueError(
                f"expected {n} origin/adjacency entries, got "
                f"{len(origin)}/{len(adjacency)}")
        network.origin = list(origin)
        network._adj = None
        network._adj_bits = list(adjacency)
        network._adj_np = None
        network._left_bits = None
        network._left_row = None
        return network

    @classmethod
    def from_matrix(
        cls,
        is_left: Sequence[bool],
        origin: Sequence[int],
        matrix: "Matrix",
    ) -> "DichromaticGraph":
        """Build directly from a uint64 adjacency mask matrix.

        The matrix-native ego-network builder
        (:func:`repro.dichromatic.build.build_dichromatic_network_matrix`)
        produces these; int masks and adjacency sets are materialized
        lazily only if a non-array accessor is used.  ``matrix`` must be
        symmetric and self-loop-free — callers own that invariant.
        """
        network = cls.__new__(cls)
        network.is_left = list(is_left)
        n = len(network.is_left)
        if len(origin) != n or matrix.shape[0] != n:
            raise ValueError(
                f"expected {n} origin/matrix entries, got "
                f"{len(origin)}/{matrix.shape[0]}")
        network.origin = list(origin)
        network._adj = None
        network._adj_bits = None
        network._adj_np = matrix
        network._left_bits = None
        network._left_row = None
        return network

    def _sets(self) -> list[set[int]]:
        """Adjacency sets, materialized from the masks on first use."""
        if self._adj is None:
            self._adj = [
                set(iter_bits(mask)) for mask in self.adjacency_bits()]
        return self._adj

    @property
    def num_vertices(self) -> int:
        return len(self.is_left)

    @property
    def num_edges(self) -> int:
        if self._adj_bits is not None:
            return sum(mask.bit_count() for mask in self._adj_bits) // 2
        if self._adj is not None:
            return sum(len(adj) for adj in self._adj) // 2
        assert self._adj_np is not None
        return npmask.matrix_edge_count(self._adj_np)

    def vertices(self) -> range:
        return range(self.num_vertices)

    def left_vertices(self) -> set[int]:
        """``V_L`` as a fresh set of local ids."""
        return {v for v in self.vertices() if self.is_left[v]}

    def right_vertices(self) -> set[int]:
        """``V_R`` as a fresh set of local ids."""
        return {v for v in self.vertices() if not self.is_left[v]}

    def neighbors(self, v: int) -> set[int]:
        """Live adjacency set of ``v`` — callers must not mutate it."""
        return self._sets()[v]

    def degree(self, v: int) -> int:
        if self._adj_bits is not None:
            return self._adj_bits[v].bit_count()
        if self._adj is not None:
            return len(self._adj[v])
        assert self._adj_np is not None
        return npmask.degree_in_active(
            self._adj_np, v, self.all_row())

    def has_edge(self, u: int, v: int) -> bool:
        if self._adj_bits is not None:
            return bool(self._adj_bits[u] & (1 << v))
        if self._adj is not None:
            return v in self._adj[u]
        assert self._adj_np is not None
        return npmask.test_bit(self._adj_np[u], v)

    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loop on vertex {u} is not allowed")
        n = self.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        adj = self._sets()
        adj[u].add(v)
        adj[v].add(u)
        self._adj_bits = None
        self._adj_np = None

    # ------------------------------------------------------------------
    # Bitset adjacency (kernel layer)
    # ------------------------------------------------------------------
    def adjacency_bits(self) -> list[int]:
        """Per-vertex neighbourhood bitmasks, built lazily and cached.

        The cache is invalidated by :meth:`add_edge`; callers must not
        mutate the returned list or its entries between edits.
        """
        if self._adj_bits is None:
            if self._adj is not None:
                self._adj_bits = adjacency_masks(self._adj)
            else:
                assert self._adj_np is not None
                self._adj_bits = npmask.masks_from_matrix(
                    self._adj_np, self.num_vertices)
        return self._adj_bits

    def left_bits(self) -> int:
        """Mask of ``V_L`` (labels are fixed at construction time)."""
        if self._left_bits is None:
            self._left_bits = left_side_mask(self.is_left)
        return self._left_bits

    def all_bits(self) -> int:
        """Mask of the full vertex set ``0..n-1``."""
        return full_mask(self.num_vertices)

    # ------------------------------------------------------------------
    # Matrix adjacency (numpy kernel layer)
    # ------------------------------------------------------------------
    def adjacency_matrix(self) -> "Matrix":
        """Adjacency as a uint64 mask matrix, built lazily and cached.

        Invalidated by :meth:`add_edge`, like :meth:`adjacency_bits`;
        callers must not mutate the returned array between edits.
        """
        if self._adj_np is None:
            self._adj_np = npmask.matrix_from_masks(
                self.adjacency_bits(), self.num_vertices)
        return self._adj_np

    def left_row(self) -> "Row":
        """``V_L`` as a uint64 mask row, cached."""
        if self._left_row is None:
            self._left_row = npmask.bool_to_row(
                self.is_left, self.num_vertices)
        return self._left_row

    def all_row(self) -> "Row":
        """The full vertex set ``0..n-1`` as a fresh uint64 mask row."""
        return npmask.full_row(self.num_vertices)

    def edges(self) -> Iterable[tuple[int, int]]:
        adj = self._sets()
        for u in self.vertices():
            for v in adj[u]:
                if u < v:
                    yield u, v

    def is_clique(self, vertices: Iterable[int]) -> bool:
        members = list(vertices)
        sets = self._sets()
        for i, u in enumerate(members):
            adj = sets[u]
            for v in members[i + 1:]:
                if v not in adj:
                    return False
        return True

    def side_counts(self, vertices: Iterable[int]) -> tuple[int, int]:
        """``(|S ∩ V_L|, |S ∩ V_R|)`` for a local vertex set ``S``."""
        left = 0
        right = 0
        for v in vertices:
            if self.is_left[v]:
                left += 1
            else:
                right += 1
        return left, right

    def to_original(self, vertices: Iterable[int]) -> set[int]:
        """Translate local ids back to original signed-graph ids."""
        return {self.origin[v] for v in vertices}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        left = sum(1 for flag in self.is_left if flag)
        return (f"DichromaticGraph(|V_L|={left}, "
                f"|V_R|={self.num_vertices - left}, m={self.num_edges})")
