"""MDC — maximum dichromatic clique branch-and-bound.

The ``MDC`` procedure of Algorithm 2.  Given a dichromatic graph ``g``
and residual side thresholds ``(tau_L, tau_R)``, it finds the largest
clique ``C'`` of ``g`` with at least ``tau_L`` L-vertices and ``tau_R``
R-vertices whose size exceeds a caller-supplied bar (``must_exceed``).

Per branch-and-bound node (faithful to the pseudocode):

1. record the running clique if it beats the bar and both residual
   thresholds are satisfied;
2. reduce the candidate set to its ``(bar - |C|)``-core (label-blind);
3. prune when either side cannot reach its threshold or the greedy
   colouring bound shows no large-enough clique exists;
4. choose the branching pool ``B`` — the side still owing vertices, or
   everything when neither/both sides owe;
5. repeatedly branch on the minimum-degree vertex of ``B``, recursing on
   its neighbourhood, then discard it from the instance.

Thresholds may go below zero (a side may exceed its quota); the search
is exhaustive, so the returned clique is exactly
``argmax {|C'| : C' beats the bar and satisfies the thresholds}``.

Three engines implement the identical search:

* ``engine="bitset"`` (default) carries the active candidate set as a
  single int mask over the kernels of :mod:`repro.kernels.active` and
  maintains degree-in-active counts *incrementally* — the set engine's
  min-degree branching re-scanned every pool vertex's neighbourhood on
  every iteration, an O(|B|² · d) pattern this engine reduces to
  O(|B|²) cheap array lookups plus one neighbour sweep per removal;
* ``engine="numpy"`` carries the candidate set as a uint64 mask row
  over the vectorised kernels of :mod:`repro.kernels.npmask` — per-node
  degree recomputation, core peeling and the colouring bound all run
  as whole-array operations;
* ``engine="set"`` is the original adjacency-set implementation, kept
  for differential testing and the ablation benchmarks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..kernels import npmask, validate_engine
from ..kernels.active import (
    coloring_upper_bound_active_mask,
    k_core_active_mask,
)
from ..kernels.bitset import mask_of
from ..obs import Span, Tracer, current_tracer
from ..resilience.budget import Budget
from .cores import coloring_upper_bound_active, k_core_active
from .graph import DichromaticGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..core.stats import SearchStats
    from ..kernels.npmask import Row

__all__ = ["solve_mdc", "FeasibleFound"]


class FeasibleFound(Exception):
    """Raised internally to stop the search in feasibility-check mode."""

    def __init__(self, clique: set[int]) -> None:
        super().__init__("feasible dichromatic clique found")
        self.clique = clique


def solve_mdc(
    graph: DichromaticGraph,
    tau_l: int,
    tau_r: int,
    must_exceed: int,
    stats: "SearchStats | None" = None,
    check_only: bool = False,
    active: set[int] | None = None,
    use_coloring: bool = True,
    use_core: bool = True,
    engine: str = "bitset",
    active_mask: int | None = None,
    active_row: "Row | None" = None,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
) -> set[int] | None:
    """Solve one maximum-dichromatic-clique instance.

    Parameters
    ----------
    graph:
        The dichromatic network (typically ``g_u`` without ``u``).
    tau_l, tau_r:
        Residual side quotas.  When the anchor vertex ``u`` is an
        L-vertex excluded from ``graph``, the caller passes
        ``(tau - 1, tau)``.
    must_exceed:
        Only cliques strictly larger than this count (the incumbent
        ``|C*|`` minus the anchor) are returned.
    stats:
        Optional :class:`repro.core.stats.SearchStats` accumulator.
    check_only:
        If True, stop as soon as *any* clique meeting the thresholds is
        found (the PF-BS optimization of Section IV-B) and return it —
        it need not be maximum.
    active:
        Optional subset of vertices to search within (callers pass the
        already-core-reduced vertex set); defaults to all vertices.
    use_coloring, use_core:
        Ablation switches for the two per-node pruning rules (both on
        by default, as in the paper); used by the ablation benchmarks
        to quantify each rule's contribution.
    engine:
        ``"bitset"`` (default), ``"numpy"`` or ``"set"`` — see the
        module docstring.
    active_mask:
        Bitset-engine fast path for ``active``: callers that already
        hold the active set as a mask (MBC* after its mask-based core
        reduction) pass it here to skip a set/mask round-trip.
    active_row:
        Numpy-engine analogue of ``active_mask``: the active set as a
        uint64 mask row (MBC*/PF* pass their already-peeled row).
    trace:
        Optional :class:`repro.obs.Tracer`; defaults to the ambient
        tracer.  Each instance closes one ``mdc`` span recording the
        instance size, thresholds, branch count and outcome.
    budget:
        Optional :class:`repro.resilience.Budget`; charged one node
        per branch-and-bound node, so a budgeted caller is interrupted
        (``BudgetExceeded``) mid-instance rather than after it.

    Returns
    -------
    set[int] | None
        Best qualifying clique (local vertex ids), or ``None``.
    """
    validate_engine(engine)
    tracer = trace if trace is not None else current_tracer()
    span = tracer.span(
        "mdc", n=graph.num_vertices, tau_l=tau_l, tau_r=tau_r,
        must_exceed=must_exceed, engine=engine)
    with span:
        found = _solve(
            graph, tau_l, tau_r, must_exceed, stats, check_only,
            active, use_coloring, use_core, engine, active_mask,
            active_row, span if tracer.enabled else None, budget)
        if tracer.enabled:
            span.set(found=found is not None)
            nodes = span.attrs.get("nodes", 0)
            assert isinstance(nodes, int)
            tracer.histogram("mdc.nodes").observe(nodes)
    return found


def _solve(
    graph: DichromaticGraph,
    tau_l: int,
    tau_r: int,
    must_exceed: int,
    stats: "SearchStats | None",
    check_only: bool,
    active: set[int] | None,
    use_coloring: bool,
    use_core: bool,
    engine: str,
    active_mask: int | None,
    active_row: "Row | None",
    span: Span | None,
    budget: "Budget | None",
) -> set[int] | None:
    """Engine dispatch behind :func:`solve_mdc` (span already open)."""
    if engine == "set":
        state = _State(graph, must_exceed, stats)
        state.use_coloring = use_coloring
        state.use_core = use_core
        state.span = span
        state.budget = budget
        if active is None:
            active = set(graph.vertices())
        else:
            active = set(active)
        try:
            state.search(set(), active, tau_l, tau_r, check_only)
        except FeasibleFound as found:
            return found.clique
        return state.best

    if engine == "numpy":
        if active_row is None:
            if active_mask is not None:
                active_row = npmask.row_from_mask(
                    active_mask, graph.num_vertices)
            elif active is not None:
                active_row = npmask.row_from_mask(
                    mask_of(active), graph.num_vertices)
            else:
                active_row = graph.all_row()
        state_n = _ArrayState(graph, must_exceed, stats)
        state_n.use_coloring = use_coloring
        state_n.use_core = use_core
        state_n.span = span
        state_n.budget = budget
        try:
            state_n.search([], active_row, tau_l, tau_r, check_only)
        except FeasibleFound as found:
            return found.clique
        return state_n.best

    if active_mask is None:
        if active is None:
            active_mask = graph.all_bits()
        else:
            active_mask = mask_of(active)
    state_b = _BitsetState(graph, must_exceed, stats)
    state_b.use_coloring = use_coloring
    state_b.use_core = use_core
    state_b.span = span
    state_b.budget = budget
    try:
        state_b.search([], active_mask, tau_l, tau_r, check_only)
    except FeasibleFound as found:
        return found.clique
    return state_b.best


class _BitsetState:
    """Mutable search state for the bitset engine.

    The running clique is a list used as a stack; the active candidate
    set and branching pool are int masks; degree-in-active counts live
    in a flat list indexed by local vertex id and are updated in place
    as branch vertices leave the instance.
    """

    def __init__(
        self,
        graph: DichromaticGraph,
        must_exceed: int,
        stats: "SearchStats | None",
    ) -> None:
        self.adj = graph.adjacency_bits()
        self.left_mask = graph.left_bits()
        self.num_vertices = graph.num_vertices
        self.best: set[int] | None = None
        self.best_size = must_exceed
        self.stats = stats
        self.use_coloring = True
        self.use_core = True
        self.span: Span | None = None
        self.budget: Budget | None = None

    def search(
        self,
        clique: list[int],
        active: int,
        tau_l: int,
        tau_r: int,
        check_only: bool,
    ) -> None:
        adj = self.adj
        if self.stats is not None:
            self.stats.nodes += 1
        if self.span is not None:
            self.span.count("nodes")
        if self.budget is not None:
            self.budget.spend()
        if tau_l <= 0 and tau_r <= 0:
            if check_only:
                # Boundary materialisation: the found clique leaves the
                # engine as a set, per the solve_mdc contract.
                raise FeasibleFound(set(clique))  # repro: noqa R001
            if len(clique) > self.best_size:
                self.best = set(clique)  # repro: noqa R001
                self.best_size = len(clique)

        if self.use_core:
            active = k_core_active_mask(
                adj, self.best_size - len(clique), active)
        left = active & self.left_mask
        left_count = left.bit_count()
        active_count = active.bit_count()
        if left_count < tau_l or active_count - left_count < tau_r:
            return
        if not check_only and self.use_coloring:
            bound = coloring_upper_bound_active_mask(adj, active)
            if bound <= self.best_size - len(clique):
                return

        if tau_l > 0 and tau_r <= 0:
            pool = left
        elif tau_l <= 0 and tau_r > 0:
            pool = active & ~left
        else:
            pool = active

        # Degrees within the active set, computed once per node and then
        # maintained incrementally as branch vertices are discarded.
        degree = [0] * self.num_vertices
        rest = active
        while rest:
            low = rest & -rest
            rest ^= low
            v = low.bit_length() - 1
            degree[v] = (adj[v] & active).bit_count()

        while pool:
            # Minimum-degree vertex of the pool (lowest id on ties).
            best_v = -1
            best_d = active_count
            rest = pool
            while rest:
                low = rest & -rest
                rest ^= low
                u = low.bit_length() - 1
                if degree[u] < best_d:
                    best_d = degree[u]
                    best_v = u
            v = best_v
            bit = 1 << v
            if self.left_mask & bit:
                next_l, next_r = tau_l - 1, tau_r
            else:
                next_l, next_r = tau_l, tau_r - 1
            clique.append(v)
            self.search(clique, adj[v] & active, next_l, next_r, check_only)
            clique.pop()
            pool &= ~bit
            active &= ~bit
            active_count -= 1
            rest = adj[v] & active
            while rest:
                low = rest & -rest
                rest ^= low
                degree[low.bit_length() - 1] -= 1
            # Re-check viability: removing v may make the remainder
            # too small for either quota or for a strictly larger clique.
            if len(clique) + active_count <= self.best_size:
                return


class _ArrayState:
    """Mutable search state for the numpy engine.

    The exact search of :class:`_BitsetState` with every mask replaced
    by a uint64 row over :mod:`repro.kernels.npmask`: per-node degrees
    come from one vectorised popcount pass, the branching pool is a
    bool membership array scanned by masked argmin (first occurrence =
    lowest id, matching the bitset tie-break), and degree updates are
    one bool-subtract per removal.
    """

    def __init__(
        self,
        graph: DichromaticGraph,
        must_exceed: int,
        stats: "SearchStats | None",
    ) -> None:
        self.mat = graph.adjacency_matrix()
        self.left_row = graph.left_row()
        self.num_vertices = graph.num_vertices
        self.best: set[int] | None = None
        self.best_size = must_exceed
        self.stats = stats
        self.use_coloring = True
        self.use_core = True
        self.span: Span | None = None
        self.budget: Budget | None = None

    def search(
        self,
        clique: list[int],
        active: "Row",
        tau_l: int,
        tau_r: int,
        check_only: bool,
    ) -> None:
        mat = self.mat
        n = self.num_vertices
        if self.stats is not None:
            self.stats.nodes += 1
        if self.span is not None:
            self.span.count("nodes")
        if self.budget is not None:
            self.budget.spend()
        if tau_l <= 0 and tau_r <= 0:
            if check_only:
                # Boundary materialisation, per the solve_mdc contract.
                raise FeasibleFound(set(clique))
            if len(clique) > self.best_size:
                self.best = set(clique)
                self.best_size = len(clique)

        if self.use_core:
            active = npmask.k_core_active(
                mat, self.best_size - len(clique), active)
        left = active & self.left_row
        left_count = npmask.row_count(left)
        active_count = npmask.row_count(active)
        if left_count < tau_l or active_count - left_count < tau_r:
            return
        if not check_only and self.use_coloring:
            bound = npmask.coloring_upper_bound_active(mat, active)
            if bound <= self.best_size - len(clique):
                return

        if tau_l > 0 and tau_r <= 0:
            pool = left
        elif tau_l <= 0 and tau_r > 0:
            pool = active & ~self.left_row
        else:
            pool = active

        pool_alive = npmask.row_bool(pool, n)
        degree = npmask.degrees_in_active(mat, active)
        # The candidate row is mutated in place below; detach it from
        # whatever the caller handed in (it may be a shared prefix row).
        active = active.copy()
        while True:
            # Minimum-degree pool vertex (lowest id on ties).
            v = npmask.argmin_active(degree, pool_alive)
            if v < 0:
                break
            if npmask.test_bit(self.left_row, v):
                next_l, next_r = tau_l - 1, tau_r
            else:
                next_l, next_r = tau_l, tau_r - 1
            clique.append(v)
            self.search(
                clique, npmask.intersect_active(mat, v, active),
                next_l, next_r, check_only)
            clique.pop()
            pool_alive[v] = False
            npmask.clear_bit(active, v)
            active_count -= 1
            npmask.subtract_members(degree, mat[v] & active, n)
            # Re-check viability: removing v may make the remainder
            # too small for either quota or for a strictly larger clique.
            if len(clique) + active_count <= self.best_size:
                return


class _State:
    """Mutable search state shared across MDC recursion levels."""

    def __init__(
        self,
        graph: DichromaticGraph,
        must_exceed: int,
        stats: "SearchStats | None",
    ) -> None:
        self.graph = graph
        self.best: set[int] | None = None
        self.best_size = must_exceed
        self.stats = stats
        self.use_coloring = True
        self.use_core = True
        self.span: Span | None = None
        self.budget: Budget | None = None

    def search(
        self,
        clique: set[int],
        active: set[int],
        tau_l: int,
        tau_r: int,
        check_only: bool,
    ) -> None:
        graph = self.graph
        if self.stats is not None:
            self.stats.nodes += 1
        if self.span is not None:
            self.span.count("nodes")
        if self.budget is not None:
            self.budget.spend()
        if tau_l <= 0 and tau_r <= 0:
            if check_only:
                raise FeasibleFound(set(clique))
            if len(clique) > self.best_size:
                self.best = set(clique)
                self.best_size = len(clique)

        # Degree-based reduction: a strictly larger clique needs every
        # remaining member to keep (best_size - |C|) neighbours among
        # the remaining members.
        if self.use_core:
            active = k_core_active(
                graph, self.best_size - len(clique), active)
        left = {v for v in active if graph.is_left[v]}
        right_count = len(active) - len(left)
        if len(left) < tau_l or right_count < tau_r:
            return
        if not check_only and self.use_coloring:
            bound = coloring_upper_bound_active(graph, active)
            if bound <= self.best_size - len(clique):
                return

        if tau_l > 0 and tau_r <= 0:
            branch_pool = left
        elif tau_l <= 0 and tau_r > 0:
            branch_pool = active - left
        else:
            branch_pool = set(active)

        while branch_pool:
            v = min(
                branch_pool,
                key=lambda x: len(graph.neighbors(x) & active))
            if graph.is_left[v]:
                next_l, next_r = tau_l - 1, tau_r
            else:
                next_l, next_r = tau_l, tau_r - 1
            clique.add(v)
            self.search(
                clique, graph.neighbors(v) & active,
                next_l, next_r, check_only)
            clique.discard(v)
            branch_pool.discard(v)
            active.discard(v)
            # Re-check viability: removing v may make the remainder
            # too small for either quota or for a strictly larger clique.
            if len(clique) + len(active) <= self.best_size:
                return
