"""repro.dynamic — incremental solving over streaming signed graphs.

The static solvers answer one question about one frozen graph.  This
package answers the same question repeatedly while the graph mutates:
:class:`DynamicSolver` wraps a live :class:`~repro.signed.graph.
SignedGraph`, owns its mutation API (``add_edge`` / ``remove_edge`` /
``flip_sign`` — lint rule R011 forbids touching the graph any other
way inside this package), and keeps a per-vertex cache of certified
ego-instance bounds so each ``solve()`` re-runs only the instances an
edit could actually have changed.  See the module docstring of
:mod:`repro.dynamic.solver` for the invalidation and certification
arguments, and ``docs/DYNAMIC.md`` for the design write-up.

:mod:`repro.dynamic.script` defines the tiny edit-script text format
(``add u v sign`` / ``remove u v`` / ``flip u v``) shared by the CLI's
``repro dynamic`` command, the streaming benchmark and the
differential tests.
"""

from .script import Edit, apply_edit, parse_edit_script, random_edits
from .solver import DynamicSolver, EgoEntry

__all__ = [
    "DynamicSolver",
    "EgoEntry",
    "Edit",
    "apply_edit",
    "parse_edit_script",
    "random_edits",
]
