"""The edit-script format: streaming mutations as plain text.

One mutation per line, ``#`` comments and blank lines ignored::

    add 3 7 -1      # insert a negative edge
    add 2 9 +1      # insert a positive edge
    remove 3 7
    flip 2 9        # toggle the sign of an existing edge

Signs accept ``1`` / ``+1`` / ``+`` and ``-1`` / ``-``.  The format is
shared by ``repro dynamic --edits``, the streaming benchmark and the
differential tests, so a failing random script can be saved and
replayed verbatim through the CLI.

:func:`random_edits` generates seeded scripts *against the live
graph*: each edit is drawn valid for the current state, so the caller
must apply it (through the :class:`~repro.dynamic.solver.
DynamicSolver` mutation API) before drawing the next.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..signed.graph import NEGATIVE, POSITIVE, SignedGraph

if TYPE_CHECKING:  # pragma: no cover
    from .solver import DynamicSolver

__all__ = ["Edit", "apply_edit", "parse_edit_script", "random_edits"]

#: Accepted spellings of the sign token of ``add`` lines.
_SIGN_TOKENS = {
    "1": POSITIVE, "+1": POSITIVE, "+": POSITIVE,
    "-1": NEGATIVE, "-": NEGATIVE,
}


@dataclass(frozen=True)
class Edit:
    """One parsed edit: ``kind`` is ``add`` / ``remove`` / ``flip``;
    ``sign`` is meaningful for ``add`` only."""

    kind: str
    u: int
    v: int
    sign: int = POSITIVE

    def as_line(self) -> str:
        """The script line that parses back to this edit."""
        if self.kind == "add":
            return f"add {self.u} {self.v} {self.sign:+d}"
        return f"{self.kind} {self.u} {self.v}"


def parse_edit_script(text: str) -> list[Edit]:
    """Parse a whole script; raises ``ValueError`` with the offending
    line number on malformed input."""
    edits: list[Edit] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kind = tokens[0]
        try:
            if kind == "add":
                if len(tokens) != 4 or tokens[3] not in _SIGN_TOKENS:
                    raise ValueError
                edits.append(Edit("add", int(tokens[1]),
                                  int(tokens[2]),
                                  _SIGN_TOKENS[tokens[3]]))
            elif kind in ("remove", "flip"):
                if len(tokens) != 3:
                    raise ValueError
                edits.append(Edit(kind, int(tokens[1]),
                                  int(tokens[2])))
            else:
                raise ValueError
        except ValueError:
            raise ValueError(
                f"edit script line {number}: cannot parse "
                f"{raw.strip()!r} (expected 'add u v sign', "
                f"'remove u v' or 'flip u v')") from None
    return edits


def apply_edit(solver: "DynamicSolver", edit: Edit) -> bool:
    """Apply one edit through the solver's guarded mutation API.

    Returns whether the graph actually changed (an ``add`` of an
    existing same-sign edge is a no-op).
    """
    # These dispatch *into* the guarded DynamicSolver API — the route
    # R011 exists to funnel mutations through — not around it.
    if edit.kind == "add":
        return solver.add_edge(edit.u, edit.v, edit.sign)  # repro: noqa R011
    if edit.kind == "remove":
        solver.remove_edge(edit.u, edit.v)  # repro: noqa R011
        return True
    if edit.kind == "flip":
        solver.flip_sign(edit.u, edit.v)  # repro: noqa R011
        return True
    raise ValueError(f"unknown edit kind {edit.kind!r}")


def random_edits(graph: SignedGraph, count: int,
                 seed: int = 0) -> Iterator[Edit]:
    """Yield ``count`` seeded random edits, each valid for the graph
    state *at yield time* — apply each before drawing the next.

    Mixes insertions (uniform random free pair, random sign),
    removals and sign flips (uniform random existing edge) roughly
    2:1:1, degrading gracefully when a kind is unavailable (empty or
    complete graphs).
    """
    rng = random.Random(seed)
    n = graph.num_vertices
    for _ in range(count):
        kinds: list[str] = []
        if graph.num_edges > 0:
            kinds.extend(["remove", "flip"])
        if n >= 2:
            kinds.extend(["add", "add"])
        if not kinds:
            return
        kind = rng.choice(kinds)
        if kind == "add":
            edit = None
            for _attempt in range(64):
                u = rng.randrange(n)
                v = rng.randrange(n)
                if u != v and not graph.has_edge(u, v):
                    edit = Edit("add", u, v,
                                rng.choice((POSITIVE, NEGATIVE)))
                    break
            if edit is None:
                # Dense graph: fall back to editing an existing edge.
                if graph.num_edges == 0:
                    return
                kind = rng.choice(("remove", "flip"))
        if kind != "add":
            edges = sorted(graph.edges())
            u, v, _sign = edges[rng.randrange(len(edges))]
            edit = Edit(kind, u, v)
        assert edit is not None
        yield edit
