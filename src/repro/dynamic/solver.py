"""The incremental dynamic solver: dirty-ego invalidation + bound cache.

:class:`DynamicSolver` wraps a mutable :class:`~repro.signed.graph.
SignedGraph` and keeps the answer to "what is the maximum structural
balanced clique *now*?" cheap to re-ask as the graph streams edits.
The static MBC* sweep (:func:`repro.core.mbc_star.mbc_star`) already
decomposes the problem into one *ego instance* per vertex ``u`` — the
maximum balanced clique whose lowest-ranked member is ``u``, searched
over ``u``'s higher-ranked neighbours — and the global optimum is the
best anchored optimum over all ``u``.  The dynamic solver makes that
decomposition *persistent*:

* a fixed degeneracy order over **all** vertices is computed once at
  construction.  Any fixed order keeps the decomposition exhaustive
  (every clique has a unique lowest-ranked member), so the order never
  needs to track edits — only the per-ego answers do;
* per vertex ``u`` an :class:`EgoEntry` caches certified bounds
  ``lower <= val(u) <= upper`` plus the witness clique backing
  ``lower``.  Bounds come from the exhaustive-above-floor contract of
  :func:`repro.dichromatic.mdc.solve_mdc` and are unconditionally
  certified (see :func:`repro.parallel.worker.run_dynamic_chunk`), so
  they survive budget truncation and pool failures;
* an edit ``(u, v)`` invalidates exactly the ego instances whose
  candidate cliques can contain both endpoints: a clique through
  ``u`` and ``v`` anchored at ``w`` needs ``u, v ∈ N[w]``, i.e.
  ``w ∈ (N(u) ∩ N(v)) ∪ {u, v}``.  That dirty set is three mask ``&``
  / ``|`` ops on the solver's incrementally-maintained adjacency bits
  — never a graph scan;
* :meth:`DynamicSolver.solve` refreshes the dirty entries (cheap
  candidate-count bounds + witness revalidation), then re-solves only
  the entries whose cached upper bound can still beat the surviving
  incumbent.  Clean entries are pruned by their cached bounds alone.
  When *no* entry can beat the incumbent the solve is skipped
  entirely and the cached result returned.

The re-solve queue deliberately ranges over **all** entries, not just
the dirty ones: a removal can destroy the old optimum, which *lowers*
the bar and may re-expose clean entries whose cached upper bound was
previously beaten.  Their bounds are still certified (their egos did
not change), so re-running them is the bound cache working as
intended, not an invalidation bug.

:meth:`DynamicSolver.beta` maintains the analogous per-ego cache for
the polarization factor ``beta(G) = max_C min(|C_L|, |C_R|)`` with a
bar-raising loop over cached ``gamma`` bounds (the dynamic counterpart
of PF*'s DCC sweep; see ``docs/DYNAMIC.md``).

Mutations **must** go through :meth:`add_edge` / :meth:`remove_edge` /
:meth:`flip_sign` (lint rule R011 enforces this inside the package):
they keep the solver's adjacency bits, the graph's incremental
fingerprint and the dirty sets in lockstep.  Out-of-band edits to the
wrapped graph are detected by fingerprint mismatch at the next
``solve()``/``beta()`` and answered with a full (correct, cache-cold)
rebuild.
"""

from __future__ import annotations

from ..core.result import EMPTY_RESULT, BalancedClique, SolveResult
from ..dichromatic.build import build_dichromatic_network
from ..dichromatic.cores import coloring_upper_bound_active, \
    k_core_active
from ..dichromatic.dcc import dichromatic_clique_witness
from ..dichromatic.mdc import solve_mdc
from ..kernels import engine_spec, validate_engine
from ..kernels.active import degeneracy_ordering_mask
from ..obs import current_tracer
from ..parallel.engine import dynamic_ego_fanout, resolve_workers
from ..parallel.incumbent import SharedIncumbent
from ..parallel.tasks import suffix_masks
from ..parallel.worker import WorkerContext, _dcc_ego_bits, _dcc_ego_np
from ..resilience.budget import Budget, BudgetExceeded
from ..signed.graph import POSITIVE, SignedGraph
from ..unsigned.ordering import HigherRanked

__all__ = ["DynamicSolver", "EgoEntry"]


class EgoEntry:
    """Certified bounds for one cached ego instance.

    ``lower <= val(u) <= upper`` where ``val(u)`` is the target
    quantity anchored at ``u`` — the maximum tau-balanced clique size
    for the solve cache, the maximum anchored polarization for the
    gamma cache.  ``witness`` is the clique backing ``lower`` (``None``
    iff ``lower == 0``); ``upper`` is certified by an exhaustive
    search, a pruning bound, or the cheap candidate-count bound.
    """

    __slots__ = ("lower", "upper", "witness")

    def __init__(self) -> None:
        self.lower = 0
        self.upper = 0
        self.witness: BalancedClique | None = None


class DynamicSolver:
    """Incremental maximum-balanced-clique solver over a mutable graph.

    Parameters mirror :func:`repro.core.mbc_star.mbc_star` where they
    exist there.  ``tau >= 1`` is required: the ``tau = 0`` problem
    degenerates to unsigned maximum clique with single-vertex bases,
    which the ego decomposition's feasibility bounds do not model.

    The solver takes ownership of mutations: edit the graph through
    :meth:`add_edge` / :meth:`remove_edge` / :meth:`flip_sign` only.
    ``solve()`` returns a :class:`~repro.core.result.SolveResult`
    (anytime under a :class:`~repro.resilience.Budget`: truncated
    solves return the certified incumbent, never cache an uncertified
    bound, and resume where they stopped on the next call).
    """

    def __init__(
        self,
        graph: SignedGraph,
        tau: int,
        engine: str = "bitset",
        parallel: int = 0,
        use_core: bool = True,
        use_coloring: bool = True,
    ) -> None:
        if tau < 1:
            raise ValueError(
                f"DynamicSolver requires tau >= 1, got {tau}")
        validate_engine(engine)
        workers = resolve_workers(parallel)
        if workers > 1 and not engine_spec(engine).supports_parallel:
            raise ValueError(
                f"parallel execution requires an engine with parallel "
                f"support; engine {engine!r} is serial-only")
        self._graph = graph
        self._tau = tau
        self._engine = engine
        self._workers = workers
        self._use_core = use_core
        self._use_coloring = use_coloring
        self._rebuild()

    # -- public state --------------------------------------------------

    @property
    def graph(self) -> SignedGraph:
        """The wrapped (live) graph.  Mutate via the solver only."""
        return self._graph

    @property
    def tau(self) -> int:
        """The polarization constraint."""
        return self._tau

    @property
    def dirty_count(self) -> int:
        """Ego instances invalidated since the last ``solve()``."""
        return len(self._dirty)

    @property
    def edits(self) -> int:
        """Edits applied through the solver since construction."""
        return self._edits

    # -- construction / resync -----------------------------------------

    def _rebuild(self) -> None:
        """(Re)prime every cache from the current graph state.

        Runs once at construction and again whenever an out-of-band
        mutation is detected (fingerprint mismatch).  O(n + m) — the
        price of bypassing the mutation API is a cold cache, not a
        wrong answer.
        """
        graph = self._graph
        n = graph.num_vertices
        self._n = n
        # Solver-owned adjacency bits, updated in place per edit; the
        # graph's own lazy caches are invalidated by every mutation
        # and would cost O(m) to rebuild per solve.
        self._pos_bits = list(graph.pos_adjacency_bits())
        self._neg_bits = list(graph.neg_adjacency_bits())
        adjacency = [p | q for p, q in
                     zip(self._pos_bits, self._neg_bits)]
        full_mask = (1 << n) - 1
        self._order = degeneracy_ordering_mask(adjacency, full_mask)
        self._rank = {v: position
                      for position, v in enumerate(self._order)}
        self._allowed = suffix_masks(self._order)
        self._entries = [EgoEntry() for _ in range(n)]
        self._dirty: set[int] = set()
        for u in range(n):
            self._refresh_entry(u)
        self._gamma: list[EgoEntry] | None = None
        self._gamma_dirty: set[int] = set()
        self._result: SolveResult | None = None
        self._edits = 0
        self._fingerprint = graph.fingerprint()

    def _sync_external(self) -> None:
        """Full rebuild if the graph was mutated behind our back."""
        if self._graph.fingerprint() != self._fingerprint:
            current_tracer().counter("dynamic.resyncs").inc()
            self._rebuild()

    # -- mutation API --------------------------------------------------

    def add_edge(self, u: int, v: int, sign: int) -> bool:
        """Insert edge ``(u, v)``; returns False for a same-sign
        duplicate (a no-op, nothing is invalidated).

        Raises exactly what :meth:`SignedGraph.add_edge` raises —
        validation happens before any solver state is touched.
        """
        self._check_pair(u, v)
        if u != v and self._graph.sign(u, v) == sign:
            return False
        with current_tracer().span("edit", kind="add", u=u, v=v):
            self._graph.add_edge(u, v, sign)
            bits = self._pos_bits if sign == POSITIVE else \
                self._neg_bits
            bits[u] |= 1 << v
            bits[v] |= 1 << u
            self._record_edit(u, v)
        return True

    def remove_edge(self, u: int, v: int) -> int:
        """Delete edge ``(u, v)``; returns the sign it had.

        Raises ``KeyError`` when no edge joins ``u`` and ``v``.
        """
        self._check_pair(u, v)
        sign = self._graph.sign(u, v)
        with current_tracer().span("edit", kind="remove", u=u, v=v):
            self._graph.remove_edge(u, v)  # raises if sign is None
            bits = self._pos_bits if sign == POSITIVE else \
                self._neg_bits
            bits[u] &= ~(1 << v)
            bits[v] &= ~(1 << u)
            self._record_edit(u, v)
        assert sign is not None
        return sign

    def flip_sign(self, u: int, v: int) -> int:
        """Toggle the sign of edge ``(u, v)``; returns the new sign.

        Raises ``KeyError`` when no edge joins ``u`` and ``v``.
        """
        self._check_pair(u, v)
        with current_tracer().span("edit", kind="flip", u=u, v=v):
            self._graph.flip_sign(u, v)  # raises if absent
            new_sign = self._graph.sign(u, v)
            source, target = (
                (self._neg_bits, self._pos_bits)
                if new_sign == POSITIVE
                else (self._pos_bits, self._neg_bits))
            source[u] &= ~(1 << v)
            source[v] &= ~(1 << u)
            target[u] |= 1 << v
            target[v] |= 1 << u
            self._record_edit(u, v)
        assert new_sign is not None
        return new_sign

    def _check_pair(self, u: int, v: int) -> None:
        """Reject out-of-range endpoints before anything mutates.

        The graph's own mutators index adjacency lists directly, so a
        negative id would silently wrap — and the solver's mask
        updates must never run against ids its bit tables do not
        cover.
        """
        n = self._n
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(
                f"edge ({u}, {v}) out of range for n={n}")

    def _record_edit(self, u: int, v: int) -> None:
        """Mark the ego instances an edit of ``(u, v)`` can affect.

        A clique through both endpoints anchored at ``w`` needs
        ``u, v ∈ N[w]``, i.e. ``w`` a common neighbour of ``u`` and
        ``v`` — or an endpoint itself.  The common-neighbour mask is
        identical before and after editing the ``(u, v)`` edge itself
        (``u ∉ N(u)``, and ``u ∈ N(v)`` only matters for ``w = u``,
        covered explicitly), so marking after the bit update is safe.
        """
        self._edits += 1
        self._fingerprint = self._graph.fingerprint()
        self._result = None
        adjacency_u = self._pos_bits[u] | self._neg_bits[u]
        adjacency_v = self._pos_bits[v] | self._neg_bits[v]
        rest = (adjacency_u & adjacency_v) | (1 << u) | (1 << v)
        marked = 0
        while rest:
            low = rest & -rest
            rest ^= low
            w = low.bit_length() - 1
            self._dirty.add(w)
            if self._gamma is not None:
                self._gamma_dirty.add(w)
            marked += 1
        tracer = current_tracer()
        tracer.counter("dynamic.edits").inc()
        tracer.counter("dynamic.egos_invalidated").inc(marked)

    # -- cache refresh -------------------------------------------------

    def _revalidate(self, witness: BalancedClique,
                    check_tau: bool) -> BalancedClique | None:
        """Re-derive a cached witness against the current graph.

        The vertex set and the (static) order pin the anchor, so only
        cliqueness, balance, and (for the solve cache) the tau
        constraint can have been broken by edits; sides are recomputed
        because a sign flip can re-split a still-balanced clique.
        """
        try:
            rebuilt = BalancedClique.from_vertices(
                self._graph, witness.vertices)
        except ValueError:
            return None
        if check_tau and not rebuilt.satisfies(self._tau):
            return None
        return rebuilt

    def _refresh_entry(self, u: int) -> None:
        """Recompute ``u``'s cheap certified bounds (mask ops only)."""
        entry = self._entries[u]
        allowed = self._allowed[u]
        pos_count = (self._pos_bits[u] & allowed).bit_count()
        neg_count = (self._neg_bits[u] & allowed).bit_count()
        tau = self._tau
        if pos_count < tau - 1 or neg_count < tau:
            entry.upper = 0
        else:
            entry.upper = pos_count + neg_count + 1
        witness = entry.witness
        if witness is not None:
            witness = self._revalidate(witness, check_tau=True)
        entry.witness = witness
        entry.lower = witness.size if witness is not None else 0

    def _refresh_gamma(self, u: int) -> None:
        """Recompute ``u``'s cheap gamma bounds (mask ops only)."""
        assert self._gamma is not None
        entry = self._gamma[u]
        allowed = self._allowed[u]
        pos_count = (self._pos_bits[u] & allowed).bit_count()
        neg_count = (self._neg_bits[u] & allowed).bit_count()
        # Anchored polarization: u's side has at most pos_count + 1
        # members, the other side at most neg_count.
        entry.upper = min(pos_count + 1, neg_count)
        witness = entry.witness
        if witness is not None:
            witness = self._revalidate(witness, check_tau=False)
        entry.witness = witness
        entry.lower = (witness.polarization
                       if witness is not None else 0)

    def _best_witness(self) -> BalancedClique:
        """The largest surviving cached witness (the live incumbent)."""
        best = EMPTY_RESULT
        for entry in self._entries:
            witness = entry.witness
            if witness is not None and witness.size > best.size:
                best = witness
        return best

    # -- solve ---------------------------------------------------------

    def solve(self, budget: Budget | None = None) -> SolveResult:
        """The maximum balanced clique of the *current* graph.

        Refreshes dirty entries, re-solves only the ego instances
        whose certified upper bound beats the surviving incumbent,
        and skips everything when none can.  Under a ``budget`` the
        solve is anytime: unprocessed egos keep their (certified)
        cheap bounds and are retried by the next call; a bound is
        only ever cached when its certificate was delivered.
        """
        tracer = current_tracer()
        self._sync_external()
        with tracer.span(
                "dynamic_solve", n=self._n, tau=self._tau,
                engine=self._engine, dirty=len(self._dirty)) as span:
            if not self._dirty and self._result is not None \
                    and self._result.optimal:
                tracer.counter("dynamic.solves_skipped").inc()
                span.set(skipped=True, size=self._result.clique.size)
                return self._result
            for u in sorted(self._dirty):
                self._refresh_entry(u)
            self._dirty.clear()
            best = self._best_witness()
            required = max(best.size + 1, 2 * self._tau)
            queue = [
                u for u in reversed(self._order)
                if self._entries[u].upper >= required
                and self._entries[u].upper > self._entries[u].lower]
            tracer.counter("dynamic.egos_reused").inc(
                self._n - len(queue))
            tracer.counter("dynamic.egos_resolved").inc(len(queue))
            if not queue:
                tracer.counter("dynamic.solves_skipped").inc()
                result = SolveResult.capture(best, budget)
                span.set(skipped=True, size=best.size)
                self._result = result
                return result
            if self._engine == "set":
                completed = self._solve_serial_set(
                    queue, best.size, budget)
            else:
                completed = self._solve_fanout(
                    queue, best.size, budget)
            best = self._best_witness()
            result = SolveResult.capture(best, budget)
            span.set(size=best.size, resolved=len(queue),
                     completed=completed)
            self._result = result
            return result

    def _solve_fanout(self, queue: list[int], floor: int,
                      budget: Budget | None) -> bool:
        """Re-solve ``queue`` through the parallel dispatch machinery.

        Runs in-process below the pool thresholds (including always at
        ``workers == 1``), so bitset and numpy share one code path
        with the pooled case.  Returns whether every queued ego was
        processed; outcomes are committed as delivered either way.
        """
        work_estimate = 0
        for u in queue:
            allowed = self._allowed[u]
            cost = (self._pos_bits[u] & allowed).bit_count() + \
                (self._neg_bits[u] & allowed).bit_count()
            work_estimate += cost * cost
        outcomes, completed = dynamic_ego_fanout(
            self._pos_bits, self._neg_bits, self._n, self._tau,
            floor, queue, self._order, self._workers,
            work_estimate=work_estimate, use_core=self._use_core,
            use_coloring=self._use_coloring, budget=budget,
            engine=self._engine)
        for u, upper, members in outcomes:
            entry = self._entries[u]
            if members is None:
                entry.upper = min(entry.upper, upper)
                continue
            left = {u}
            right: set[int] = set()
            for vertex, is_left in members:
                (left if is_left else right).add(vertex)
            witness = BalancedClique.from_sides(left, right)
            entry.witness = witness
            # solve_mdc is exhaustive above its floor, so a delivered
            # witness pins val(u) exactly.
            entry.lower = entry.upper = witness.size
        return completed

    def _solve_serial_set(self, queue: list[int], floor: int,
                          budget: Budget | None) -> bool:
        """Serial set-engine re-solve (the reference path).

        Mirrors the MBC* serial sweep body, but commits a certified
        upper bound per ego instead of only tracking the incumbent.
        Returns whether every queued ego was processed.
        """
        graph = self._graph
        tau = self._tau
        tracer = current_tracer()
        best_size = floor
        for u in queue:
            if budget is not None:
                try:
                    budget.check()
                except BudgetExceeded:
                    return False
            entry = self._entries[u]
            required = max(best_size + 1, 2 * tau)
            if entry.upper < required:
                continue
            with tracer.span("ego", v=u) as ego:
                allowed = HigherRanked(self._rank, self._rank[u])
                network = build_dichromatic_network(graph, u, allowed)
                if network.num_vertices + 1 < required:
                    entry.upper = min(
                        entry.upper, network.num_vertices + 1)
                    ego.set(pruned="size")
                    continue
                active = set(network.vertices())
                if self._use_core:
                    active = k_core_active(
                        network, required - 2, active)
                if len(active) + 1 < required:
                    # A clique of size required - 1 can live outside
                    # the (required - 2)-core, so the prune certifies
                    # required - 1 and nothing tighter.
                    entry.upper = min(entry.upper, required - 1)
                    ego.set(pruned="core")
                    continue
                if self._use_coloring:
                    bound = coloring_upper_bound_active(
                        network, active)
                    if bound < required - 1:
                        entry.upper = min(entry.upper, required - 1)
                        ego.set(pruned="color")
                        continue
                try:
                    found = solve_mdc(
                        network, tau - 1, tau,
                        must_exceed=required - 2, active=active,
                        use_coloring=self._use_coloring,
                        use_core=self._use_core, engine="set",
                        budget=budget)
                except BudgetExceeded:
                    # Mid-instance truncation certifies nothing for
                    # u: keep the cheap bound, retry next call.
                    return False
                ego.set(found=found is not None)
                if found is None:
                    entry.upper = min(entry.upper, required - 1)
                    continue
                left = {u}
                right: set[int] = set()
                for vertex in found:
                    origin = network.origin[vertex]
                    (left if network.is_left[vertex]
                     else right).add(origin)
                witness = BalancedClique.from_sides(left, right)
                entry.witness = witness
                entry.lower = entry.upper = witness.size
                if witness.size > best_size:
                    best_size = witness.size
        return True

    # -- beta ----------------------------------------------------------

    def beta(
        self,
        budget: Budget | None = None,
        return_witness: bool = False,
    ) -> "int | tuple[int, BalancedClique]":
        """The polarization factor ``beta(G)`` of the current graph.

        Maintains a second per-ego cache of certified gamma bounds
        (the maximum anchored polarization), invalidated by the same
        dirty events, and raises the bar with one DCC question per
        step — each failure certifies an upper bound that outlives
        the call.  Under a ``budget`` the returned bar is always
        witness-certified (a valid lower bound on ``beta(G)``) and
        the loop resumes from the cached bounds next call.

        With ``return_witness`` the certifying clique comes back
        alongside the factor (mirroring
        :func:`~repro.core.pf.pf_star`): the cached gamma witness
        whose polarization equals the returned bar, or the empty
        clique at ``bar == 0``.
        """
        tracer = current_tracer()
        self._sync_external()
        with tracer.span("dynamic_beta", n=self._n,
                         dirty=len(self._gamma_dirty)) as span:
            if self._gamma is None:
                self._gamma = [EgoEntry() for _ in range(self._n)]
                self._gamma_dirty.clear()
                for u in range(self._n):
                    self._refresh_gamma(u)
            else:
                for u in sorted(self._gamma_dirty):
                    self._refresh_gamma(u)
                self._gamma_dirty.clear()
            gamma = self._gamma
            bar = 0
            for entry in gamma:
                if entry.lower > bar:
                    bar = entry.lower
            probe_ctx = self._probe_context()
            candidates = [u for u in range(self._n)
                          if gamma[u].upper > bar]
            questions = 0
            truncated = False
            while candidates:
                if budget is not None:
                    try:
                        budget.check()
                    except BudgetExceeded:
                        truncated = True
                        break
                # Most-promising first: the highest cached upper bound
                # is the entry that can raise the bar the furthest.
                pick = max(candidates,
                           key=lambda u: (gamma[u].upper, -u))
                questions += 1
                try:
                    witness = self._gamma_question(
                        probe_ctx, pick, bar, budget)
                except BudgetExceeded:
                    truncated = True
                    break
                entry = gamma[pick]
                if witness is None:
                    # No anchored clique with polarization > bar.
                    entry.upper = bar
                else:
                    entry.witness = witness
                    entry.lower = witness.polarization
                    bar = max(bar, entry.lower)
                candidates = [u for u in candidates
                              if gamma[u].upper > bar]
            tracer.counter("dynamic.gamma_questions").inc(questions)
            span.set(beta=bar, questions=questions,
                     truncated=truncated)
            if not return_witness:
                return bar
            return bar, self._beta_witness(gamma, bar)

    @staticmethod
    def _beta_witness(gamma: "list[EgoEntry]",
                      bar: int) -> BalancedClique:
        """The cached gamma witness backing ``bar``.

        Every raise of the bar stored the clique that achieved it
        (``lower == witness.polarization``), so at ``bar > 0`` a
        match always exists; ``bar == 0`` is backed by the empty
        clique.
        """
        if bar > 0:
            for entry in gamma:
                witness = entry.witness
                if witness is not None \
                        and witness.polarization == bar:
                    return witness
        return EMPTY_RESULT

    def _probe_context(self) -> WorkerContext | None:
        """In-process worker context for the mask-engine DCC probes.

        Built per ``beta()`` call: the suffix table is one O(n) pass,
        and the numpy path's matrices must reflect the current bits.
        The set engine probes the live graph directly and needs none.
        """
        if self._engine == "set":
            return None
        return WorkerContext(
            self._pos_bits, self._neg_bits, self._n, self._tau,
            self._order, SharedIncumbent(0), engine=self._engine)

    def _gamma_question(
        self,
        probe_ctx: WorkerContext | None,
        u: int,
        bar: int,
        budget: Budget | None,
    ) -> BalancedClique | None:
        """Does an anchored clique at ``u`` beat polarization ``bar``?

        Asks DCC for ``bar`` same-side and ``bar + 1`` opposite-side
        candidates in ``g_u``; with ``u`` added, a witness has
        polarization at least ``bar + 1``.  Failure certifies that no
        anchored clique exceeds ``bar`` (the contrapositive), which
        the caller caches as ``upper = bar``.
        """
        tracer = current_tracer()
        if probe_ctx is None:
            allowed_u = self._allowed[u]
            if ((self._pos_bits[u] & allowed_u).bit_count() < bar
                    or (self._neg_bits[u] & allowed_u).bit_count()
                    < bar + 1):
                return None
            allowed = HigherRanked(self._rank, self._rank[u])
            network = build_dichromatic_network(
                self._graph, u, allowed)
            found = dichromatic_clique_witness(
                network, bar, bar + 1, engine="set", budget=budget)
        else:
            probe = _dcc_ego_np if self._engine == "numpy" \
                else _dcc_ego_bits
            with tracer.span("ego", v=u) as ego:
                _pruned, network, found = probe(
                    probe_ctx, u, bar, None, tracer, ego)
        if found is None or network is None:
            return None
        left = {u}
        right: set[int] = set()
        for vertex in found:
            origin = network.origin[vertex]
            (left if network.is_left[vertex] else right).add(origin)
        return BalancedClique.from_sides(left, right)
