"""Kernel layer for the branch-and-bound hot path.

Three interchangeable engines implement the per-node search kernels
(intersection, degree counting, k-core / bicore peeling, colouring
bound) behind the solver-facing ``engine=`` seam:

* ``"set"`` — the original adjacency-set implementation, kept for
  differential testing and the ablation benchmarks;
* ``"bitset"`` — vertex subsets packed into arbitrary-precision ints
  (:mod:`repro.kernels.bitset` + :mod:`repro.kernels.active`);
* ``"numpy"`` — contiguous uint64 mask matrices with vectorised
  popcount and batch peeling (:mod:`repro.kernels.npmask`); optional,
  gated on numpy being importable.

Engines are described by :class:`EngineSpec` records in
:data:`ENGINE_REGISTRY` — the single lookup that
:func:`validate_engine`, the CLI ``--engine`` choices, the benchmarks
and the differential test matrix all consume.
"""

from dataclasses import dataclass, field
from typing import Callable

from . import npmask
from .active import (
    active_edge_count_mask,
    bicore_active_mask,
    coloring_upper_bound_active_mask,
    degeneracy_ordering_mask,
    degree_in_active,
    intersect_active,
    k_core_active_mask,
)
from .bitset import (
    adjacency_masks,
    bits_of,
    full_mask,
    is_subset,
    iter_bits,
    left_side_mask,
    lowest_set_bit,
    mask_of,
    popcount,
)


def _always() -> bool:
    return True


@dataclass(frozen=True)
class EngineSpec:
    """Capability descriptor for one kernel backend.

    ``probe`` answers whether the backend is usable in this
    interpreter (e.g. whether numpy imported); ``requirement`` names
    what to install when it is not.  ``supports_parallel`` gates the
    multiprocessing fan-out — an engine qualifies only if its
    adjacency state survives the pack/unpack worker boundary.
    """

    name: str
    description: str
    representation: str
    supports_parallel: bool
    probe: Callable[[], bool] = field(default=_always, repr=False)
    requirement: str | None = None

    def available(self) -> bool:
        """Whether the backend is usable in this interpreter."""
        return self.probe()


ENGINE_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add a backend to :data:`ENGINE_REGISTRY` (insertion-ordered)."""
    ENGINE_REGISTRY[spec.name] = spec
    return spec


register_engine(EngineSpec(
    name="set",
    description="adjacency-set reference implementation",
    representation="frozenset neighbourhoods, set candidate pools",
    supports_parallel=False,
))
register_engine(EngineSpec(
    name="bitset",
    description="arbitrary-precision int masks",
    representation="one Python int per vertex subset",
    supports_parallel=True,
))
register_engine(EngineSpec(
    name="numpy",
    description="vectorised uint64 mask matrices",
    representation="(n, ceil(n/64)) uint64 matrix + uint64 rows",
    supports_parallel=True,
    probe=lambda: npmask.HAVE_NUMPY,
    requirement="numpy (pip install repro[numpy])",
))

#: Registered backend names, registration order.  Membership does not
#: imply availability — see :func:`available_engines`.
ENGINES = tuple(ENGINE_REGISTRY)
DEFAULT_ENGINE = "bitset"


def engine_spec(engine: str) -> EngineSpec:
    """Look up a backend descriptor, or raise for unknown names."""
    spec = ENGINE_REGISTRY.get(engine)
    if spec is None:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    return spec


def available_engines() -> tuple[str, ...]:
    """Names of the backends usable in this interpreter."""
    return tuple(
        name for name, spec in ENGINE_REGISTRY.items()
        if spec.available())


def validate_engine(engine: str) -> str:
    """Check an ``engine`` switch value, returning it unchanged.

    Raises ``ValueError`` for names missing from the registry, and for
    registered backends whose runtime requirement is absent (with the
    requirement spelled out — e.g. ``engine="numpy"`` without numpy).
    """
    spec = engine_spec(engine)
    if not spec.available():
        raise ValueError(
            f"engine {engine!r} is not available in this environment; "
            f"it requires {spec.requirement or 'an optional dependency'}")
    return engine


__all__ = [
    "EngineSpec",
    "ENGINE_REGISTRY",
    "register_engine",
    "engine_spec",
    "available_engines",
    "ENGINES",
    "DEFAULT_ENGINE",
    "validate_engine",
    "active_edge_count_mask",
    "bicore_active_mask",
    "coloring_upper_bound_active_mask",
    "degeneracy_ordering_mask",
    "degree_in_active",
    "intersect_active",
    "k_core_active_mask",
    "adjacency_masks",
    "bits_of",
    "full_mask",
    "is_subset",
    "iter_bits",
    "left_side_mask",
    "lowest_set_bit",
    "mask_of",
    "popcount",
    "npmask",
]
