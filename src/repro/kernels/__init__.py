"""Bitset kernel layer for the branch-and-bound hot path.

``bitset`` packs vertex subsets into arbitrary-precision ints;
``active`` provides mask variants of the per-node search kernels
(intersection, degree counting, k-core / bicore peeling, colouring
bound).  The ``engine="bitset"`` code paths of
:func:`repro.dichromatic.mdc.solve_mdc`, DCC, MBC*, PF* and gMBC* are
built entirely on these primitives.
"""

from .active import (
    active_edge_count_mask,
    bicore_active_mask,
    coloring_upper_bound_active_mask,
    degeneracy_ordering_mask,
    degree_in_active,
    intersect_active,
    k_core_active_mask,
)
from .bitset import (
    adjacency_masks,
    bits_of,
    full_mask,
    is_subset,
    iter_bits,
    left_side_mask,
    lowest_set_bit,
    mask_of,
    popcount,
)

ENGINES = ("set", "bitset")
DEFAULT_ENGINE = "bitset"


def validate_engine(engine: str) -> str:
    """Check an ``engine`` switch value, returning it unchanged."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "validate_engine",
    "active_edge_count_mask",
    "bicore_active_mask",
    "coloring_upper_bound_active_mask",
    "degeneracy_ordering_mask",
    "degree_in_active",
    "intersect_active",
    "k_core_active_mask",
    "adjacency_masks",
    "bits_of",
    "full_mask",
    "is_subset",
    "iter_bits",
    "left_side_mask",
    "lowest_set_bit",
    "mask_of",
    "popcount",
]
