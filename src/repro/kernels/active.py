"""Bitset variants of the branch-and-bound hot kernels.

These are the four primitives every MDC/DCC node executes — candidate
intersection, degree-in-active counting, k-core peeling and the greedy
colouring bound — plus the ``(tau_L, tau_R)``-bicore used by DCC.  Each
takes the adjacency as ``list[int]`` masks (see
:mod:`repro.kernels.bitset`) and the active candidate set as one int
mask, and touches no graph objects at all, so a graph only pays the
mask-building cost once and every node after that runs on word-parallel
integer ops.

Semantics mirror the set implementations in
:mod:`repro.dichromatic.cores` exactly (the differential engine tests
assert this); only tie-breaking inside the greedy colouring order may
differ, which affects neither soundness nor the search result.
"""

from __future__ import annotations

__all__ = [
    "intersect_active",
    "degree_in_active",
    "k_core_active_mask",
    "bicore_active_mask",
    "coloring_upper_bound_active_mask",
    "first_fit_color_count",
    "active_edge_count_mask",
    "degeneracy_ordering_mask",
]


def intersect_active(adj: list[int], v: int, active: int) -> int:
    """Candidate-set intersection ``N(v) ∩ active`` as a mask."""
    return adj[v] & active


def degree_in_active(adj: list[int], v: int, active: int) -> int:
    """``|N(v) ∩ active|``."""
    return (adj[v] & active).bit_count()


def k_core_active_mask(adj: list[int], k: int, active: int) -> int:
    """Label-blind ``k``-core of the subgraph induced by ``active``.

    Peels with an explicit stack and incrementally maintained degrees;
    a vertex is (re-)pushed exactly when its degree first drops below
    ``k``.  Returns the surviving vertex set as a mask.
    """
    if k <= 0 or not active:
        return active
    alive = active
    degree = [0] * len(adj)
    stack: list[int] = []
    rest = active
    while rest:
        low = rest & -rest
        rest ^= low
        v = low.bit_length() - 1
        d = (adj[v] & active).bit_count()
        degree[v] = d
        if d < k:
            stack.append(v)
    while stack:
        v = stack.pop()
        bit = 1 << v
        if not (alive & bit):
            continue
        alive ^= bit
        rest = adj[v] & alive
        while rest:
            low = rest & -rest
            rest ^= low
            u = low.bit_length() - 1
            du = degree[u] - 1
            degree[u] = du
            if du == k - 1:
                stack.append(u)
    return alive


def bicore_active_mask(
    adj: list[int],
    left_mask: int,
    tau_l: int,
    tau_r: int,
    active: int,
) -> int:
    """``(tau_L, tau_R)``-core of the subgraph induced by ``active``.

    Mask analogue of :func:`repro.dichromatic.cores.bicore_active`:
    every surviving L-vertex keeps ``>= tau_L - 1`` L-neighbours and
    ``>= tau_R`` R-neighbours, every surviving R-vertex ``>= tau_L``
    L-neighbours and ``>= tau_R - 1`` R-neighbours.  Negative
    thresholds are treated as zero.
    """
    tau_l = max(tau_l, 0)
    tau_r = max(tau_r, 0)
    if (tau_l == 0 and tau_r == 0) or not active:
        return active
    alive = active
    left_deg = [0] * len(adj)
    right_deg = [0] * len(adj)

    def violates(v: int) -> bool:
        if left_mask & (1 << v):
            return left_deg[v] < tau_l - 1 or right_deg[v] < tau_r
        return left_deg[v] < tau_l or right_deg[v] < tau_r - 1

    stack: list[int] = []
    queued = 0
    rest = active
    while rest:
        low = rest & -rest
        rest ^= low
        v = low.bit_length() - 1
        nb = adj[v] & active
        l_count = (nb & left_mask).bit_count()
        left_deg[v] = l_count
        right_deg[v] = nb.bit_count() - l_count
        if violates(v):
            stack.append(v)
            queued |= low
    while stack:
        v = stack.pop()
        bit = 1 << v
        if not (alive & bit):
            continue
        alive ^= bit
        v_left = bool(left_mask & bit)
        rest = adj[v] & alive
        while rest:
            low = rest & -rest
            rest ^= low
            u = low.bit_length() - 1
            if v_left:
                left_deg[u] -= 1
            else:
                right_deg[u] -= 1
            if not (queued & low) and violates(u):
                stack.append(u)
                queued |= low
    return alive


def coloring_upper_bound_active_mask(adj: list[int], active: int) -> int:
    """Greedy-colouring clique bound over ``active`` (``colorUB``).

    Vertices are processed in non-increasing degree-in-active order and
    each takes the first colour class it does not conflict with; a
    colour class is itself a mask, so the conflict test is one ``&``.
    """
    if not active:
        return 0
    ranked: list[tuple[int, int]] = []
    rest = active
    while rest:
        low = rest & -rest
        rest ^= low
        v = low.bit_length() - 1
        ranked.append((-(adj[v] & active).bit_count(), v))
    ranked.sort()
    return first_fit_color_count(adj, [v for _neg_degree, v in ranked])


def first_fit_color_count(adj: list[int], order: list[int]) -> int:
    """First-fit greedy placement: number of colour classes used.

    Shared placement loop of the colouring bound — each vertex of
    ``order`` takes the first colour class its neighbourhood misses; a
    class is a single mask, so the conflict test is one ``&``.  The
    numpy engine computes the degree order vectorised and feeds the
    same loop (:func:`repro.kernels.npmask.coloring_upper_bound_active`),
    which keeps the two engines' bounds equal by construction.
    """
    color_masks: list[int] = []
    for v in order:
        neighbors = adj[v]
        bit = 1 << v
        for i, members in enumerate(color_masks):
            if not (neighbors & members):
                color_masks[i] = members | bit
                break
        else:
            color_masks.append(bit)
    return len(color_masks)


def degeneracy_ordering_mask(adj: list[int], active: int) -> list[int]:
    """Smallest-first (degeneracy) ordering of ``active``.

    Mask analogue of :func:`repro.unsigned.ordering.degeneracy_ordering`
    with the same lazy bucket-queue scheme.  Tie-breaking (and hence the
    exact order) may differ from the set implementation — any valid
    degeneracy order is acceptable to the callers.
    """
    if not active:
        return []
    # Extract neighbour lists once — the peel itself then runs entirely
    # on machine-word ints (a wide-mask op per *edge* would dominate on
    # sparse graphs).
    n = len(adj)
    members: list[int] = []
    rest = active
    while rest:
        low = rest & -rest
        rest ^= low
        members.append(low.bit_length() - 1)
    neigh: list[list[int]] = [[]] * n
    degree = [0] * n
    max_degree = 0
    for v in members:
        lst: list[int] = []
        rest = adj[v] & active
        while rest:
            low = rest & -rest
            rest ^= low
            lst.append(low.bit_length() - 1)
        neigh[v] = lst
        d = len(lst)
        degree[v] = d
        if d > max_degree:
            max_degree = d
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for v in members:
        buckets[degree[v]].append(v)
    pointer = [0] * (max_degree + 1)
    removed = bytearray(n)
    order: list[int] = []
    scan_from = 0
    total = len(members)
    while len(order) < total:
        d = scan_from
        while d <= max_degree and pointer[d] >= len(buckets[d]):
            d += 1
        if d > max_degree:
            break
        v = buckets[d][pointer[d]]
        pointer[d] += 1
        if removed[v] or degree[v] != d:
            continue
        scan_from = max(0, d - 1)
        removed[v] = 1
        order.append(v)
        for u in neigh[v]:
            if not removed[u]:
                du = degree[u] - 1
                degree[u] = du
                buckets[du].append(u)
    return order


def active_edge_count_mask(adj: list[int], active: int) -> int:
    """Number of edges of the subgraph induced by ``active``."""
    total = 0
    rest = active
    while rest:
        low = rest & -rest
        rest ^= low
        total += (adj[low.bit_length() - 1] & active).bit_count()
    return total // 2
