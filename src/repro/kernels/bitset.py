"""Bitset vertex-set representation.

A vertex subset of a graph over ids ``0..n-1`` is packed into a single
arbitrary-precision Python ``int``: bit ``v`` is set iff vertex ``v`` is
a member.  CPython stores these as arrays of 30-bit digits, so the three
primitives the branch-and-bound leans on all become word-parallel:

* intersection          — ``a & b``          (one C loop over digits),
* cardinality           — ``mask.bit_count()`` (popcount per digit),
* membership / removal  — ``mask & (1 << v)`` / ``mask & ~(1 << v)``.

An adjacency structure is simply ``list[int]`` — one neighbourhood mask
per vertex — built once per graph by :func:`adjacency_masks` and cached
by the graph classes (``DichromaticGraph.adjacency_bits`` /
``UnsignedGraph.adjacency_bits``).

This module is deliberately free of any graph-class imports so the
kernel layer never participates in import cycles (:mod:`repro.obs`
sits *below* the kernels and is the one sanctioned exception — the
mask builders report their cost to the ambient tracer).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..obs import current_tracer

__all__ = [
    "mask_of",
    "full_mask",
    "iter_bits",
    "bits_of",
    "popcount",
    "is_subset",
    "lowest_set_bit",
    "adjacency_masks",
    "left_side_mask",
    "mask_stride",
    "masks_to_bytes",
    "masks_from_bytes",
]


def mask_of(vertices: Iterable[int]) -> int:
    """Pack an iterable of vertex ids into a bitmask."""
    mask = 0
    for v in vertices:
        mask |= 1 << v
    return mask


def full_mask(n: int) -> int:
    """Mask with bits ``0..n-1`` all set (the whole vertex set)."""
    return (1 << n) - 1


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_of(mask: int) -> list[int]:
    """The set bit positions of ``mask`` as an ascending list."""
    return list(iter_bits(mask))


def popcount(mask: int) -> int:
    """Number of set bits (thin alias kept for call-site readability)."""
    return mask.bit_count()


def is_subset(a: int, b: int) -> bool:
    """Whether every member of ``a`` is a member of ``b``."""
    return not (a & ~b)


def lowest_set_bit(mask: int) -> int:
    """Smallest vertex id in a non-empty mask."""
    if not mask:
        raise ValueError("empty mask has no lowest bit")
    return (mask & -mask).bit_length() - 1


def adjacency_masks(neighborhoods: Sequence[Iterable[int]]) -> list[int]:
    """Per-vertex neighbourhood masks from per-vertex neighbour sets."""
    with current_tracer().span("adjacency_masks", n=len(neighborhoods)):
        return [mask_of(adj) for adj in neighborhoods]


def left_side_mask(is_left: Sequence[bool]) -> int:
    """Mask of the L-side of a dichromatic graph's label array."""
    mask = 0
    for v, flag in enumerate(is_left):
        if flag:
            mask |= 1 << v
    return mask


def mask_stride(n: int) -> int:
    """Bytes needed to store one mask over vertex ids ``0..n-1``."""
    return max((n + 7) // 8, 1)


def masks_to_bytes(masks: Sequence[int], n: int) -> bytes:
    """Pack an adjacency mask list into one fixed-stride byte blob.

    The parallel engine ships graphs to worker processes in this form:
    ``n`` masks of ``mask_stride(n)`` bytes each, little-endian.  The
    blob is a flat ``bytes`` object, so pickling it costs one memcpy
    instead of one arbitrary-precision-int reduction per vertex.
    """
    with current_tracer().span("masks_to_bytes", n=n):
        stride = mask_stride(n)
        return b"".join(
            mask.to_bytes(stride, "little") for mask in masks)


def masks_from_bytes(blob: bytes, n: int) -> list[int]:
    """Inverse of :func:`masks_to_bytes`."""
    with current_tracer().span("masks_from_bytes", n=n):
        stride = mask_stride(n)
        if len(blob) != stride * n and n > 0:
            raise ValueError(
                f"blob of {len(blob)} bytes does not hold {n} masks "
                f"of stride {stride}")
        return [
            int.from_bytes(blob[i * stride:(i + 1) * stride], "little")
            for i in range(n)]
