"""uint64 mask-matrix kernel backend (``engine="numpy"``).

The third adjacency engine.  Where :mod:`repro.kernels.bitset` packs a
vertex subset into one arbitrary-precision Python int, this backend
stores the whole adjacency structure as a contiguous
``(n, ceil(n/64))`` uint64 **mask matrix** — row ``v`` is the
neighbourhood mask of vertex ``v`` — and a vertex subset as one
``(ceil(n/64),)`` uint64 **row**.  Set algebra is then elementwise
``&``/``|``/``^`` over machine words, cardinality is a vectorised
popcount (:data:`numpy.bitwise_count` where available, a branch-free
SWAR fallback otherwise), and the peeling kernels strip whole
frontiers per iteration instead of popping one vertex at a time.

Word layout is little-endian throughout — bit ``v`` of a row lives in
word ``v >> 6`` at position ``v & 63`` — which makes the byte image of
a row identical to ``mask.to_bytes(..., "little")`` of the equivalent
int mask.  The blob converters therefore share their wire format with
:func:`repro.kernels.bitset.masks_to_bytes` (stride
``mask_stride(n)`` bytes per vertex), so a spawned worker can rebuild
its matrices straight from the shipped blob without re-packing Python
ints (:func:`matrix_from_bytes`).

numpy itself is an *optional* extra (``pip install repro[numpy]``).
The module always imports — :data:`HAVE_NUMPY` records whether the
backend is usable, and :func:`repro.kernels.validate_engine` refuses
``engine="numpy"`` with a clear error when it is not.

Vectorisation discipline is enforced by lint rule R010: no
Python-level ``for`` loop may iterate the rows of a ``Matrix``/``Row``
value in this module (see ``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..obs import current_tracer
from .active import first_fit_color_count
from .bitset import mask_stride

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

    #: ``(n, words_for(n))`` uint64 adjacency mask matrix.
    Matrix = NDArray[np.uint64]
    #: ``(words_for(n),)`` uint64 vertex-set mask row.
    Row = NDArray[np.uint64]
    BoolArray = NDArray[np.bool_]
    IntArray = NDArray[np.int64]

__all__ = [
    "HAVE_NUMPY",
    "words_for",
    "popcount_words",
    "full_row",
    "unit_row",
    "row_from_mask",
    "mask_from_row",
    "row_count",
    "row_bool",
    "row_indices",
    "bool_to_row",
    "set_bit",
    "clear_bit",
    "test_bit",
    "matrix_from_masks",
    "masks_from_matrix",
    "matrix_from_bools",
    "induced_bool",
    "matrix_to_bytes",
    "matrix_from_bytes",
    "dichromatic_adjacency",
    "matrix_edge_count",
    "suffix_rows",
    "degrees_in_active",
    "subtract_members",
    "argmin_active",
    "argmax_active",
    "intersect_active",
    "degree_in_active",
    "k_core_active",
    "bicore_active",
    "coloring_upper_bound_active",
    "degeneracy_ordering",
    "active_edge_count",
]

#: Whether the backend is usable (numpy importable).
HAVE_NUMPY = np is not None

#: ``numpy.bitwise_count`` when the installed numpy ships it (>= 2.0);
#: ``None`` selects the SWAR fallback.  Tests monkeypatch this to
#: exercise the fallback on modern numpy too.
_BITWISE_COUNT = getattr(np, "bitwise_count", None) if HAVE_NUMPY else None

_WORD_BYTES = 8
_WORD_DTYPE = "<u8"  # little-endian uint64: byte image == int mask bytes


def words_for(n: int) -> int:
    """uint64 words per mask row over vertex ids ``0..n-1``."""
    return max((n + 63) // 64, 1)


def _swar_popcount(words: "NDArray[np.uint64]") -> "NDArray[np.uint64]":
    """Branch-free SWAR popcount (numpy < 2.0 fallback).

    The classic 64-bit bit-twiddling reduction: pairwise sums, nibble
    sums, then one wrapping multiply gathers the byte counts into the
    top byte.  All arithmetic intentionally wraps modulo 2**64.
    """
    x = words.copy()
    x -= (x >> np.uint64(1)) & np.uint64(0x5555555555555555)
    x = (x & np.uint64(0x3333333333333333)) + \
        ((x >> np.uint64(2)) & np.uint64(0x3333333333333333))
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return (x * np.uint64(0x0101010101010101)) >> np.uint64(56)


def popcount_words(words: "NDArray[np.uint64]") -> "NDArray[np.uint64]":
    """Per-word popcount of a uint64 array (any shape)."""
    if _BITWISE_COUNT is not None:
        result: "NDArray[np.uint64]" = _BITWISE_COUNT(words)
        return result
    return _swar_popcount(words)


# ----------------------------------------------------------------------
# Rows (vertex-set masks)
# ----------------------------------------------------------------------
def full_row(n: int) -> "Row":
    """Row with bits ``0..n-1`` set and all trailing bits clear."""
    row = np.zeros(words_for(n), dtype=np.uint64)
    if n <= 0:
        return row
    row[: n >> 6] = np.uint64(0xFFFFFFFFFFFFFFFF)
    rem = n & 63
    if rem:
        row[n >> 6] = np.uint64((1 << rem) - 1)
    return row


def unit_row(v: int, n: int) -> "Row":
    """Row holding the single vertex ``v``."""
    row = np.zeros(words_for(n), dtype=np.uint64)
    row[v >> 6] = np.uint64(1) << np.uint64(v & 63)
    return row


def row_from_mask(mask: int, n: int) -> "Row":
    """Convert an int mask (:mod:`repro.kernels.bitset`) into a row."""
    blob = mask.to_bytes(words_for(n) * _WORD_BYTES, "little")
    return np.frombuffer(blob, dtype=_WORD_DTYPE).astype(
        np.uint64, copy=True)


def mask_from_row(row: "Row") -> int:
    """Inverse of :func:`row_from_mask`."""
    return int.from_bytes(
        row.astype(_WORD_DTYPE, copy=False).tobytes(), "little")


def row_count(row: "Row") -> int:
    """``|S|`` — number of vertices in the row."""
    return int(popcount_words(row).sum())


def row_bool(row: "Row", n: int) -> "BoolArray":
    """Row as an ``(n,)`` bool membership array."""
    bits = np.unpackbits(
        row.astype(_WORD_DTYPE, copy=False).view(np.uint8),
        bitorder="little")
    return bits[:n].astype(bool)


def row_indices(row: "Row", n: int) -> "NDArray[np.intp]":
    """Member vertex ids of the row, ascending."""
    return np.flatnonzero(row_bool(row, n))


def bool_to_row(flags: "BoolArray | Sequence[bool]", n: int) -> "Row":
    """Pack an ``(n,)`` bool membership array into a row."""
    words = np.zeros(words_for(n) * _WORD_BYTES, dtype=np.uint8)
    if n > 0:
        packed = np.packbits(
            np.asarray(flags, dtype=bool), bitorder="little")
        words[: packed.size] = packed
    return words.view(_WORD_DTYPE).astype(np.uint64, copy=False)


def set_bit(row: "Row", v: int) -> None:
    """Insert vertex ``v`` into the row, in place."""
    row[v >> 6] |= np.uint64(1) << np.uint64(v & 63)


def clear_bit(row: "Row", v: int) -> None:
    """Remove vertex ``v`` from the row, in place."""
    row[v >> 6] &= ~(np.uint64(1) << np.uint64(v & 63))


def test_bit(row: "Row", v: int) -> bool:
    """Whether vertex ``v`` is in the row."""
    return bool(row[v >> 6] & (np.uint64(1) << np.uint64(v & 63)))


# ----------------------------------------------------------------------
# Matrices (adjacency)
# ----------------------------------------------------------------------
def matrix_from_masks(masks: Sequence[int], n: int) -> "Matrix":
    """Build the ``(len(masks), words_for(n))`` matrix from int masks."""
    with current_tracer().span("matrix_from_masks", n=n):
        width = words_for(n) * _WORD_BYTES
        blob = b"".join(mask.to_bytes(width, "little") for mask in masks)
        flat = np.frombuffer(blob, dtype=_WORD_DTYPE).astype(
            np.uint64, copy=True)
        return flat.reshape(len(masks), words_for(n))


def masks_from_matrix(mat: "Matrix", n: int) -> list[int]:
    """Inverse of :func:`matrix_from_masks` (boundary conversion)."""
    width = words_for(n) * _WORD_BYTES
    blob = mat.astype(_WORD_DTYPE, copy=False).tobytes()
    return [
        int.from_bytes(blob[i * width:(i + 1) * width], "little")
        for i in range(mat.shape[0])]


def matrix_from_bools(bools: "BoolArray") -> "Matrix":
    """Pack a ``(k, n)`` bool adjacency into a ``(k, words)`` matrix."""
    rows, cols = bools.shape
    words = np.zeros(
        (rows, words_for(cols) * _WORD_BYTES), dtype=np.uint8)
    if rows > 0 and cols > 0:
        packed = np.packbits(bools, axis=1, bitorder="little")
        words[:, : packed.shape[1]] = packed
    return words.view(_WORD_DTYPE).astype(np.uint64, copy=False)


def induced_bool(
    mat: "Matrix", members: "NDArray[np.intp]", n: int
) -> "BoolArray":
    """Dense bool adjacency of the induced subgraph ``mat[members]``.

    Returns a ``(k, k)`` bool array where entry ``(i, j)`` says whether
    ``members[i]`` and ``members[j]`` are adjacent — the gather step of
    the matrix-native ego-network builder.
    """
    k = members.size
    if k == 0:
        return np.zeros((0, 0), dtype=bool)
    bits = np.unpackbits(
        mat[members].astype(_WORD_DTYPE, copy=False).view(
            np.uint8).reshape(k, -1),
        axis=1, bitorder="little")[:, :n]
    return bits[:, members].astype(bool)


def matrix_to_bytes(mat: "Matrix", n: int) -> bytes:
    """Flatten a matrix to the :func:`masks_to_bytes` wire format.

    ``n`` masks of ``mask_stride(n)`` bytes each, little-endian — byte
    for byte the blob :func:`repro.kernels.bitset.masks_to_bytes`
    produces for the equivalent int masks, so either side of a worker
    boundary may pack with ints and unpack with arrays or vice versa.
    """
    with current_tracer().span("matrix_to_bytes", n=n):
        stride = mask_stride(n)
        byte_rows = mat.astype(_WORD_DTYPE, copy=False).view(
            np.uint8).reshape(mat.shape[0], mat.shape[1] * _WORD_BYTES)
        return byte_rows[:, :stride].tobytes()


def matrix_from_bytes(blob: bytes, n: int) -> "Matrix":
    """Inverse of :func:`matrix_to_bytes` — the array round-trip that
    lets spawned workers rebuild matrices without re-packing ints."""
    with current_tracer().span("matrix_from_bytes", n=n):
        stride = mask_stride(n)
        if len(blob) != stride * n and n > 0:
            raise ValueError(
                f"blob of {len(blob)} bytes does not hold {n} masks "
                f"of stride {stride}")
        width = words_for(n) * _WORD_BYTES
        buffer = np.zeros((n, width), dtype=np.uint8)
        if n > 0:
            buffer[:, :stride] = np.frombuffer(
                blob, dtype=np.uint8).reshape(n, stride)
        return buffer.view(_WORD_DTYPE).reshape(
            n, words_for(n)).astype(np.uint64, copy=False)


def dichromatic_adjacency(
    pos_mat: "Matrix",
    neg_mat: "Matrix",
    origin: Sequence[int],
    boundary: int,
    n: int,
) -> "Matrix":
    """Conflict-filtered induced adjacency of a dichromatic network.

    ``origin`` lists the network members in local-id order with the
    first ``boundary`` entries on the L side.  Gathers both signed
    adjacencies restricted to the members (two dense bool blocks),
    keeps positive edges between same-side pairs and negative edges
    between cross pairs, and packs the result into a local-id mask
    matrix — the whole per-ego translation loop of the bitset builder
    as a handful of array ops.
    """
    members = np.asarray(origin, dtype=np.intp)
    positive = induced_bool(pos_mat, members, n)
    negative = induced_bool(neg_mat, members, n)
    k = members.size
    same_side = np.zeros((k, k), dtype=bool)
    same_side[:boundary, :boundary] = True
    same_side[boundary:, boundary:] = True
    return matrix_from_bools(
        (positive & same_side) | (negative & ~same_side))


def matrix_edge_count(mat: "Matrix") -> int:
    """Edges of the graph whose adjacency matrix this is."""
    return int(popcount_words(mat).sum()) // 2


def suffix_rows(order: Sequence[int], n: int) -> "Matrix":
    """Higher-ranked rows: ``rows[u]`` holds the vertices after ``u``
    in ``order`` (the array analogue of
    :func:`repro.parallel.tasks.suffix_masks`)."""
    rows = np.zeros((n, words_for(n)), dtype=np.uint64)
    accumulated = np.zeros(words_for(n), dtype=np.uint64)
    for u in reversed(order):
        rows[u] = accumulated
        set_bit(accumulated, u)
    return rows


# ----------------------------------------------------------------------
# Branching helpers (per-node search machinery)
# ----------------------------------------------------------------------
def degrees_in_active(mat: "Matrix", active: "Row") -> "IntArray":
    """Degree-in-active of every vertex, as one vectorised pass.

    Entries of vertices outside ``active`` are meaningless to callers
    (they are masked away before use) but computed anyway — one
    contiguous popcount beats any row-gathering bookkeeping.
    """
    return popcount_words(mat & active).sum(axis=1).astype(np.int64)


def subtract_members(
    degree: "IntArray", row: "Row", n: int
) -> None:
    """Decrement ``degree`` by one for every member of ``row``, in
    place (the incremental update after a branch vertex leaves)."""
    degree -= row_bool(row, n)


_SENTINEL = np.int64(np.iinfo(np.int64).max)


def argmin_active(values: "IntArray", flags: "BoolArray") -> int:
    """Index of the smallest value among ``flags``-marked entries.

    First occurrence wins, so ties break towards the lowest vertex id —
    the same tie-break as the bitset engine's ascending scan.  Returns
    ``-1`` when no entry is marked.
    """
    if not flags.any():
        return -1
    return int(np.argmin(np.where(flags, values, _SENTINEL)))


def argmax_active(values: "IntArray", flags: "BoolArray") -> int:
    """Index of the largest value among ``flags``-marked entries
    (lowest id on ties); ``-1`` when no entry is marked."""
    if not flags.any():
        return -1
    return int(np.argmax(np.where(flags, values, np.int64(-1))))


# ----------------------------------------------------------------------
# The kernel surface (array analogues of repro.kernels.active)
# ----------------------------------------------------------------------
def intersect_active(mat: "Matrix", v: int, active: "Row") -> "Row":
    """Candidate-set intersection ``N(v) ∩ active`` as a fresh row."""
    return mat[v] & active


def degree_in_active(mat: "Matrix", v: int, active: "Row") -> int:
    """``|N(v) ∩ active|``."""
    return int(popcount_words(mat[v] & active).sum())


def k_core_active(mat: "Matrix", k: int, active: "Row") -> "Row":
    """Label-blind ``k``-core of the subgraph induced by ``active``.

    Batch peeling: each iteration recomputes the degrees of every
    still-alive vertex in one vectorised pass and strips the *entire*
    frontier of violators at once, converging in at most "core-number
    layers" iterations rather than one pop per vertex.
    """
    if k <= 0:
        return active
    n = mat.shape[0]
    alive_row = active.copy()
    alive = row_bool(alive_row, n)
    members = np.flatnonzero(alive)
    while members.size:
        degrees = popcount_words(
            mat[members] & alive_row).sum(axis=1)
        keep = degrees >= np.uint64(k)
        if keep.all():
            break
        alive[members[~keep]] = False
        alive_row = bool_to_row(alive, n)
        members = members[keep]
    return alive_row


def bicore_active(
    mat: "Matrix",
    left_row: "Row",
    tau_l: int,
    tau_r: int,
    active: "Row",
) -> "Row":
    """``(tau_L, tau_R)``-core of the subgraph induced by ``active``.

    Same survival thresholds as
    :func:`repro.kernels.active.bicore_active_mask` — an L-vertex keeps
    ``>= tau_L - 1`` L-neighbours and ``>= tau_R`` R-neighbours, an
    R-vertex ``>= tau_L`` and ``>= tau_R - 1``; negative thresholds
    count as zero — peeled a whole frontier per iteration.
    """
    tau_l = max(tau_l, 0)
    tau_r = max(tau_r, 0)
    if tau_l == 0 and tau_r == 0:
        return active
    n = mat.shape[0]
    alive_row = active.copy()
    alive = row_bool(alive_row, n)
    is_left = row_bool(left_row, n)
    members = np.flatnonzero(alive)
    while members.size:
        rows = mat[members]
        left_deg = popcount_words(
            rows & (alive_row & left_row)).sum(axis=1).astype(np.int64)
        total_deg = popcount_words(
            rows & alive_row).sum(axis=1).astype(np.int64)
        right_deg = total_deg - left_deg
        violates = np.where(
            is_left[members],
            (left_deg < tau_l - 1) | (right_deg < tau_r),
            (left_deg < tau_l) | (right_deg < tau_r - 1))
        if not violates.any():
            break
        alive[members[violates]] = False
        alive_row = bool_to_row(alive, n)
        members = members[~violates]
    return alive_row


def coloring_upper_bound_active(mat: "Matrix", active: "Row") -> int:
    """Greedy-colouring clique bound over ``active`` (``colorUB``).

    The greedy placement is inherently sequential — each colour choice
    depends on every earlier one — so a row-at-a-time numpy loop loses
    badly to int masks (0.12x vs bitset in the committed kernel
    benchmark).  Split the kernel instead: the degree ordering (half of
    the bitset kernel's cost) is computed vectorised, the rows are
    converted once at the boundary, and placement runs through the
    shared bitset first-fit loop.  Order is identical by construction:
    non-increasing degree-in-active, ties by vertex id.
    """
    n = mat.shape[0]
    members = row_indices(active, n)
    if members.size == 0:
        return 0
    degrees = popcount_words(
        mat & active).sum(axis=1).astype(np.int64)
    order = members[np.lexsort((members, -degrees[members]))]
    return first_fit_color_count(
        masks_from_matrix(mat, n), order.tolist())


def degeneracy_ordering(mat: "Matrix", active: "Row") -> list[int]:
    """Smallest-first (degeneracy) ordering of ``active``.

    Repeated masked argmin over a vectorised degree array that is
    decremented as vertices leave.  Ties break towards the lowest
    vertex id; as with the other engines, any valid degeneracy order
    is acceptable to the callers.
    """
    n = mat.shape[0]
    alive = row_bool(active, n)
    total = int(alive.sum())
    if total == 0:
        return []
    alive_row = active.copy()
    degree = degrees_in_active(mat, alive_row)
    order: list[int] = []
    for _ in range(total):
        v = argmin_active(degree, alive)
        order.append(v)
        alive[v] = False
        clear_bit(alive_row, v)
        subtract_members(degree, mat[v] & alive_row, n)
    return order


def active_edge_count(mat: "Matrix", active: "Row") -> int:
    """Number of edges of the subgraph induced by ``active``."""
    n = mat.shape[0]
    members = row_indices(active, n)
    if members.size == 0:
        return 0
    return int(popcount_words(mat[members] & active).sum()) // 2
