"""Quality metrics for polarized communities (Polarity, SBR, HAM)."""

from .polarity import count_group_edges, harmonic_polarization, polarity, \
    signed_bipartiteness_ratio

__all__ = [
    "polarity",
    "signed_bipartiteness_ratio",
    "harmonic_polarization",
    "count_group_edges",
]
