"""Polarized-community quality metrics (Section VI-A).

The paper compares the maximum balanced clique against the community
returned by PolarSeeds [15] using three metrics over a candidate
polarized pair ``(C1, C2)``:

* **Polarity** [15], [16] — agreeing edges, density-normalized::

      Polarity(C1, C2) =
          (|E+(C1)| + |E+(C2)| + 2 * |E-(C1, C2)|) / |C1 ∪ C2|

  (positive edges inside each group count once, cross negative edges
  twice — the convention of [16]).

* **SBR** — signed bipartiteness ratio: the fraction of edge
  endpoints incident to the community that *violate* the polarized
  structure (negative inside a group, positive across, or leaving the
  community), normalized by volume.  Lower is better.

* **HAM** — harmonic mean of *cohesion* (fraction of within-group
  pairs that are positive edges) and *opposition* (fraction of
  cross-group pairs that are negative edges).  A balanced clique
  always scores 1, the maximum.
"""

from __future__ import annotations

from typing import Iterable

from ..signed.graph import SignedGraph

__all__ = [
    "polarity",
    "signed_bipartiteness_ratio",
    "harmonic_polarization",
    "count_group_edges",
]


def count_group_edges(
    graph: SignedGraph,
    group1: Iterable[int],
    group2: Iterable[int],
) -> dict[str, int]:
    """Edge counts by location and sign for a polarized pair.

    Returns a dict with keys ``pos_in`` / ``neg_in`` (within either
    group), ``pos_cross`` / ``neg_cross`` (between the groups) and
    ``boundary`` (edges leaving ``group1 ∪ group2``).
    """
    set1, set2 = set(group1), set(group2)
    if set1 & set2:
        raise ValueError(f"groups overlap: {sorted(set1 & set2)}")
    union = set1 | set2
    counts = {"pos_in": 0, "neg_in": 0,
              "pos_cross": 0, "neg_cross": 0, "boundary": 0}
    for v in union:
        in_first = v in set1
        for u in graph.pos_neighbors(v):
            if u not in union:
                counts["boundary"] += 1
            elif u > v:
                same = (u in set1) == in_first
                counts["pos_in" if same else "pos_cross"] += 1
        for u in graph.neg_neighbors(v):
            if u not in union:
                counts["boundary"] += 1
            elif u > v:
                same = (u in set1) == in_first
                counts["neg_in" if same else "neg_cross"] += 1
    return counts


def polarity(
    graph: SignedGraph,
    group1: Iterable[int],
    group2: Iterable[int],
) -> float:
    """Polarity of ``(C1, C2)`` as defined in [15], [16]."""
    set1, set2 = set(group1), set(group2)
    size = len(set1 | set2)
    if size == 0:
        return 0.0
    counts = count_group_edges(graph, set1, set2)
    return (counts["pos_in"] + 2 * counts["neg_cross"]) / size


def signed_bipartiteness_ratio(
    graph: SignedGraph,
    group1: Iterable[int],
    group2: Iterable[int],
) -> float:
    """Signed bipartiteness ratio — disagreeing + escaping volume.

    ``(2 * |E-(C1)| + 2 * |E-(C2)| + 2 * |E+(C1, C2)| + boundary)
    / vol(C1 ∪ C2)`` where ``vol`` is the sum of degrees.  0 for an
    isolated, perfectly polarized pair; grows with violations and with
    edges escaping the community (the reason cliques do not win this
    metric in the paper).
    """
    set1, set2 = set(group1), set(group2)
    union = set1 | set2
    volume = sum(graph.degree(v) for v in union)
    if volume == 0:
        return 0.0
    counts = count_group_edges(graph, set1, set2)
    bad = (2 * counts["neg_in"] + 2 * counts["pos_cross"]
           + counts["boundary"])
    return bad / volume


def harmonic_polarization(
    graph: SignedGraph,
    group1: Iterable[int],
    group2: Iterable[int],
) -> float:
    """HAM: harmonic mean of cohesion and opposition.

    Cohesion is the fraction of within-group vertex pairs joined by a
    positive edge; opposition is the fraction of cross-group pairs
    joined by a negative edge.  Degenerate pair universes (a single
    vertex overall, or an empty side) score the metric that is
    undefined as 1 when the other is positive, matching the convention
    that a balanced clique always has ``HAM = 1``.
    """
    set1, set2 = set(group1), set(group2)
    counts = count_group_edges(graph, set1, set2)
    pairs_in = (len(set1) * (len(set1) - 1)
                + len(set2) * (len(set2) - 1)) // 2
    pairs_cross = len(set1) * len(set2)
    cohesion = counts["pos_in"] / pairs_in if pairs_in else 1.0
    opposition = (counts["neg_cross"] / pairs_cross
                  if pairs_cross else 1.0)
    if cohesion + opposition == 0:
        return 0.0
    return 2 * cohesion * opposition / (cohesion + opposition)
