"""repro.obs — structured tracing, solver metrics & profiling hooks.

A zero-dependency observability layer the whole solver stack threads
through (see ``docs/OBSERVABILITY.md``):

* :class:`Tracer` — nestable wall-time spans plus named
  :class:`Counter` / :class:`Histogram` metrics;
* :data:`NULL_TRACER` / :class:`NullTracer` — the no-op default, so an
  untraced solve pays one method call per instrumentation site and
  never allocates a :class:`Span`;
* :class:`TraceBuffer` — the picklable worker-side snapshot that
  :meth:`Tracer.absorb` merges back into a parent tracer (the
  parallel engine ships one per chunk, next to ``SearchStats``);
* :func:`write_jsonl` / :func:`validate_trace_lines` — the versioned
  JSONL event sink and its executable schema;
* :func:`render_tree` — the human-readable span-tree reporter behind
  the CLI's ``--profile``;
* :func:`get_tracer` / :func:`install_tracer` / :func:`current_tracer`
  — the factory and the process-ambient tracer slot (the only
  sanctioned ways to obtain a tracer inside the stack; lint rule
  R008).

This package sits *below* every solver layer — even
:mod:`repro.kernels` imports it — and therefore imports nothing from
the rest of the package.
"""

from .metrics import Counter, Histogram
from .runtime import current_tracer, get_tracer, install_tracer
from .sink import (
    SCHEMA_VERSION,
    dump_jsonl,
    render_tree,
    render_tree_from_records,
    span_time_coverage,
    trace_events,
    validate_trace_file,
    validate_trace_lines,
    write_jsonl,
)
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    TraceBuffer,
    Tracer,
)

__all__ = [
    "Counter",
    "Histogram",
    "Span",
    "NullSpan",
    "Tracer",
    "NullTracer",
    "TraceBuffer",
    "NULL_SPAN",
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "get_tracer",
    "install_tracer",
    "current_tracer",
    "trace_events",
    "dump_jsonl",
    "write_jsonl",
    "validate_trace_file",
    "validate_trace_lines",
    "render_tree",
    "render_tree_from_records",
    "span_time_coverage",
]
