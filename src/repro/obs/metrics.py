"""Metric primitives: monotonic counters and fixed-bucket histograms.

Both are deliberately minimal — zero dependencies, plain-data state —
because their snapshots cross process boundaries inside a
:class:`~repro.obs.tracer.TraceBuffer` (the parallel workers export
their metrics next to their spans) and land verbatim in the JSONL
trace sink.  Null variants back the disabled tracer so instrumented
code never branches on "is tracing on?".
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

__all__ = [
    "Counter",
    "Histogram",
    "NullCounter",
    "NullHistogram",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "DEFAULT_BUCKET_BOUNDS",
]

#: Decade bounds covering the quantities the solvers observe — node
#: counts, network sizes, span durations in seconds.  A sample falls in
#: the first bucket whose bound is ``>= value``; larger samples land in
#: the implicit overflow bucket ``"inf"``.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
    1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative: counters only move up)."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def snapshot(self) -> int:
        """Plain-data state for buffers and sinks."""
        return self.value

    def absorb(self, value: int) -> None:
        """Fold another process's snapshot into this counter."""
        self.inc(value)


class Histogram:
    """Fixed-bound bucket histogram with count/total/min/max summary.

    Bounds are upper-inclusive: a sample ``x`` increments the bucket of
    the smallest bound ``b`` with ``x <= b``; samples above every bound
    go to the overflow bucket.  The summary fields make averages
    recoverable from a snapshot without the raw samples.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total",
                 "min", "max")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be ascending")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float | None:
        """Average sample, or ``None`` with no samples."""
        if self.count == 0:
            return None
        return self.total / self.count

    def snapshot(self) -> dict[str, object]:
        """Plain-data state for buffers and sinks."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    def absorb(self, state: dict[str, object]) -> None:
        """Fold another process's snapshot into this histogram."""
        bounds = state["bounds"]
        if tuple(bounds) != self.bounds:  # type: ignore[arg-type]
            raise ValueError(
                f"histogram {self.name!r}: cannot merge snapshots with "
                f"different bucket bounds")
        buckets = state["buckets"]
        assert isinstance(buckets, list)
        for i, n in enumerate(buckets):
            self.buckets[i] += n
        count = state["count"]
        total = state["total"]
        assert isinstance(count, int) and isinstance(total, float)
        self.count += count
        self.total += total
        for key in ("min", "max"):
            other = state[key]
            if other is None:
                continue
            assert isinstance(other, (int, float))
            mine = getattr(self, key)
            if mine is None:
                setattr(self, key, float(other))
            elif key == "min":
                setattr(self, key, min(mine, float(other)))
            else:
                setattr(self, key, max(mine, float(other)))


class NullCounter(Counter):
    """No-op counter handed out by the disabled tracer."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class NullHistogram(Histogram):
    """No-op histogram handed out by the disabled tracer."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: Shared no-op instances (one allocation for the process lifetime).
NULL_COUNTER = NullCounter("null")
NULL_HISTOGRAM = NullHistogram("null")
