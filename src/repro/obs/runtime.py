"""The tracer factory and the process-ambient tracer.

Every tracer in the solver stack comes from here (lint rule R008):

* :func:`get_tracer` — construct a live :class:`Tracer` (or the shared
  :data:`~repro.obs.tracer.NULL_TRACER` when ``enabled`` is false);
  the parallel chunk runners use it to build their per-process
  tracers.
* :func:`install_tracer` / :func:`current_tracer` — the ambient
  tracer.  Solver entry points that receive ``trace=None`` fall back
  to ``current_tracer()``, which is how the CLI's ``--trace`` flag and
  the benchmarks' ``REPRO_TRACE`` hook attach a tracer to code they do
  not call directly (e.g. the kernel-layer mask-build spans).

The ambient slot is deliberately a single process-global (not a
context variable): one solve at a time is the repo's execution model,
worker processes get a fresh slot by construction, and a plain global
keeps ``current_tracer()`` a dict-free attribute lookup on the
disabled hot path.
"""

from __future__ import annotations

from .tracer import NULL_TRACER, Tracer

__all__ = [
    "get_tracer",
    "install_tracer",
    "current_tracer",
]

_AMBIENT: Tracer | None = None


def get_tracer(enabled: bool = True) -> Tracer:
    """A fresh live tracer, or the shared null tracer when disabled."""
    if not enabled:
        return NULL_TRACER
    return Tracer()


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Set the ambient tracer; returns the previous one.

    Pass ``None`` to clear.  Callers that install should restore the
    previous value when done (the CLI and the benchmark hook do).
    """
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = tracer
    return previous


def current_tracer() -> Tracer:
    """The ambient tracer, or the shared null tracer when none is
    installed.  Never returns ``None`` — instrumented code can call
    ``current_tracer().span(...)`` unconditionally."""
    tracer = _AMBIENT
    return tracer if tracer is not None else NULL_TRACER
