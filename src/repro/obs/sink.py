"""Trace sinks: the JSONL event stream and the span-tree reporter.

The JSONL schema (version :data:`SCHEMA_VERSION`, documented in
``docs/OBSERVABILITY.md``) is one JSON object per line:

* line 1 — the meta header::

      {"type": "meta", "schema": "repro.obs/1", "span_count": N,
       "counter_count": C, "histogram_count": H}

* one line per closed span, in id order::

      {"type": "span", "id": 3, "parent": 1, "name": "ego",
       "start": 0.0012, "elapsed": 0.0007, "attrs": {"v": 17}}

* one line per counter and histogram, name-sorted, after the spans.

:func:`validate_trace_lines` is the schema's executable definition —
the CI smoke step and the tests validate every produced trace with it
rather than against a prose spec.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from .tracer import Tracer

__all__ = [
    "SCHEMA_VERSION",
    "trace_events",
    "write_jsonl",
    "dump_jsonl",
    "validate_trace_lines",
    "validate_trace_file",
    "render_tree",
    "render_tree_from_records",
    "span_time_coverage",
]

#: Version tag carried by every trace file; bump on any breaking
#: change to the event layout.
SCHEMA_VERSION = "repro.obs/1"

#: JSON scalar types allowed as span attribute values.
_SCALARS = (str, int, float, bool, type(None))


def trace_events(tracer: Tracer) -> list[dict]:
    """The tracer's output as schema-ordered event dicts."""
    spans = sorted(tracer.records, key=lambda r: r["id"])
    counters = tracer.counters_snapshot()
    histograms = tracer.histograms_snapshot()
    events: list[dict] = [{
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "span_count": len(spans),
        "counter_count": len(counters),
        "histogram_count": len(histograms),
    }]
    for record in spans:
        events.append({"type": "span", **record})
    for name, value in counters.items():
        events.append({"type": "counter", "name": name, "value": value})
    for name, state in histograms.items():
        events.append({"type": "histogram", "name": name, **state})
    return events


def dump_jsonl(tracer: Tracer, stream: IO[str]) -> int:
    """Write the trace to an open text stream; returns the line count."""
    events = trace_events(tracer)
    for event in events:
        stream.write(json.dumps(event, separators=(",", ":")))
        stream.write("\n")
    return len(events)


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path``; returns the line count."""
    with open(path, "w", encoding="utf-8") as handle:
        return dump_jsonl(tracer, handle)


def _check_span(event: dict, seen_ids: set[int]) -> list[str]:
    errors: list[str] = []
    span_id = event.get("id")
    if not isinstance(span_id, int) or span_id < 0:
        return [f"span has invalid id {span_id!r}"]
    if span_id in seen_ids:
        errors.append(f"span id {span_id} duplicated")
    parent = event.get("parent")
    if parent is not None:
        if not isinstance(parent, int):
            errors.append(f"span {span_id}: non-int parent {parent!r}")
        elif parent not in seen_ids:
            errors.append(
                f"span {span_id}: parent {parent} not seen earlier "
                f"(parents must precede children in id order)")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"span {span_id}: invalid name {name!r}")
    for key in ("start", "elapsed"):
        value = event.get(key)
        if not isinstance(value, (int, float)) or isinstance(
                value, bool) or value < 0:
            errors.append(
                f"span {span_id}: {key} must be a non-negative "
                f"number, got {value!r}")
    attrs = event.get("attrs")
    if not isinstance(attrs, dict):
        errors.append(f"span {span_id}: attrs must be an object")
    else:
        for key, value in attrs.items():
            if not isinstance(key, str):
                errors.append(f"span {span_id}: non-string attr key")
            if not isinstance(value, _SCALARS):
                errors.append(
                    f"span {span_id}: attr {key!r} must be a JSON "
                    f"scalar, got {type(value).__name__}")
    return errors


def validate_trace_lines(lines: Iterable[str]) -> list[str]:
    """Validate a JSONL trace; returns a list of problems (empty = ok)."""
    errors: list[str] = []
    events: list[dict] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {number}: not valid JSON ({exc})")
            continue
        if not isinstance(event, dict):
            errors.append(f"line {number}: not a JSON object")
            continue
        events.append(event)
    if not events:
        return errors + ["empty trace: missing meta header"]

    meta = events[0]
    if meta.get("type") != "meta":
        errors.append("first event must be the meta header")
    elif meta.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"unsupported schema {meta.get('schema')!r} "
            f"(expected {SCHEMA_VERSION!r})")

    seen_ids: set[int] = set()
    counts = {"span": 0, "counter": 0, "histogram": 0}
    for event in events[1:]:
        kind = event.get("type")
        if kind == "span":
            errors.extend(_check_span(event, seen_ids))
            if isinstance(event.get("id"), int):
                seen_ids.add(event["id"])
            counts["span"] += 1
        elif kind == "counter":
            if not isinstance(event.get("name"), str):
                errors.append(f"counter with invalid name: {event!r}")
            if not isinstance(event.get("value"), int):
                errors.append(
                    f"counter {event.get('name')!r}: non-int value")
            counts["counter"] += 1
        elif kind == "histogram":
            if not isinstance(event.get("name"), str):
                errors.append(f"histogram with invalid name: {event!r}")
            for key in ("count", "total", "bounds", "buckets"):
                if key not in event:
                    errors.append(
                        f"histogram {event.get('name')!r}: "
                        f"missing {key!r}")
            counts["histogram"] += 1
        elif kind == "meta":
            errors.append("meta header repeated mid-stream")
        else:
            errors.append(f"unknown event type {kind!r}")
    for kind, key in (("span", "span_count"),
                      ("counter", "counter_count"),
                      ("histogram", "histogram_count")):
        declared = meta.get(key)
        if isinstance(declared, int) and declared != counts[kind]:
            errors.append(
                f"meta declares {declared} {kind} events, "
                f"found {counts[kind]}")
    return errors


def validate_trace_file(path: str) -> int:
    """Validate a trace file; raises ``ValueError`` on any problem.

    Returns the number of span events (handy for smoke assertions).
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    errors = validate_trace_lines(lines)
    if errors:
        preview = "; ".join(errors[:5])
        raise ValueError(
            f"invalid trace {path!r}: {len(errors)} problem(s): "
            f"{preview}")
    return sum(
        1 for line in lines
        if line.strip() and json.loads(line).get("type") == "span")


def _format_elapsed(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    body = ", ".join(
        f"{key}={value}" for key, value in sorted(attrs.items()))
    return f" ({body})"


def render_tree_from_records(records: Sequence[dict],
                             max_children: int = 40) -> str:
    """Human-readable span tree from flat span records.

    Sibling lists longer than ``max_children`` are elided with a
    summary line so the per-ego sweeps stay readable.
    """
    by_parent: dict[int | None, list[dict]] = {}
    for record in sorted(records, key=lambda r: r["id"]):
        by_parent.setdefault(record["parent"], []).append(record)
    known = {record["id"] for record in records}
    roots = [r for r in sorted(records, key=lambda r: r["id"])
             if r["parent"] is None or r["parent"] not in known]
    lines: list[str] = []

    def walk(record: dict, depth: int) -> None:
        lines.append(
            "  " * depth
            + f"{record['name']}{_format_attrs(record['attrs'])}"
            + f"  [{_format_elapsed(record['elapsed'])}]")
        children = by_parent.get(record["id"], [])
        shown = children[:max_children]
        for child in shown:
            walk(child, depth + 1)
        hidden = len(children) - len(shown)
        if hidden > 0:
            remainder = sum(c["elapsed"] for c in children[max_children:])
            lines.append(
                "  " * (depth + 1)
                + f"... {hidden} more spans "
                + f"[{_format_elapsed(remainder)}]")

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def render_tree(tracer: Tracer, max_children: int = 40) -> str:
    """Human-readable span tree of a tracer's closed spans."""
    tree = render_tree_from_records(
        tracer.records, max_children=max_children)
    counters = tracer.counters_snapshot()
    if counters:
        parts = ", ".join(
            f"{name}={value}" for name, value in counters.items())
        tree = tree + ("\n" if tree else "") + f"counters: {parts}"
    return tree


def span_time_coverage(records: Sequence[dict],
                       parent_name: str,
                       child_name: str) -> float:
    """Fraction of ``parent_name`` span time covered by its
    ``child_name`` children.

    The decomposition metric behind the acceptance check: the per-ego
    spans of a serial sweep must account for (nearly) all of the
    sweep's wall time, otherwise the trace is hiding where time goes.
    Returns 1.0 when there are no matching parents with positive
    elapsed time.
    """
    parents = {r["id"]: r for r in records if r["name"] == parent_name}
    total = sum(r["elapsed"] for r in parents.values())
    if total <= 0.0:
        return 1.0
    covered = sum(
        r["elapsed"] for r in records
        if r["name"] == child_name and r["parent"] in parents)
    return covered / total
