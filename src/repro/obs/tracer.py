"""Nestable-span tracer, its no-op twin, and the worker trace buffer.

Design constraints (see ``docs/OBSERVABILITY.md``):

* **zero dependencies** — the tracer sits *below* every solver layer
  (even :mod:`repro.kernels` spans its mask builds), so it imports
  nothing from the package;
* **near-zero disabled cost** — the default tracer is
  :data:`NULL_TRACER`, whose ``span()`` returns a shared no-op context
  manager; no :class:`Span` is ever allocated on the disabled path
  (asserted by a guard test that counts ``Span`` constructions);
* **picklable hand-off** — a worker process traces into its own
  :class:`Tracer` and exports a :class:`TraceBuffer` of plain lists
  and dicts; the parent's :meth:`Tracer.absorb` renumbers the ids and
  grafts the worker spans under its currently open span.

Span records are flat dicts (not objects) the moment a span closes::

    {"id": 3, "parent": 1, "name": "ego", "start": 0.0012,
     "elapsed": 0.0007, "attrs": {"v": 17}}

``id`` is assigned at span *entry* (so a parent's id is always smaller
than its children's), ``start`` is seconds since the tracer's epoch on
the injected monotonic clock, and ``attrs`` holds only JSON scalars.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Callable

from .metrics import (
    NULL_COUNTER,
    NULL_HISTOGRAM,
    Counter,
    Histogram,
    NullCounter,
    NullHistogram,
)

__all__ = [
    "Span",
    "NullSpan",
    "Tracer",
    "NullTracer",
    "TraceBuffer",
    "NULL_TRACER",
    "NULL_SPAN",
]

@dataclass
class TraceBuffer:
    """Serializable snapshot of one tracer's output.

    The parallel chunk runners return one of these next to their
    :class:`~repro.core.stats.SearchStats` delta; everything inside is
    plain data, so pickling it for the pool result queue is cheap.
    """

    spans: list[dict] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """Whether absorbing this buffer would be a no-op."""
        return not (self.spans or self.counters or self.histograms)


class Span:
    """One open span; a context manager handed out by ``Tracer.span``.

    Entry registers the span with its tracer (id assignment, parent
    linkage, start timestamp); exit closes it and appends the flat
    record to the tracer.  ``set``/``count`` mutate the attribute dict
    while the span is open.
    """

    __slots__ = ("_tracer", "name", "attrs", "id", "parent", "start",
                 "_entered")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = -1
        self.parent: int | None = None
        self.start = 0.0
        self._entered = False

    def set(self, **attrs: object) -> "Span":
        """Merge attributes into the span; returns ``self``."""
        self.attrs.update(attrs)
        return self

    def count(self, name: str, n: int = 1) -> None:
        """Increment an integer attribute on the span by ``n``."""
        current = self.attrs.get(name, 0)
        assert isinstance(current, int)
        self.attrs[name] = current + n

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self._entered = True
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._tracer._close(self)


class NullSpan(Span):
    """Shared no-op span returned by the disabled tracer.

    A single module-level instance (:data:`NULL_SPAN`) serves every
    ``NullTracer.span`` call, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def set(self, **attrs: object) -> "Span":
        return self

    def count(self, name: str, n: int = 1) -> None:
        pass

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        pass


class Tracer:
    """Structured tracer: nestable spans plus named metrics.

    Do not construct directly from solver code — obtain one through the
    :mod:`repro.obs` factory (:func:`repro.obs.get_tracer` /
    :func:`repro.obs.current_tracer`); the R008 lint rule enforces
    this so every tracer in the stack is observable by the sinks.

    Parameters
    ----------
    clock:
        Monotonic time source; injectable so tests can drive spans
        deterministically.  Defaults to :func:`time.perf_counter`.
    """

    #: Disabled tracers skip every recording branch; instrumented code
    #: may consult this to avoid computing expensive attributes.
    enabled: bool = True

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._next_id = 0
        self._stack: list[Span] = []
        self.records: list[dict] = []
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        """A new span context manager nested under the open span."""
        return Span(self, name, attrs)

    def _open(self, span: Span) -> None:
        span.id = self._next_id
        self._next_id += 1
        span.parent = self._stack[-1].id if self._stack else None
        self._stack.append(span)
        span.start = self._clock() - self._epoch

    def _close(self, span: Span) -> None:
        elapsed = self._clock() - self._epoch - span.start
        top = self._stack.pop()
        assert top is span, (
            f"span {span.name!r} closed while {top.name!r} is open — "
            f"spans must nest")
        self.records.append({
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "start": span.start,
            "elapsed": elapsed,
            "attrs": span.attrs,
        })

    @property
    def open_span_id(self) -> int | None:
        """Id of the innermost open span (``None`` outside any span)."""
        return self._stack[-1].id if self._stack else None

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # ------------------------------------------------------------------
    # Cross-process hand-off
    # ------------------------------------------------------------------
    def export_buffer(self) -> TraceBuffer:
        """Snapshot closed spans and metrics as plain data."""
        return TraceBuffer(
            spans=list(self.records),
            counters={name: c.snapshot()
                      for name, c in self._counters.items()},
            histograms={name: h.snapshot()
                        for name, h in self._histograms.items()},
        )

    def absorb(self, buffer: "TraceBuffer | None",
               **attrs: object) -> None:
        """Graft a worker's buffer into this tracer.

        Span ids are renumbered after this tracer's, parent links are
        remapped, and the buffer's top-level spans are re-parented
        under the currently open span (with ``attrs`` merged into
        them, e.g. a chunk tag).  Worker ``start`` offsets are kept
        process-local — they are relative to the *worker's* epoch and
        are not comparable to the parent timeline.
        """
        if buffer is None or buffer.is_empty:
            return
        remap: dict[int, int] = {}
        graft_parent = self.open_span_id
        ordered = sorted(buffer.spans, key=lambda r: r["id"])
        for record in ordered:
            remap[record["id"]] = self._next_id
            self._next_id += 1
        for record in ordered:
            parent = record["parent"]
            top_level = parent is None or parent not in remap
            copied = {
                "id": remap[record["id"]],
                "parent": graft_parent if top_level else remap[parent],
                "name": record["name"],
                "start": record["start"],
                "elapsed": record["elapsed"],
                "attrs": dict(record["attrs"]),
            }
            if top_level and attrs:
                copied["attrs"].update(attrs)
            self.records.append(copied)
        for name, value in buffer.counters.items():
            self.counter(name).absorb(value)
        for name, state in buffer.histograms.items():
            self.histogram(name).absorb(state)

    def counters_snapshot(self) -> dict[str, int]:
        """Current counter values keyed by name (sorted)."""
        return {name: self._counters[name].value
                for name in sorted(self._counters)}

    def histograms_snapshot(self) -> dict[str, dict]:
        """Current histogram states keyed by name (sorted)."""
        return {name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)}


class NullTracer(Tracer):
    """The disabled tracer: every operation is a cheap no-op.

    ``span()`` hands back the shared :data:`NULL_SPAN` without
    allocating, and the metric accessors return the shared null
    instances, so instrumented hot paths pay one method call per
    site when tracing is off.
    """

    enabled = False

    def __init__(self) -> None:
        # Deliberately skip Tracer.__init__: the null tracer records
        # nothing and must not touch the clock.
        self.records = []

    def span(self, name: str, **attrs: object) -> Span:
        return NULL_SPAN

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def histogram(self, name: str) -> Histogram:
        return NULL_HISTOGRAM

    @property
    def open_span_id(self) -> int | None:
        return None

    def export_buffer(self) -> TraceBuffer:
        return TraceBuffer()

    def absorb(self, buffer: "TraceBuffer | None",
               **attrs: object) -> None:
        pass

    def counters_snapshot(self) -> dict[str, int]:
        return {}

    def histograms_snapshot(self) -> dict[str, dict]:
        return {}


#: Shared singletons: the disabled tracer and its span.  ``NULL_SPAN``
#: is constructed against a throwaway NullTracer so the ``Span``
#: constructor contract holds, but it never registers anywhere.
NULL_TRACER = NullTracer()
NULL_SPAN = NullSpan(NULL_TRACER, "null", {})
