"""Parallel ego-network fan-out engine (multiprocessing).

Splits MBC*'s / PF*'s per-vertex ego-network instances across worker
processes, with the reduced graph shipped once at pool start and the
best solution size published through a shared monotone incumbent so
every worker prunes against the best clique found anywhere.  See
``docs/ALGORITHMS.md`` ("Parallel execution") for the protocol and
``repro.parallel.engine`` for the pool lifecycle.
"""

from .engine import (
    MIN_POOL_TASKS,
    mbc_ego_fanout,
    pf_round_fanout,
    preferred_start_method,
    resolve_workers,
)
from .incumbent import SharedIncumbent
from .tasks import (
    EgoTask,
    chunk_vertices,
    cost_ordered,
    is_viable,
    plan_tasks,
    suffix_masks,
)
from .worker import WorkerContext, install_context

__all__ = [
    "MIN_POOL_TASKS",
    "mbc_ego_fanout",
    "pf_round_fanout",
    "preferred_start_method",
    "resolve_workers",
    "SharedIncumbent",
    "EgoTask",
    "chunk_vertices",
    "cost_ordered",
    "is_viable",
    "plan_tasks",
    "suffix_masks",
    "WorkerContext",
    "install_context",
]
