"""Resilient pool dispatch: per-chunk accounting, rebuild, fallback.

Every pool interaction of the fan-out engine goes through
:class:`ResilientDispatcher` (enforced by lint rule R009).  The plain
``imap_unordered`` loop it replaces had two failure modes:

* a worker killed mid-task (OOM killer, crash, injected fault) does
  **not** make ``imap_unordered`` raise — ``multiprocessing.Pool``
  silently repopulates its worker slots and the in-flight task's
  result simply never arrives, hanging the solve forever;
* a worker *raising* poisons the whole ``imap`` stream, losing every
  other chunk's work.

The dispatcher fixes both with per-chunk accounting.  Payloads are
wrapped in ``(index, attempt, payload)`` envelopes and results pulled
with a bounded-timeout heartbeat; on each beat it compares the pool's
current worker pids against the snapshot taken at pool creation —
silent repopulation is exactly a pid-set change — and converts death
or a raised chunk into :class:`PoolFailure`.  The recovery ladder is:
terminate the broken pool, rebuild it once, re-dispatch only the
chunks whose results never arrived (attempt + 1 — chunk runners are
pure, so re-running is safe, and the ``on_recover`` hook lets the
engine reset the shared incumbent to the floor certified by delivered
results, so a bound published by a lost chunk cannot prune away its
own re-certification); after a second failure degrade to the
in-process runner, which cannot lose workers.  Pool shutdown uses a bounded ``join`` so a stalled worker
can never hang the solve either.

The heartbeat is also where a solve ``deadline`` is enforced while
all the work sits in worker processes: the dispatcher checks the
budget between beats and aborts the pool on expiry.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..resilience.budget import Budget
from .worker import WorkerContext, install_context
from . import worker as worker_module

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.pool import IMapIterator, Pool

__all__ = [
    "ResilientDispatcher",
    "DispatchReport",
    "PoolFailure",
    "preferred_start_method",
    "HEARTBEAT_SECONDS",
    "JOIN_TIMEOUT_SECONDS",
    "MAX_POOL_FAILURES",
    "FORCE_START_METHOD",
]

#: Test hook: force a specific multiprocessing start method (e.g.
#: ``"spawn"`` to exercise the packed-payload path on Linux), or
#: ``"none"`` to simulate a platform without usable pools.
FORCE_START_METHOD: str | None = None

#: Result-pull timeout; each beat re-checks worker liveness and the
#: solve budget.  Long enough that a healthy solve pays a handful of
#: wakeups, short enough that death/deadline detection feels instant.
HEARTBEAT_SECONDS = 0.05

#: Bound on every pool ``join``; a stalled worker is terminated rather
#: than allowed to hang the solve's cleanup path.
JOIN_TIMEOUT_SECONDS = 5.0

#: Pool failures tolerated before degrading to the in-process runner:
#: the first failure buys one rebuild, the second gives up on pools.
MAX_POOL_FAILURES = 2


class PoolFailure(RuntimeError):
    """A pool became unusable mid-dispatch (worker death or raise)."""


class DispatchReport:
    """Accounting for one dispatcher's lifetime (fanout span attrs)."""

    __slots__ = ("dispatched", "completed", "retried", "rebuilds",
                 "degraded", "pooled", "failures")

    def __init__(self) -> None:
        self.dispatched = 0
        self.completed = 0
        self.retried = 0
        self.rebuilds = 0
        self.degraded = False
        self.pooled = False
        self.failures: list[str] = []


def preferred_start_method() -> str | None:
    """``"fork"`` where available (zero-copy context shipping),
    ``"spawn"`` otherwise, ``None`` when pools cannot be used."""
    if FORCE_START_METHOD is not None:
        return None if FORCE_START_METHOD == "none" else \
            FORCE_START_METHOD
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return "fork"
    if "spawn" in methods:
        return "spawn"
    return None  # pragma: no cover - no such CPython platform


def _make_pool(workers: int, ctx_obj: WorkerContext) -> "Pool | None":
    """Create a worker pool with the context shipped, or ``None`` when
    the platform cannot provide one (callers then run in-process).

    Besides ``OSError`` (fd/process exhaustion), ``get_context`` raises
    ``ValueError`` for unknown start methods and ``Pool`` can raise
    ``RuntimeError`` in restricted environments — all three mean the
    same thing here: no pool, solve in-process instead of crashing.
    """
    method = preferred_start_method()
    if method is None:
        return None
    try:
        mp_ctx = multiprocessing.get_context(method)
        if method == "fork":
            # Children inherit the module global through fork.
            install_context(ctx_obj)
            return mp_ctx.Pool(workers)
        return mp_ctx.Pool(
            workers,
            initializer=worker_module.init_spawned_worker,
            initargs=(ctx_obj.pack(), ctx_obj.incumbent.handle))
    except (OSError, ValueError, RuntimeError):
        return None


def _pool_processes(pool: "Pool") -> list[Any]:
    """The pool's worker ``Process`` objects.

    ``multiprocessing.Pool`` keeps them in the private ``_pool`` list —
    stable across CPython 3.8–3.13 and the only liveness signal the
    Pool API exposes short of joining.
    """
    return list(getattr(pool, "_pool", None) or [])


def _worker_pids(pool: "Pool") -> frozenset[int]:
    return frozenset(
        proc.pid for proc in _pool_processes(pool)
        if proc.pid is not None)


def _bounded_join(pool: "Pool") -> None:
    """``pool.join()`` that cannot hang: escalate to terminate."""
    joiner = threading.Thread(target=pool.join, daemon=True)
    joiner.start()
    joiner.join(JOIN_TIMEOUT_SECONDS)
    if joiner.is_alive():  # pragma: no cover - stalled worker path
        pool.terminate()
        joiner.join(JOIN_TIMEOUT_SECONDS)


class ResilientDispatcher:
    """Run chunk payloads through a pool, surviving worker failures.

    One dispatcher serves one solve (it may run several :meth:`run`
    batches, e.g. PF* rounds, over the same pool).  ``want_pool``
    False keeps everything in-process — the thresholds
    (``MIN_POOL_TASKS`` etc.) stay the caller's decision.
    """

    def __init__(self, workers: int, ctx_obj: WorkerContext,
                 want_pool: bool = True) -> None:
        self.workers = workers
        self.ctx_obj = ctx_obj
        self.report = DispatchReport()
        self._want_pool = want_pool and workers > 1
        self._pool: "Pool | None" = None
        self._pool_pids: frozenset[int] = frozenset()
        self._failures = 0

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self) -> "Pool | None":
        if not self._want_pool or self.report.degraded:
            return None
        if self._pool is None:
            self._pool = _make_pool(self.workers, self.ctx_obj)
            if self._pool is None:
                # No pool on this platform at all: permanent fallback,
                # but not a *failure* — nothing broke.
                self._want_pool = False
            else:
                self.report.pooled = True
                self._pool_pids = _worker_pids(self._pool)
        return self._pool

    def _discard_pool(self, terminate: bool) -> None:
        pool, self._pool = self._pool, None
        self._pool_pids = frozenset()
        if pool is None:
            return
        if terminate:
            pool.terminate()
        else:
            pool.close()
        _bounded_join(pool)

    def _record_failure(self, message: str) -> None:
        self.report.failures.append(message)
        self._failures += 1
        self._discard_pool(terminate=True)
        if self._failures >= MAX_POOL_FAILURES:
            self.report.degraded = True
        else:
            self.report.rebuilds += 1

    def _pool_intact(self, pool: "Pool") -> bool:
        """Whether the worker set is exactly the one we started."""
        processes = _pool_processes(pool)
        if not processes:
            return False
        if _worker_pids(pool) != self._pool_pids:
            return False  # silent repopulation after a death
        return all(proc.is_alive() for proc in processes)

    def close(self) -> None:
        """Orderly shutdown with a bounded wait (idempotent)."""
        self._discard_pool(terminate=False)

    def abort(self) -> None:
        """Immediate shutdown — used on budget expiry, where waiting
        for in-flight (possibly stalled) chunks defeats the deadline."""
        self._discard_pool(terminate=True)

    # -- dispatch ------------------------------------------------------

    def run(
        self,
        runner: Callable[[tuple[int, int, Any]], tuple[int, Any]],
        payloads: list[Any],
        budget: "Budget | None" = None,
        on_recover: "Callable[[], None] | None" = None,
    ) -> Iterator[Any]:
        """Yield each payload's result exactly once, in arrival order.

        ``runner`` must be a module-level function taking the
        ``(index, attempt, payload)`` envelope and returning
        ``(index, result)`` (see the ``*_task`` wrappers in
        :mod:`repro.parallel.worker`).  Chunks lost to a pool failure
        are re-dispatched with ``attempt + 1``; after
        :data:`MAX_POOL_FAILURES` the remainder runs in-process.
        Budget expiry raises ``BudgetExceeded`` between results.

        ``on_recover`` runs after each pool failure, once the broken
        pool is terminated and before anything is re-dispatched — the
        only window with no live workers.  Engines use it to reset
        shared state (the incumbent) to the floor certified by
        *delivered* results: a lost chunk may have published a bound
        it can no longer prove, and re-running it against that bound
        would prune away its own re-certification.
        """
        pending: dict[int, Any] = dict(enumerate(payloads))
        self.report.dispatched += len(pending)
        attempt = 0
        while pending:
            pool = self._ensure_pool()
            if pool is None:
                yield from self._run_in_process(pending, runner,
                                                attempt, budget)
                return
            tasks = [(idx, attempt, pending[idx])
                     for idx in sorted(pending)]
            try:
                for idx, result in self._pull(pool, runner, tasks,
                                              budget):
                    del pending[idx]
                    self.report.completed += 1
                    yield result
            except PoolFailure as failure:
                self._record_failure(str(failure))
                if on_recover is not None:
                    on_recover()
                self.report.retried += len(pending)
                attempt += 1

    def _pull(
        self,
        pool: "Pool",
        runner: Callable[[tuple[int, int, Any]], tuple[int, Any]],
        tasks: list[tuple[int, int, Any]],
        budget: "Budget | None",
    ) -> Iterator[tuple[int, Any]]:
        """Heartbeat-pull every result of one dispatch batch.

        Raises :class:`PoolFailure` on worker death / a raising chunk,
        and ``BudgetExceeded`` (via the budget) on deadline expiry.
        """
        try:
            iterator: "IMapIterator[tuple[int, Any]]" = \
                pool.imap_unordered(runner, tasks)
        except (OSError, ValueError, RuntimeError) as exc:
            raise PoolFailure(f"dispatch failed: {exc!r}") from exc
        received = 0
        while received < len(tasks):
            try:
                idx, result = iterator.next(timeout=HEARTBEAT_SECONDS)
            except multiprocessing.TimeoutError:
                if budget is not None:
                    reason = budget.expired_reason()
                    if reason is not None:
                        budget.exceed(reason)
                if not self._pool_intact(pool):
                    raise PoolFailure("worker process died mid-chunk")
                continue
            except StopIteration:  # pragma: no cover - defensive
                raise PoolFailure("result stream ended early") from None
            except PoolFailure:
                raise
            except Exception as exc:
                # A chunk runner raised (e.g. an injected fault); the
                # imap stream is poisoned past this point, so treat it
                # as a pool failure and re-dispatch the unfinished rest.
                raise PoolFailure(f"chunk runner raised: {exc!r}") \
                    from exc
            received += 1
            yield idx, result

    def _run_in_process(
        self,
        pending: dict[int, Any],
        runner: Callable[[tuple[int, int, Any]], tuple[int, Any]],
        attempt: int,
        budget: "Budget | None",
    ) -> Iterator[Any]:
        """The degraded path: same runner, same envelopes, no pool."""
        install_context(self.ctx_obj)
        for idx in sorted(pending):
            if budget is not None:
                budget.check()
            _idx, result = runner((idx, attempt, pending.pop(idx)))
            self.report.completed += 1
            yield result
