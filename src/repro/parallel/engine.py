"""The fan-out driver: task planning, dispatch, result aggregation.

``mbc_ego_fanout`` replaces the serial ego-network sweep of MBC* when
``parallel > 1``; ``pf_round_fanout`` does the same for PF*'s
DCC sweep.  Both guarantee an optimum of **identical size** to the
serial engines regardless of scheduling:

* every task is defined by ``(u, higher-ranked mask)`` alone, so the
  union of tasks covers every candidate clique whatever the order;
* the shared incumbent only ever *grows* during a dispatch, and only
  to sizes of cliques actually found, so a task skipped against it can
  never have held a strictly larger clique — with one exception: after
  a pool failure the register is reset to the floor certified by
  *delivered* results (``on_recover``), because a bound published by a
  chunk whose result was lost is a claim nobody holds a witness for,
  and re-running that chunk against it would prune away its own
  re-certification;
* the parent aggregates every worker's best witness and takes the
  maximum.

Pool strategy: a fresh pool per solve, preferring the ``fork`` start
method — the parent installs the :class:`~repro.parallel.worker.
WorkerContext` in a module global first, so the children inherit the
reduced graph through the address-space copy and nothing is pickled at
all (the ISSUE's "shipped at pool start, not per-task pickles").
Platforms without ``fork`` fall back to ``spawn`` with the context
packed into compact byte blobs; if no pool can be created at all, the
same chunk runners execute in-process, which is also what tiny
workloads get (``MIN_POOL_TASKS``) since a pool costs ~10–20 ms to
spin up.

All pool mechanics live in :class:`~repro.parallel.dispatch.
ResilientDispatcher` (see :mod:`repro.parallel.dispatch`): chunks are
accounted individually, a dead or raising worker costs one pool
rebuild and a re-dispatch of only the unfinished chunks, a second
failure degrades to the in-process runner, and solve budgets
(:class:`repro.resilience.Budget`) are enforced between chunk results
— so a fan-out solve never loses work, never hangs, and stops on its
deadline even while the work sits in worker processes.
"""

from __future__ import annotations

import multiprocessing

from ..core.result import BalancedClique
from ..core.stats import SearchStats
from ..obs import Tracer, current_tracer
from ..resilience.budget import Budget, BudgetExceeded
from ..signed.graph import SignedGraph
from .dispatch import ResilientDispatcher, preferred_start_method
from .incumbent import SharedIncumbent
from .tasks import chunk_vertices, cost_ordered, estimated_work, \
    is_viable, plan_tasks
from .worker import WorkerContext, install_context, \
    run_dcc_chunk_task, run_dynamic_chunk_task, run_mdc_chunk_task

__all__ = [
    "resolve_workers",
    "preferred_start_method",
    "mbc_ego_fanout",
    "pf_round_fanout",
    "dynamic_ego_fanout",
    "MIN_POOL_TASKS",
    "MIN_POOL_WORK",
]

#: Below this many dispatchable tasks the plan runs in-process: pool
#: startup (~10-20 ms) would dominate the sweep itself.
MIN_POOL_TASKS = 24

#: Minimum :func:`~repro.parallel.tasks.estimated_work` before a pool
#: is worth its startup + IPC cost.  A sweep below this finishes in a
#: few milliseconds serially, so even on a many-core machine a pool is
#: a net loss for it.
MIN_POOL_WORK = 150_000


def resolve_workers(parallel: int | None) -> int:
    """Normalize the ``parallel`` knob: ``None``/``0``/``1`` mean
    serial; larger values request that many worker processes."""
    if parallel is None or parallel <= 1:
        return 1
    return int(parallel)


def _want_accounting(stats: SearchStats | None,
                     budget: "Budget | None") -> bool:
    """Whether chunk results must carry stats deltas.

    A node-capped budget needs them even when the caller passed no
    ``stats``: the parent charges each chunk's node count against the
    budget as results arrive (chunk-granular — a worker never holds a
    budget of its own).
    """
    return stats is not None or (
        budget is not None and budget.max_nodes is not None)


def _charge_chunk(budget: "Budget | None",
                  chunk_stats: SearchStats | None) -> None:
    """Charge one chunk's branch-and-bound nodes against the budget
    (raises ``BudgetExceeded`` when that crosses the node cap)."""
    if budget is not None and chunk_stats is not None:
        budget.spend(chunk_stats.nodes)


def mbc_ego_fanout(
    working: SignedGraph,
    mapping: list[int],
    tau: int,
    best: BalancedClique,
    order: list[int],
    workers: int,
    use_core: bool = True,
    use_coloring: bool = True,
    stats: SearchStats | None = None,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
    engine: str = "bitset",
) -> BalancedClique:
    """Run MBC*'s ego-network sweep as a parallel fan-out.

    Parameters mirror the serial sweep's state at line 5 of
    Algorithm 2: ``working`` is the reduced graph, ``mapping`` its
    vertex translation back to the caller's graph, ``best`` the
    incumbent (heuristic or caller-seeded), ``order`` the processing
    order over the ``|C*|``-core.  A live ``trace`` asks the workers
    for per-chunk :class:`~repro.obs.TraceBuffer` deltas, absorbed
    under one ``fanout`` span as chunk results arrive.  A ``budget``
    is enforced at chunk granularity: the deadline between chunk
    results (the dispatcher's heartbeat), the node cap from the
    chunks' stats deltas; on exhaustion the already-aggregated best
    witness is returned (anytime contract).  ``engine`` selects the
    worker-side kernel backend (``"bitset"`` or ``"numpy"``); task
    planning always runs on the parent's int masks, and the shipped
    context rebuilds the matching representation worker-side.
    """
    tracer = trace if trace is not None else current_tracer()
    pos_bits = working.pos_adjacency_bits()
    neg_bits = working.neg_adjacency_bits()
    tasks = plan_tasks(pos_bits, neg_bits, order)
    if stats is not None:
        stats.vertices_examined += len(tasks)

    # Pre-dispatch bound against the initial incumbent; workers re-check
    # against the live one before doing any real work.
    required = max(best.size + 1, 2 * tau)
    viable = [t for t in cost_ordered(tasks)
              if is_viable(t, required, tau)]
    if not viable:
        return best

    incumbent = SharedIncumbent(
        best.size,
        multiprocessing.get_context(preferred_start_method())
        if preferred_start_method() is not None else None)
    want_accounting = _want_accounting(stats, budget)
    ctx_obj = WorkerContext(
        pos_bits, neg_bits, working.num_vertices, tau, order, incumbent,
        use_core=use_core, use_coloring=use_coloring,
        want_stats=want_accounting, want_trace=tracer.enabled,
        engine=engine)
    chunks = chunk_vertices([t.u for t in viable], workers)

    want_pool = (workers > 1 and len(viable) >= MIN_POOL_TASKS
                 and estimated_work(viable) >= MIN_POOL_WORK)
    dispatcher = ResilientDispatcher(workers, ctx_obj,
                                     want_pool=want_pool)
    try:
        best_witness = None
        best_size = best.size
        with tracer.span("fanout", tasks=len(viable),
                         workers=workers) as fan_span:
            try:
                # On a pool failure the incumbent drops back to the
                # best *delivered* size: a lost chunk may have
                # published a size it can no longer prove, and its
                # re-run would be pruned by its own stale publication.
                for witness, chunk_stats, buffer, _examined, _skipped \
                        in dispatcher.run(
                            run_mdc_chunk_task, chunks, budget=budget,
                            on_recover=lambda:
                                incumbent.reset(best_size)):
                    if chunk_stats is not None and stats is not None:
                        stats.merge(chunk_stats)
                    _charge_chunk(budget, chunk_stats)
                    if buffer is not None:
                        tracer.absorb(buffer)
                    if witness is not None:
                        u, members = witness
                        size = len(members) + 1
                        if size > best_size:
                            best_size = size
                            best_witness = witness
            except BudgetExceeded:
                dispatcher.abort()
            if tracer.enabled:
                report = dispatcher.report
                fan_span.set(pooled=report.pooled,
                             rebuilds=report.rebuilds,
                             degraded=report.degraded)
                if budget is not None:
                    fan_span.set(status=budget.status.value)
    finally:
        dispatcher.close()
        install_context(None)

    if best_witness is None:
        return best
    u, members = best_witness
    left = {mapping[u]}
    right: set[int] = set()
    for vertex, is_left in members:
        if is_left:
            left.add(mapping[vertex])
        else:
            right.add(mapping[vertex])
    return BalancedClique.from_sides(left, right)


def dynamic_ego_fanout(
    pos_bits: list[int],
    neg_bits: list[int],
    n: int,
    tau: int,
    floor: int,
    egos: list[int],
    order: list[int],
    workers: int,
    work_estimate: int = 0,
    use_core: bool = True,
    use_coloring: bool = True,
    stats: SearchStats | None = None,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
    engine: str = "bitset",
) -> "tuple[list[tuple[int, int, list[tuple[int, bool]] | None]], bool]":
    """Dispatch the dynamic solver's dirty-ego subset.

    Unlike :func:`mbc_ego_fanout` this takes no graph: the dynamic
    solver owns incrementally-maintained adjacency masks and hands
    them over directly, with ``egos`` the (typically tiny) subset of
    anchors whose cached bounds cannot rule them out and ``floor`` the
    incumbent size certified by cached witnesses.  Vertex ids are
    global — the solver runs without a reduction mapping because the
    graph mutates between solves.  ``work_estimate`` is the solver's
    own cost forecast for ``egos`` (it already holds per-ego candidate
    counts, so re-planning tasks here would be an O(n) scan per solve);
    it only gates pool creation against ``MIN_POOL_WORK``.

    Returns ``(outcomes, completed)``; each outcome is the worker's
    ``(u, certified upper, members-or-None)`` triple.  Outcomes are
    certified individually (see
    :func:`repro.parallel.worker.run_dynamic_chunk`), so on budget
    exhaustion the partial list is returned with ``completed=False``
    and the caller commits what arrived — the unprocessed egos simply
    stay dirty.  A pool failure resets the shared incumbent to the
    floor certified by delivered witnesses, exactly as in
    :func:`mbc_ego_fanout`.
    """
    tracer = trace if trace is not None else current_tracer()
    if not egos:
        return [], True
    incumbent = SharedIncumbent(
        floor,
        multiprocessing.get_context(preferred_start_method())
        if preferred_start_method() is not None else None)
    want_accounting = _want_accounting(stats, budget)
    ctx_obj = WorkerContext(
        pos_bits, neg_bits, n, tau, order, incumbent,
        use_core=use_core, use_coloring=use_coloring,
        want_stats=want_accounting, want_trace=tracer.enabled,
        engine=engine)
    chunks = chunk_vertices(egos, workers)
    want_pool = (workers > 1 and len(egos) >= MIN_POOL_TASKS
                 and work_estimate >= MIN_POOL_WORK)
    dispatcher = ResilientDispatcher(workers, ctx_obj,
                                     want_pool=want_pool)
    outcomes: "list[tuple[int, int, list[tuple[int, bool]] | None]]" = []
    completed = True
    certified = floor
    try:
        with tracer.span("fanout", tasks=len(egos), workers=workers,
                         dynamic=True) as fan_span:
            try:
                for chunk_outcomes, chunk_stats, buffer, _examined, \
                        _skipped in dispatcher.run(
                            run_dynamic_chunk_task, chunks,
                            budget=budget,
                            on_recover=lambda:
                                incumbent.reset(certified)):
                    if chunk_stats is not None and stats is not None:
                        stats.merge(chunk_stats)
                    _charge_chunk(budget, chunk_stats)
                    if buffer is not None:
                        tracer.absorb(buffer)
                    outcomes.extend(chunk_outcomes)
                    for _u, upper, members in chunk_outcomes:
                        if members is not None:
                            certified = max(certified, upper)
            except BudgetExceeded:
                dispatcher.abort()
                completed = False
            if tracer.enabled:
                report = dispatcher.report
                fan_span.set(pooled=report.pooled,
                             rebuilds=report.rebuilds,
                             degraded=report.degraded,
                             delivered=len(outcomes))
                if budget is not None:
                    fan_span.set(status=budget.status.value)
    finally:
        dispatcher.close()
        install_context(None)
    return outcomes, completed


def pf_round_fanout(
    working: SignedGraph,
    mapping: list[int],
    order: list[int],
    pn: "dict[int, int] | list[int] | None",
    tau_star: int,
    witness: BalancedClique,
    workers: int,
    stats: SearchStats | None = None,
    trace: Tracer | None = None,
    budget: "Budget | None" = None,
    engine: str = "bitset",
) -> tuple[int, BalancedClique]:
    """Run PF*'s DCC sweep as rounds of parallel +1 questions.

    The serial sweep threads ``tau*`` through the loop, so it cannot be
    scattered as-is.  Instead the fan-out iterates *rounds*: every
    pending vertex is asked the ``(tau*, tau* + 1)`` question at the
    round's bar (or the live shared bar, whichever is higher); a vertex
    that fails at bar ``b`` has ``gamma(g_u) <= b`` and is dropped for
    good, while successes raise ``tau*`` and stay pending.  The
    fixpoint is exactly ``beta(G) = max_u gamma(g_u)``, independent of
    scheduling — each round needs only monotone bars, which the shared
    incumbent guarantees.  A live ``trace`` wraps each round in a
    ``round`` span and absorbs the workers' trace deltas under it.
    A ``budget`` stops between rounds or between a round's chunks;
    ``tau_star``/``witness`` are only advanced together after a full
    round, so the truncated return is always a certified pair.
    ``engine`` selects the worker-side kernel backend, as in
    :func:`mbc_ego_fanout`.
    """
    tracer = trace if trace is not None else current_tracer()
    pos_bits = working.pos_adjacency_bits()
    neg_bits = working.neg_adjacency_bits()
    method = preferred_start_method()
    incumbent = SharedIncumbent(
        tau_star,
        multiprocessing.get_context(method) if method is not None
        else None)
    want_accounting = _want_accounting(stats, budget)
    ctx_obj = WorkerContext(
        pos_bits, neg_bits, working.num_vertices, 0, order, incumbent,
        want_stats=want_accounting, want_trace=tracer.enabled,
        engine=engine)

    # PDecompose hands pn as a dense list; other reduction paths pass a
    # (possibly partial) dict.  Normalize so the round filter can use
    # ``.get`` with a safe default for vertices missing an entry.
    pn_map: "dict[int, int] | None"
    if pn is None:
        pn_map = None
    elif isinstance(pn, dict):
        pn_map = pn
    else:
        pn_map = dict(enumerate(pn))

    pending = [u for u in reversed(order)]
    want_pool = workers > 1 and len(pending) >= MIN_POOL_TASKS
    dispatcher = ResilientDispatcher(workers, ctx_obj,
                                     want_pool=want_pool)
    # The bar certified by *delivered* successes.  On a pool failure
    # the incumbent drops back to this floor: a lost chunk may have
    # published a bar it can no longer prove, and its re-run (asked at
    # that elevated bar) would fail the +1 question its original run
    # answered — silently losing the optimum.
    certified = tau_star
    try:
        while True:
            if budget is not None:
                budget.check()
            # Lemma 5: pn(u) bounds gamma(g_u); once the bar passes it,
            # the vertex can never answer a +1 question positively.
            # A vertex absent from pn was dropped by PDecompose's own
            # reduction, so it gets the no-op default tau_star + 1 and
            # the DCC question decides (it bounds, never filters, so a
            # loose default costs one question, not correctness).
            if pn_map is not None:
                pending = [u for u in pending
                           if pn_map.get(u, tau_star + 1) > tau_star]
            if not pending:
                break
            if stats is not None:
                stats.vertices_examined += len(pending)
            payloads = [(tau_star, chunk)
                        for chunk in chunk_vertices(pending, workers)]
            round_successes: list[tuple[int, int, list]] = []
            with tracer.span("round", bar=tau_star,
                             pending=len(pending)) as round_span:
                for successes, chunk_stats, buffer, _examined \
                        in dispatcher.run(
                            run_dcc_chunk_task, payloads, budget=budget,
                            on_recover=lambda:
                                incumbent.reset(certified)):
                    if chunk_stats is not None and stats is not None:
                        stats.merge(chunk_stats)
                    _charge_chunk(budget, chunk_stats)
                    if buffer is not None:
                        tracer.absorb(buffer)
                    round_successes.extend(successes)
                    for _u, bar, _m in successes:
                        certified = max(certified, bar + 1)
                round_span.set(successes=len(round_successes))
            if not round_successes:
                break
            new_tau = max(bar + 1 for _u, bar, _m in round_successes)
            # Deterministic witness: among the successes proving the
            # new bar, keep the earliest vertex in dispatch order.
            position = {u: i for i, u in enumerate(pending)}
            top = min(
                (s for s in round_successes if s[1] + 1 == new_tau),
                key=lambda s: position[s[0]])
            u, _bar, members = top
            left = {mapping[u]}
            right: set[int] = set()
            for vertex, is_left in members:
                if is_left:
                    left.add(mapping[vertex])
                else:
                    right.add(mapping[vertex])
            witness = BalancedClique.from_sides(left, right)
            tau_star = new_tau
            incumbent.improve(tau_star)
            survivors = {s[0] for s in round_successes}
            pending = [u for u in pending if u in survivors]
    except BudgetExceeded:
        # Anytime: the (tau_star, witness) pair from the last full
        # round is certified; in-flight round work is abandoned.
        dispatcher.abort()
    finally:
        dispatcher.close()
        install_context(None)
    return tau_star, witness
