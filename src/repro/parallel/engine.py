"""The fan-out driver: pools, dispatch, and result aggregation.

``mbc_ego_fanout`` replaces the serial ego-network sweep of MBC* when
``parallel > 1``; ``pf_round_fanout`` does the same for PF*'s
DCC sweep.  Both guarantee an optimum of **identical size** to the
serial engines regardless of scheduling:

* every task is defined by ``(u, higher-ranked mask)`` alone, so the
  union of tasks covers every candidate clique whatever the order;
* the shared incumbent only ever *grows*, and only to sizes of cliques
  actually found, so a task skipped against it can never have held a
  strictly larger clique;
* the parent aggregates every worker's best witness and takes the
  maximum.

Pool strategy: a fresh pool per solve, preferring the ``fork`` start
method — the parent installs the :class:`~repro.parallel.worker.
WorkerContext` in a module global first, so the children inherit the
reduced graph through the address-space copy and nothing is pickled at
all (the ISSUE's "shipped at pool start, not per-task pickles").
Platforms without ``fork`` fall back to ``spawn`` with the context
packed into compact byte blobs; if no pool can be created at all, the
same chunk runners execute in-process, which is also what tiny
workloads get (``MIN_POOL_TASKS``) since a pool costs ~10–20 ms to
spin up.
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from ..core.result import BalancedClique
from ..core.stats import SearchStats
from ..obs import Tracer, current_tracer
from ..signed.graph import SignedGraph

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.pool import Pool
from .incumbent import SharedIncumbent
from .tasks import chunk_vertices, cost_ordered, estimated_work, \
    is_viable, plan_tasks
from .worker import WorkerContext, install_context, run_dcc_chunk, \
    run_mdc_chunk
from . import worker as worker_module

__all__ = [
    "resolve_workers",
    "preferred_start_method",
    "mbc_ego_fanout",
    "pf_round_fanout",
    "MIN_POOL_TASKS",
    "MIN_POOL_WORK",
]

#: Below this many dispatchable tasks the plan runs in-process: pool
#: startup (~10-20 ms) would dominate the sweep itself.
MIN_POOL_TASKS = 24

#: Minimum :func:`~repro.parallel.tasks.estimated_work` before a pool
#: is worth its startup + IPC cost.  A sweep below this finishes in a
#: few milliseconds serially, so even on a many-core machine a pool is
#: a net loss for it.
MIN_POOL_WORK = 150_000

#: Test hook: force a specific multiprocessing start method (e.g.
#: ``"spawn"`` to exercise the packed-payload path on Linux), or
#: ``"none"`` to simulate a platform without usable pools.
FORCE_START_METHOD: str | None = None


def resolve_workers(parallel: int | None) -> int:
    """Normalize the ``parallel`` knob: ``None``/``0``/``1`` mean
    serial; larger values request that many worker processes."""
    if parallel is None or parallel <= 1:
        return 1
    return int(parallel)


def preferred_start_method() -> str | None:
    """``"fork"`` where available (zero-copy context shipping),
    ``"spawn"`` otherwise, ``None`` when pools cannot be used."""
    if FORCE_START_METHOD is not None:
        return None if FORCE_START_METHOD == "none" else \
            FORCE_START_METHOD
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return "fork"
    if "spawn" in methods:
        return "spawn"
    return None  # pragma: no cover - no such CPython platform


def _make_pool(workers: int, ctx_obj: WorkerContext) -> "Pool | None":
    """Create a worker pool with the context shipped, or ``None`` when
    the platform cannot provide one (callers then run in-process)."""
    method = preferred_start_method()
    if method is None:
        return None
    try:
        mp_ctx = multiprocessing.get_context(method)
        if method == "fork":
            # Children inherit the module global through fork.
            install_context(ctx_obj)
            return mp_ctx.Pool(workers)
        return mp_ctx.Pool(
            workers,
            initializer=worker_module.init_spawned_worker,
            initargs=(ctx_obj.pack(), ctx_obj.incumbent.handle))
    except OSError:  # pragma: no cover - resource exhaustion
        return None


def _run_chunks(
    pool: "Pool | None",
    runner: Callable[[Any], Any],
    chunks: Iterable[Any],
    ctx_obj: WorkerContext,
) -> Iterator[Any]:
    """Yield chunk results from the pool, or in-process when absent."""
    if pool is None:
        install_context(ctx_obj)
        for chunk in chunks:
            yield runner(chunk)
        return
    yield from pool.imap_unordered(runner, chunks)


def mbc_ego_fanout(
    working: SignedGraph,
    mapping: list[int],
    tau: int,
    best: BalancedClique,
    order: list[int],
    workers: int,
    use_core: bool = True,
    use_coloring: bool = True,
    stats: SearchStats | None = None,
    trace: Tracer | None = None,
) -> BalancedClique:
    """Run MBC*'s ego-network sweep as a parallel fan-out.

    Parameters mirror the serial sweep's state at line 5 of
    Algorithm 2: ``working`` is the reduced graph, ``mapping`` its
    vertex translation back to the caller's graph, ``best`` the
    incumbent (heuristic or caller-seeded), ``order`` the processing
    order over the ``|C*|``-core.  A live ``trace`` asks the workers
    for per-chunk :class:`~repro.obs.TraceBuffer` deltas, absorbed
    under one ``fanout`` span as chunk results arrive.
    """
    tracer = trace if trace is not None else current_tracer()
    pos_bits = working.pos_adjacency_bits()
    neg_bits = working.neg_adjacency_bits()
    tasks = plan_tasks(pos_bits, neg_bits, order)
    if stats is not None:
        stats.vertices_examined += len(tasks)

    # Pre-dispatch bound against the initial incumbent; workers re-check
    # against the live one before doing any real work.
    required = max(best.size + 1, 2 * tau)
    viable = [t for t in cost_ordered(tasks)
              if is_viable(t, required, tau)]
    if not viable:
        return best

    incumbent = SharedIncumbent(
        best.size,
        multiprocessing.get_context(preferred_start_method())
        if preferred_start_method() is not None else None)
    ctx_obj = WorkerContext(
        pos_bits, neg_bits, working.num_vertices, tau, order, incumbent,
        use_core=use_core, use_coloring=use_coloring,
        want_stats=stats is not None, want_trace=tracer.enabled)
    chunks = chunk_vertices([t.u for t in viable], workers)

    pool = None
    if (workers > 1 and len(viable) >= MIN_POOL_TASKS
            and estimated_work(viable) >= MIN_POOL_WORK):
        pool = _make_pool(workers, ctx_obj)
    try:
        best_witness = None
        best_size = best.size
        with tracer.span("fanout", tasks=len(viable), workers=workers,
                         pooled=pool is not None):
            for witness, chunk_stats, buffer, _examined, _skipped \
                    in _run_chunks(pool, run_mdc_chunk, chunks, ctx_obj):
                if chunk_stats is not None and stats is not None:
                    stats.merge(chunk_stats)
                if buffer is not None:
                    tracer.absorb(buffer)
                if witness is not None:
                    u, members = witness
                    size = len(members) + 1
                    if size > best_size:
                        best_size = size
                        best_witness = witness
    finally:
        if pool is not None:
            pool.close()
            pool.join()
        install_context(None)

    if best_witness is None:
        return best
    u, members = best_witness
    left = {mapping[u]}
    right: set[int] = set()
    for vertex, is_left in members:
        if is_left:
            left.add(mapping[vertex])
        else:
            right.add(mapping[vertex])
    return BalancedClique.from_sides(left, right)


def pf_round_fanout(
    working: SignedGraph,
    mapping: list[int],
    order: list[int],
    pn: "dict[int, int] | None",
    tau_star: int,
    witness: BalancedClique,
    workers: int,
    stats: SearchStats | None = None,
    trace: Tracer | None = None,
) -> tuple[int, BalancedClique]:
    """Run PF*'s DCC sweep as rounds of parallel +1 questions.

    The serial sweep threads ``tau*`` through the loop, so it cannot be
    scattered as-is.  Instead the fan-out iterates *rounds*: every
    pending vertex is asked the ``(tau*, tau* + 1)`` question at the
    round's bar (or the live shared bar, whichever is higher); a vertex
    that fails at bar ``b`` has ``gamma(g_u) <= b`` and is dropped for
    good, while successes raise ``tau*`` and stay pending.  The
    fixpoint is exactly ``beta(G) = max_u gamma(g_u)``, independent of
    scheduling — each round needs only monotone bars, which the shared
    incumbent guarantees.  A live ``trace`` wraps each round in a
    ``round`` span and absorbs the workers' trace deltas under it.
    """
    tracer = trace if trace is not None else current_tracer()
    pos_bits = working.pos_adjacency_bits()
    neg_bits = working.neg_adjacency_bits()
    method = preferred_start_method()
    incumbent = SharedIncumbent(
        tau_star,
        multiprocessing.get_context(method) if method is not None
        else None)
    ctx_obj = WorkerContext(
        pos_bits, neg_bits, working.num_vertices, 0, order, incumbent,
        want_stats=stats is not None, want_trace=tracer.enabled)

    pending = [u for u in reversed(order)]
    pool = None
    if workers > 1 and len(pending) >= MIN_POOL_TASKS:
        pool = _make_pool(workers, ctx_obj)
    try:
        while True:
            # Lemma 5: pn(u) bounds gamma(g_u); once the bar passes it,
            # the vertex can never answer a +1 question positively.
            if pn is not None:
                pending = [u for u in pending if pn[u] > tau_star]
            if not pending:
                break
            if stats is not None:
                stats.vertices_examined += len(pending)
            chunks = [(tau_star, chunk)
                      for chunk in chunk_vertices(pending, workers)]
            round_successes: list[tuple[int, int, list]] = []
            with tracer.span("round", bar=tau_star,
                             pending=len(pending)) as round_span:
                for successes, chunk_stats, buffer, _examined \
                        in _run_chunks(
                            pool, run_dcc_chunk, chunks, ctx_obj):
                    if chunk_stats is not None and stats is not None:
                        stats.merge(chunk_stats)
                    if buffer is not None:
                        tracer.absorb(buffer)
                    round_successes.extend(successes)
                round_span.set(successes=len(round_successes))
            if not round_successes:
                break
            new_tau = max(bar + 1 for _u, bar, _m in round_successes)
            # Deterministic witness: among the successes proving the
            # new bar, keep the earliest vertex in dispatch order.
            position = {u: i for i, u in enumerate(pending)}
            top = min(
                (s for s in round_successes if s[1] + 1 == new_tau),
                key=lambda s: position[s[0]])
            u, _bar, members = top
            left = {mapping[u]}
            right: set[int] = set()
            for vertex, is_left in members:
                if is_left:
                    left.add(mapping[vertex])
                else:
                    right.add(mapping[vertex])
            witness = BalancedClique.from_sides(left, right)
            tau_star = new_tau
            incumbent.improve(tau_star)
            survivors = {s[0] for s in round_successes}
            pending = [u for u in pending if u in survivors]
    finally:
        if pool is not None:
            pool.close()
            pool.join()
        install_context(None)
    return tau_star, witness
