"""Shared incumbent — the cross-worker lower bound.

The pruning power of every bound in the ego-network sweep (the global
``|C*|``-core, the per-instance core reduction, the colouring bound and
MDC's ``must_exceed`` bar) scales with the best clique size known *so
far*.  Serially that incumbent tightens as the sweep progresses; under
the fan-out engine it must tighten across processes, or each worker
would search against the stale initial bound.

:class:`SharedIncumbent` wraps a ``multiprocessing.Value`` (a single
lock-protected 64-bit integer in shared memory) behind a monotone
max-register interface: ``improve`` only ever raises the stored value,
so readers can act on a possibly-stale value without any correctness
risk — a stale bound is merely *looser*, never wrong.  Workers read the
register once per task (one lock round-trip, trivially amortized by
task cost) and publish immediately on improvement, so every worker's
bounds tighten as soon as any worker finds a better clique.

When multiprocessing primitives are unavailable (or the engine runs the
task plan in-process), :class:`SharedIncumbent` degrades to a plain
instance attribute with the same interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.context import BaseContext

__all__ = ["SharedIncumbent"]


class SharedIncumbent:
    """Monotone shared max-register for the best solution value.

    Parameters
    ----------
    initial:
        Starting value (e.g. the heuristic clique size, or PF*'s
        heuristic ``tau*``).
    ctx:
        A ``multiprocessing`` context; when ``None`` the register is a
        process-local attribute (the in-process fallback path).
    """

    def __init__(self, initial: int,
                 ctx: "BaseContext | None" = None) -> None:
        if ctx is None:
            self._value = None
            self._local = initial
        else:
            self._value = ctx.Value("q", initial)
            self._local = initial

    @classmethod
    def from_value(cls, value: Any) -> "SharedIncumbent":
        """Rewrap a ``multiprocessing.Value`` received by a spawned
        worker through the pool initializer."""
        incumbent = cls.__new__(cls)
        incumbent._value = value
        incumbent._local = 0
        return incumbent

    @property
    def shared(self) -> bool:
        """Whether the register lives in shared memory."""
        return self._value is not None

    @property
    def handle(self) -> Any:
        """The raw shared-memory ``Value`` (``None`` when local).

        This is what a ``spawn`` pool initializer receives —
        ``multiprocessing.Value`` carries its own shared-memory pickle
        reduction, so it must travel as itself, not wrapped.  Counter-
        part of :meth:`from_value`; the only sanctioned way for the
        engine to touch the register's storage.
        """
        return self._value

    def get(self) -> int:
        """Current value (may be stale by the time the caller acts —
        safe, because the register only grows)."""
        if self._value is None:
            return self._local
        return self._value.value

    def reset(self, value: int) -> None:
        """Forcibly store ``value``, abandoning monotonicity.

        Only legal while **no worker process is alive** — the resilient
        dispatcher calls this between terminating a failed pool and
        re-dispatching, to drop the register back to the parent's
        *certified* floor (delivered results only).  A publication from
        a chunk whose result was lost to the failure would otherwise
        keep pruning, and the re-dispatched chunk could never
        re-certify the very value that is pruning it.
        """
        if self._value is None:
            self._local = value
        else:
            with self._value.get_lock():
                self._value.value = value

    def improve(self, value: int) -> bool:
        """Raise the register to ``value`` if larger.

        Returns True when ``value`` actually improved the register —
        i.e. no other worker published something at least as good
        first.
        """
        if self._value is None:
            if value > self._local:
                self._local = value
                return True
            return False
        with self._value.get_lock():
            if value > self._value.value:
                self._value.value = value
                return True
            return False
