"""Ego-network task planning for the parallel fan-out engine.

MBC*'s sweep solves one independent maximum-dichromatic-clique instance
per vertex ``u`` of the reduced graph: the instance over ``u``'s
*higher-ranked* neighbours (vertices later in the processing order).
The instance is fully determined by ``(u, allowed_mask)`` — it does not
depend on *when* it runs — which is what makes the sweep embarrassingly
parallel: any schedule that eventually runs every task finds the
optimum, because for any clique the task anchored at its lowest-ranked
member contains the whole clique.

This module turns an ordering into an explicit task list and applies
the two dispatcher-side policies of the engine:

* **pre-dispatch bound** (:func:`is_viable`) — a task whose candidate
  counts already show it cannot beat the incumbent is dropped without
  ever building its ego network (three popcounts per task, versus the
  full network build + core reduction the serial sweep pays before its
  first size check);
* **cost ordering** (:func:`cost_ordered`) — largest candidate sets
  first, so the expensive instances cannot land last on one straggler
  worker, and the cliques most likely to raise the shared incumbent
  are attempted early.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EgoTask",
    "plan_tasks",
    "cost_ordered",
    "is_viable",
    "estimated_work",
    "chunk_vertices",
    "suffix_masks",
]


@dataclass(frozen=True)
class EgoTask:
    """One ego-network instance of the sweep.

    ``pos_count`` / ``neg_count`` are the sizes of the two candidate
    sides (``u``'s positive / negative higher-ranked neighbours) — the
    inputs of the pre-dispatch bound and the cost estimate.
    """

    u: int
    allowed_mask: int
    pos_count: int
    neg_count: int

    @property
    def cost(self) -> int:
        """Dispatch-cost estimate: the candidate-set size."""
        return self.pos_count + self.neg_count


def plan_tasks(
    pos_bits: list[int],
    neg_bits: list[int],
    order: list[int],
) -> list[EgoTask]:
    """Tasks for every vertex of ``order``, in serial sweep order.

    Reproduces the serial loop's accumulation exactly: the task of
    ``u`` allows the vertices processed before ``u`` in the reverse
    sweep, i.e. those ranked after ``u`` in ``order``.
    """
    tasks: list[EgoTask] = []
    allowed = 0
    for u in reversed(order):
        this_allowed = allowed
        allowed |= 1 << u
        tasks.append(EgoTask(
            u=u,
            allowed_mask=this_allowed,
            pos_count=(pos_bits[u] & this_allowed).bit_count(),
            neg_count=(neg_bits[u] & this_allowed).bit_count()))
    return tasks


def cost_ordered(tasks: list[EgoTask]) -> list[EgoTask]:
    """Largest candidate sets first; ties broken by vertex id so the
    dispatch order is deterministic."""
    return sorted(tasks, key=lambda t: (-t.cost, t.u))


def is_viable(task: EgoTask, required: int, tau: int) -> bool:
    """Whether the task can still beat the bar ``required``.

    The clique found by task ``u`` is ``u`` plus a dichromatic clique
    over its candidates, so it needs ``required - 1`` candidates
    surviving at all, ``tau - 1`` on the positive side (``u`` itself is
    the extra L-vertex) and ``tau`` on the negative side.  Conflict
    edges only shrink the instance further, so this bound is safe.
    """
    return (task.pos_count + task.neg_count + 1 >= required
            and task.pos_count >= tau - 1
            and task.neg_count >= tau)


def estimated_work(tasks: list[EgoTask]) -> int:
    """Aggregate sweep-cost estimate, ``sum(cost^2)``.

    Each instance's branch-and-bound cost grows superlinearly with its
    candidate-set size, so the squared cost separates sweeps worth a
    pool from sweeps that would be dominated by pool startup far more
    reliably than the task count does (many tiny tasks are still a
    cheap sweep).
    """
    return sum(t.cost * t.cost for t in tasks)


def chunk_vertices(
    vertices: list[int],
    workers: int,
    chunk_size: int | None = None,
) -> list[list[int]]:
    """Split a dispatch-ordered vertex list into contiguous chunks.

    Chunks are the unit of IPC: big enough to amortize the queue
    round-trip, small enough that the shared incumbent propagates
    between chunk pulls and that cost ordering still balances load.
    The default size aims for several chunks per worker.
    """
    if not vertices:
        return []
    if chunk_size is None:
        chunk_size = max(1, min(16, len(vertices) // (workers * 4) or 1))
    return [vertices[i:i + chunk_size]
            for i in range(0, len(vertices), chunk_size)]


def suffix_masks(order: list[int]) -> dict[int, int]:
    """``{u: mask of vertices after u in order}`` for every vertex.

    Workers rebuild the per-task allowed masks from the shipped
    ordering with this helper instead of receiving a mask per task:
    one O(len(order)) pass at pool start replaces an n-bit pickle per
    dispatched task.
    """
    masks: dict[int, int] = {}
    accumulated = 0
    for u in reversed(order):
        masks[u] = accumulated
        accumulated |= 1 << u
    return masks
