"""Worker-side execution of ego-network tasks.

Each pool worker holds one :class:`WorkerContext` — the reduced graph
as two adjacency-mask lists, the processing order, the constraint and
the shared incumbent — installed once at pool start:

* under ``fork`` the parent stores the context in the module global
  :data:`_CTX` *before* creating the pool, and the children inherit it
  through the address space copy (zero serialization);
* under ``spawn`` the parent ships :meth:`WorkerContext.pack` — the
  masks flattened to two fixed-stride byte blobs
  (:func:`repro.kernels.bitset.masks_to_bytes`) — through the pool
  initializer, and each child rebuilds the context once.

Chunks then carry only vertex ids; the per-task allowed masks are
rebuilt worker-side from the shipped order
(:func:`repro.parallel.tasks.suffix_masks`).

The per-task body of :func:`run_mdc_chunk` mirrors the serial bitset
sweep of :func:`repro.core.mbc_star.mbc_star` line for line (cheap
candidate bound, network build, core reduction, colouring bound, MDC)
with one difference: the bar is read from the shared incumbent at task
start, so any worker's improvement tightens every later task in every
process.  :func:`run_dcc_chunk` is the PF* analogue: one DCC
feasibility question per vertex at the round's (or the live shared)
``tau*`` bar.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core.stats import SearchStats
from ..dichromatic.build import dichromatic_network_from_masks, \
    dichromatic_network_from_matrix, ego_edge_count_from_masks, \
    ego_edge_count_from_matrix
from ..dichromatic.dcc import dichromatic_clique_witness
from ..dichromatic.mdc import solve_mdc
from ..kernels import npmask
from ..kernels.active import (
    active_edge_count_mask,
    bicore_active_mask,
    coloring_upper_bound_active_mask,
    k_core_active_mask,
)
from ..kernels.bitset import masks_from_bytes, masks_to_bytes
from ..obs import Span, TraceBuffer, Tracer, get_tracer, install_tracer
from ..resilience.faults import fire_faults
from .incumbent import SharedIncumbent
from .tasks import suffix_masks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dichromatic.graph import DichromaticGraph
    from ..kernels.npmask import Matrix, Row

__all__ = [
    "WorkerContext",
    "install_context",
    "init_spawned_worker",
    "run_mdc_chunk",
    "run_dcc_chunk",
    "run_dynamic_chunk",
    "run_mdc_chunk_task",
    "run_dcc_chunk_task",
    "run_dynamic_chunk_task",
    "PackedContext",
    "MdcChunkResult",
    "DccChunkResult",
    "DynamicChunkResult",
]

#: :meth:`WorkerContext.pack` wire format — two mask byte blobs, the
#: vertex count, tau, the processing order, the four flags, and the
#: engine name.  The blob layout is engine-independent
#: (``mask_stride(n)`` bytes per vertex, little-endian), so a numpy
#: worker rebuilds its matrices straight from the blob
#: (:func:`repro.kernels.npmask.matrix_from_bytes`) without re-packing
#: Python ints.
PackedContext = tuple[
    bytes, bytes, int, int, "list[int]", bool, bool, bool, bool, str]

#: ``(witness, stats delta, trace delta, examined, skipped)`` per MDC
#: chunk; the witness is ``(anchor u, [(vertex, is_left), ...])`` or
#: ``None``; the trace delta is the chunk tracer's
#: :class:`~repro.obs.TraceBuffer` (``None`` unless requested).
MdcChunkResult = tuple[
    "tuple[int, list[tuple[int, bool]]] | None",
    "SearchStats | None", "TraceBuffer | None", int, int]

#: ``(successes, stats delta, trace delta, examined)`` per DCC chunk;
#: each success is ``(u, bar_used, [(vertex, is_left), ...])``.
DccChunkResult = tuple[
    "list[tuple[int, int, list[tuple[int, bool]]]]",
    "SearchStats | None", "TraceBuffer | None", int]

#: ``(outcomes, stats delta, trace delta, examined, skipped)`` per
#: dynamic chunk; each outcome is ``(u, upper, members)`` — the
#: anchor, its certified ego upper bound, and the exact witness
#: ``[(vertex, is_left), ...]`` when the solve found one (``None``
#: otherwise).  Unlike :data:`MdcChunkResult`, *every* examined ego
#: reports back: the dynamic solver commits the bounds to its
#: per-vertex cache.
DynamicChunkResult = tuple[
    "list[tuple[int, int, list[tuple[int, bool]] | None]]",
    "SearchStats | None", "TraceBuffer | None", int, int]

#: The per-process context (set by fork inheritance or the spawn
#: initializer).  One solve at a time per pool.
_CTX: "WorkerContext | None" = None


class WorkerContext:
    """Everything a worker needs for one solve, shipped at pool start."""

    def __init__(
        self,
        pos_bits: "list[int] | None",
        neg_bits: "list[int] | None",
        n: int,
        tau: int,
        order: list[int],
        incumbent: SharedIncumbent,
        use_core: bool = True,
        use_coloring: bool = True,
        want_stats: bool = False,
        want_trace: bool = False,
        engine: str = "bitset",
        pos_mat: "Matrix | None" = None,
        neg_mat: "Matrix | None" = None,
    ) -> None:
        self.pos_bits = pos_bits
        self.neg_bits = neg_bits
        self.n = n
        self.tau = tau
        self.order = order
        self.incumbent = incumbent
        self.use_core = use_core
        self.use_coloring = use_coloring
        self.want_stats = want_stats
        self.want_trace = want_trace
        self.engine = engine
        self._pos_mat = pos_mat
        self._neg_mat = neg_mat
        self._allowed: dict[int, int] | None = None
        self._allowed_rows: "Matrix | None" = None

    def allowed(self, u: int) -> int:
        """Higher-ranked mask of ``u``, from the lazily-built suffix
        table (one pass over ``order`` per worker per solve)."""
        if self._allowed is None:
            self._allowed = suffix_masks(self.order)
        return self._allowed[u]

    def allowed_row(self, u: int) -> "Row":
        """Numpy-engine analogue of :meth:`allowed` — one lazily-built
        ``(n, words)`` suffix matrix per worker per solve."""
        if self._allowed_rows is None:
            self._allowed_rows = npmask.suffix_rows(self.order, self.n)
        return self._allowed_rows[u]

    def pos_matrix(self) -> "Matrix":
        """Positive adjacency as a mask matrix (built once per worker
        from the int masks under ``fork``; shipped pre-built or rebuilt
        from the blob under ``spawn``)."""
        if self._pos_mat is None:
            assert self.pos_bits is not None
            self._pos_mat = npmask.matrix_from_masks(
                self.pos_bits, self.n)
        return self._pos_mat

    def neg_matrix(self) -> "Matrix":
        """Negative adjacency as a mask matrix (see
        :meth:`pos_matrix`)."""
        if self._neg_mat is None:
            assert self.neg_bits is not None
            self._neg_mat = npmask.matrix_from_masks(
                self.neg_bits, self.n)
        return self._neg_mat

    def pack(self) -> PackedContext:
        """Compact picklable form for ``spawn`` pools.

        The adjacency dominates the payload; as byte blobs it pickles
        as two opaque buffers instead of ``2n`` big-int reductions.
        The incumbent's ``multiprocessing.Value`` travels separately —
        it carries its own shared-memory reduction.  Both engines emit
        the identical blob layout; the trailing engine name tells the
        spawned worker which representation to rebuild.
        """
        if self.pos_bits is not None and self.neg_bits is not None:
            pos_blob = masks_to_bytes(self.pos_bits, self.n)
            neg_blob = masks_to_bytes(self.neg_bits, self.n)
        else:
            pos_blob = npmask.matrix_to_bytes(self.pos_matrix(), self.n)
            neg_blob = npmask.matrix_to_bytes(self.neg_matrix(), self.n)
        return (
            pos_blob, neg_blob,
            self.n, self.tau, self.order,
            self.use_core, self.use_coloring, self.want_stats,
            self.want_trace, self.engine,
        )

    @classmethod
    def unpack(cls, packed: PackedContext,
               incumbent: SharedIncumbent) -> "WorkerContext":
        pos_blob, neg_blob, n, tau, order, use_core, use_coloring, \
            want_stats, want_trace, engine = packed
        if engine == "numpy":
            # Array round-trip: the blobs become matrices directly —
            # no intermediate Python-int masks are ever built.
            return cls(
                None, None, n, tau, order, incumbent,
                use_core=use_core, use_coloring=use_coloring,
                want_stats=want_stats, want_trace=want_trace,
                engine=engine,
                pos_mat=npmask.matrix_from_bytes(pos_blob, n),
                neg_mat=npmask.matrix_from_bytes(neg_blob, n))
        return cls(
            masks_from_bytes(pos_blob, n), masks_from_bytes(neg_blob, n),
            n, tau, order, incumbent,
            use_core=use_core, use_coloring=use_coloring,
            want_stats=want_stats, want_trace=want_trace, engine=engine)


def install_context(ctx: "WorkerContext | None") -> None:
    """Set the process-local context (fork path and in-process path)."""
    global _CTX
    _CTX = ctx


def init_spawned_worker(packed: PackedContext, value: Any) -> None:
    """Pool initializer for ``spawn`` contexts."""
    incumbent = SharedIncumbent.from_value(value)
    install_context(WorkerContext.unpack(packed, incumbent))


def run_mdc_chunk(chunk: list[int]) -> MdcChunkResult:
    """Solve the MDC instances of ``chunk`` against the live incumbent.

    Returns ``(witness, stats, buffer, examined, skipped)`` where
    ``witness`` is ``(u, members)`` for the best clique found in this
    chunk (``members`` are ``(vertex, is_left)`` pairs in reduced-graph
    ids, excluding the anchor ``u``) or ``None``; ``stats`` is the
    chunk's :class:`SearchStats` delta and ``buffer`` its
    :class:`~repro.obs.TraceBuffer` (each ``None`` unless requested);
    and ``examined`` / ``skipped`` count processed tasks and pre-bound
    skips for the dispatch report.
    """
    ctx = _CTX
    assert ctx is not None, "worker context not installed"
    tau = ctx.tau
    incumbent = ctx.incumbent
    stats = SearchStats() if ctx.want_stats else None
    tracer = get_tracer(ctx.want_trace)
    # Ambient for the chunk's duration, so kernel-layer spans (mask
    # builds inside the network constructors) land in the buffer too.
    previous = install_tracer(tracer) if ctx.want_trace else None
    ego_solver = _mdc_ego_np if ctx.engine == "numpy" else _mdc_ego_bits
    best_witness = None
    best_size = 0
    skipped = 0

    with tracer.span("chunk", size=len(chunk)):
        for u in chunk:
            with tracer.span("ego", v=u) as ego:
                # The bar, refreshed once per task from the shared
                # register: a stale read only loosens the bound, never
                # breaks correctness.
                required = max(incumbent.get() + 1, 2 * tau)
                pruned, _upper, network, found = ego_solver(
                    ctx, u, required, stats, tracer, ego)
                if pruned is not None:
                    if pruned == "bound":
                        skipped += 1
                    ego.set(pruned=pruned)
                    continue
                ego.set(found=found is not None)
                if found is None or network is None:
                    continue
                size = len(found) + 1
                incumbent.improve(size)
                if size > best_size:
                    best_size = size
                    best_witness = (u, [
                        (network.origin[v], network.is_left[v])
                        for v in found])

    if ctx.want_trace:
        install_tracer(previous)
    buffer = tracer.export_buffer() if ctx.want_trace else None
    return best_witness, stats, buffer, len(chunk), skipped


def _mdc_ego_bits(
    ctx: WorkerContext,
    u: int,
    required: int,
    stats: "SearchStats | None",
    tracer: Tracer,
    ego: Span,
) -> "tuple[str | None, int, DichromaticGraph | None, set[int] | None]":
    """One bitset-engine MDC ego task: prune chain + exact solve.

    Returns ``(pruned reason, upper, network, witness)``; exactly one
    of the reason and the network is ``None``, and the witness is
    ``None`` unless the solve improved on ``required``.  ``upper`` is a
    *certified* upper bound on the size of any tau-satisfying balanced
    clique anchored at ``u`` — an unconditional fact about the ego
    instance (candidate counts, network size, or the exhaustiveness of
    the pruned/finished search below ``required``), so it stays valid
    however ``required`` was derived, even from an incumbent
    publication later lost to a pool failure.  Lower bounds are the
    opposite: only a delivered witness certifies one.
    """
    pos_bits, neg_bits, tau = ctx.pos_bits, ctx.neg_bits, ctx.tau
    assert pos_bits is not None and neg_bits is not None
    allowed = ctx.allowed(u)
    pos_count = (pos_bits[u] & allowed).bit_count()
    neg_count = (neg_bits[u] & allowed).bit_count()
    if pos_count < tau - 1 or neg_count < tau:
        # No anchored clique can satisfy tau at all.
        return "bound", 0, None, None
    if pos_count + neg_count + 1 < required:
        return "bound", pos_count + neg_count + 1, None, None
    network = dichromatic_network_from_masks(
        pos_bits, neg_bits, u, allowed)
    if network.num_vertices + 1 < required:
        return "size", network.num_vertices + 1, None, None
    adj_bits = network.adjacency_bits()
    active_mask = network.all_bits()
    if ctx.use_core:
        active_mask = k_core_active_mask(
            adj_bits, required - 2, active_mask)
    # Core/colour prunes certify only "nothing >= required": an
    # anchored clique of size required - 1 may live outside the
    # (required - 2)-core, so the bound cannot be tightened further.
    if active_mask.bit_count() + 1 < required:
        return "core", required - 1, None, None
    if ctx.use_coloring:
        bound = coloring_upper_bound_active_mask(adj_bits, active_mask)
        if bound < required - 1:
            return "color", required - 1, None, None
    ego.set(n=network.num_vertices, reduced=active_mask.bit_count())
    if stats is not None:
        stats.instances += 1
        ego_edges = ego_edge_count_from_masks(
            pos_bits, neg_bits, u, allowed)
        reduced_edges = active_edge_count_mask(adj_bits, active_mask)
        stats.record_reduction(
            ego_edges, network.num_edges, reduced_edges)
    found = solve_mdc(
        network, tau - 1, tau,
        must_exceed=required - 2,
        stats=stats,
        engine="bitset",
        use_coloring=ctx.use_coloring,
        use_core=ctx.use_core,
        active_mask=active_mask,
        trace=tracer)
    # Exhaustive above the floor: a witness is the exact anchored
    # optimum; no witness proves nothing >= required exists.
    upper = len(found) + 1 if found is not None else required - 1
    return None, upper, network, found


def _mdc_ego_np(
    ctx: WorkerContext,
    u: int,
    required: int,
    stats: "SearchStats | None",
    tracer: Tracer,
    ego: Span,
) -> "tuple[str | None, int, DichromaticGraph | None, set[int] | None]":
    """Numpy-engine mirror of :func:`_mdc_ego_bits` — same prune chain
    over the mask-matrix kernels, same solve at ``engine="numpy"``,
    same certified-upper-bound contract."""
    pos_mat, neg_mat = ctx.pos_matrix(), ctx.neg_matrix()
    tau = ctx.tau
    allowed = ctx.allowed_row(u)
    pos_count = npmask.degree_in_active(pos_mat, u, allowed)
    neg_count = npmask.degree_in_active(neg_mat, u, allowed)
    if pos_count < tau - 1 or neg_count < tau:
        return "bound", 0, None, None
    if pos_count + neg_count + 1 < required:
        return "bound", pos_count + neg_count + 1, None, None
    network = dichromatic_network_from_matrix(
        pos_mat, neg_mat, u, allowed)
    if network.num_vertices + 1 < required:
        return "size", network.num_vertices + 1, None, None
    adj_mat = network.adjacency_matrix()
    active_row = network.all_row()
    if ctx.use_core:
        active_row = npmask.k_core_active(
            adj_mat, required - 2, active_row)
    reduced_count = npmask.row_count(active_row)
    if reduced_count + 1 < required:
        return "core", required - 1, None, None
    if ctx.use_coloring:
        bound = npmask.coloring_upper_bound_active(adj_mat, active_row)
        if bound < required - 1:
            return "color", required - 1, None, None
    ego.set(n=network.num_vertices, reduced=reduced_count)
    if stats is not None:
        stats.instances += 1
        ego_edges = ego_edge_count_from_matrix(
            pos_mat, neg_mat, u, allowed)
        reduced_edges = npmask.active_edge_count(adj_mat, active_row)
        stats.record_reduction(
            ego_edges, network.num_edges, reduced_edges)
    found = solve_mdc(
        network, tau - 1, tau,
        must_exceed=required - 2,
        stats=stats,
        engine="numpy",
        use_coloring=ctx.use_coloring,
        use_core=ctx.use_core,
        active_row=active_row,
        trace=tracer)
    upper = len(found) + 1 if found is not None else required - 1
    return None, upper, network, found


def run_mdc_chunk_task(
    task: "tuple[int, int, list[int]]",
) -> "tuple[int, MdcChunkResult]":
    """Dispatch envelope for :func:`run_mdc_chunk`.

    ``task`` is the resilient dispatcher's ``(chunk index, dispatch
    attempt, payload)`` triple; the index round-trips so the parent
    can account per-chunk completion, and ``(index, attempt)`` keys
    the fault-injection plan (:mod:`repro.resilience.faults`) — a
    no-op unless the chaos suite installed one.
    """
    idx, attempt, chunk = task
    fire_faults(idx, attempt)
    return idx, run_mdc_chunk(chunk)


def run_dcc_chunk_task(
    task: "tuple[int, int, tuple[int, list[int]]]",
) -> "tuple[int, DccChunkResult]":
    """Dispatch envelope for :func:`run_dcc_chunk` (see above)."""
    idx, attempt, payload = task
    fire_faults(idx, attempt)
    return idx, run_dcc_chunk(payload)


def run_dynamic_chunk(chunk: list[int]) -> DynamicChunkResult:
    """Re-solve the dirty ego instances of ``chunk`` for the dynamic
    solver, reporting a certified bound per ego.

    The per-ego body is :func:`run_mdc_chunk`'s, but the aggregation
    differs: instead of keeping only the chunk's best witness, every
    examined ego yields an ``(u, upper, members)`` outcome so the
    parent :class:`repro.dynamic.DynamicSolver` can commit it to its
    per-vertex cache.  ``upper`` is unconditionally certified (see
    :func:`_mdc_ego_bits`), so outcomes stay committable even when the
    dispatch is later truncated by a budget or survives a pool
    failure; ``members`` (translated to graph ids worker-side) is
    present exactly when the solve found the anchored optimum, which
    the parent records as ``lower = upper``.
    """
    ctx = _CTX
    assert ctx is not None, "worker context not installed"
    tau = ctx.tau
    incumbent = ctx.incumbent
    stats = SearchStats() if ctx.want_stats else None
    tracer = get_tracer(ctx.want_trace)
    previous = install_tracer(tracer) if ctx.want_trace else None
    ego_solver = _mdc_ego_np if ctx.engine == "numpy" else _mdc_ego_bits
    outcomes: "list[tuple[int, int, list[tuple[int, bool]] | None]]" = []
    skipped = 0

    with tracer.span("chunk", size=len(chunk), dynamic=True):
        for u in chunk:
            with tracer.span("ego", v=u) as ego:
                required = max(incumbent.get() + 1, 2 * tau)
                pruned, upper, network, found = ego_solver(
                    ctx, u, required, stats, tracer, ego)
                if pruned is not None:
                    if pruned == "bound":
                        skipped += 1
                    ego.set(pruned=pruned)
                    outcomes.append((u, upper, None))
                    continue
                ego.set(found=found is not None)
                if found is None or network is None:
                    outcomes.append((u, upper, None))
                    continue
                incumbent.improve(len(found) + 1)
                outcomes.append((u, upper, [
                    (network.origin[v], network.is_left[v])
                    for v in found]))

    if ctx.want_trace:
        install_tracer(previous)
    buffer = tracer.export_buffer() if ctx.want_trace else None
    return outcomes, stats, buffer, len(chunk), skipped


def run_dynamic_chunk_task(
    task: "tuple[int, int, list[int]]",
) -> "tuple[int, DynamicChunkResult]":
    """Dispatch envelope for :func:`run_dynamic_chunk` (same
    ``(index, attempt, payload)`` triple as :func:`run_mdc_chunk_task`)."""
    idx, attempt, chunk = task
    fire_faults(idx, attempt)
    return idx, run_dynamic_chunk(chunk)


def run_dcc_chunk(args: tuple[int, list[int]]) -> DccChunkResult:
    """PF* round worker: one +1 feasibility question per vertex.

    ``args`` is ``(bar, chunk)`` — the round's ``tau*`` and the vertex
    ids to check.  Each check runs at ``max(bar, incumbent)`` so that
    successes elsewhere in the round tighten later questions; a success
    at bar ``b`` proves a clique with polarization ``b + 1`` and is
    published as such.  Returns ``(successes, stats, buffer,
    examined)`` with ``successes`` a list of ``(u, bar_used,
    members)``.
    """
    ctx = _CTX
    assert ctx is not None, "worker context not installed"
    bar, chunk = args
    incumbent = ctx.incumbent
    stats = SearchStats() if ctx.want_stats else None
    tracer = get_tracer(ctx.want_trace)
    previous = install_tracer(tracer) if ctx.want_trace else None
    ego_solver = _dcc_ego_np if ctx.engine == "numpy" else _dcc_ego_bits
    successes = []

    with tracer.span("chunk", size=len(chunk), bar=bar):
        for u in chunk:
            with tracer.span("ego", v=u) as ego:
                bar_used = max(bar, incumbent.get())
                pruned, network, found = ego_solver(
                    ctx, u, bar_used, stats, tracer, ego)
                if pruned is not None:
                    ego.set(pruned=pruned)
                    continue
                ego.set(found=found is not None)
                if found is None or network is None:
                    continue
                incumbent.improve(bar_used + 1)
                successes.append((u, bar_used, [
                    (network.origin[v], network.is_left[v])
                    for v in found]))

    if ctx.want_trace:
        install_tracer(previous)
    buffer = tracer.export_buffer() if ctx.want_trace else None
    return successes, stats, buffer, len(chunk)


def _dcc_ego_bits(
    ctx: WorkerContext,
    u: int,
    bar_used: int,
    stats: "SearchStats | None",
    tracer: Tracer,
    ego: Span,
) -> "tuple[str | None, DichromaticGraph | None, set[int] | None]":
    """One bitset-engine DCC ego task: candidate bound, bicore, check.

    Same contract as :func:`_mdc_ego_bits`.
    """
    pos_bits, neg_bits = ctx.pos_bits, ctx.neg_bits
    assert pos_bits is not None and neg_bits is not None
    allowed = ctx.allowed(u)
    # Cheap candidate bound first: the witness needs bar_used positive
    # and bar_used + 1 negative candidates besides u.
    if ((pos_bits[u] & allowed).bit_count() < bar_used
            or (neg_bits[u] & allowed).bit_count() < bar_used + 1):
        return "bound", None, None
    network = dichromatic_network_from_masks(
        pos_bits, neg_bits, u, allowed)
    adj_bits = network.adjacency_bits()
    left_bits = network.left_bits()
    active_mask = bicore_active_mask(
        adj_bits, left_bits, bar_used, bar_used + 1,
        network.all_bits())
    left_count = (active_mask & left_bits).bit_count()
    right_count = active_mask.bit_count() - left_count
    if left_count < bar_used or right_count < bar_used + 1:
        return "core", None, None
    ego.set(n=network.num_vertices)
    if stats is not None:
        stats.instances += 1
        ego_edges = ego_edge_count_from_masks(
            pos_bits, neg_bits, u, allowed)
        reduced = active_edge_count_mask(adj_bits, active_mask)
        stats.record_reduction(ego_edges, network.num_edges, reduced)
    found = dichromatic_clique_witness(
        network, bar_used, bar_used + 1, stats=stats,
        engine="bitset", active_mask=active_mask, trace=tracer)
    return None, network, found


def _dcc_ego_np(
    ctx: WorkerContext,
    u: int,
    bar_used: int,
    stats: "SearchStats | None",
    tracer: Tracer,
    ego: Span,
) -> "tuple[str | None, DichromaticGraph | None, set[int] | None]":
    """Numpy-engine mirror of :func:`_dcc_ego_bits`."""
    pos_mat, neg_mat = ctx.pos_matrix(), ctx.neg_matrix()
    allowed = ctx.allowed_row(u)
    # Cheap candidate bound first: the witness needs bar_used positive
    # and bar_used + 1 negative candidates besides u.
    if (npmask.degree_in_active(pos_mat, u, allowed) < bar_used
            or npmask.degree_in_active(neg_mat, u, allowed)
            < bar_used + 1):
        return "bound", None, None
    network = dichromatic_network_from_matrix(
        pos_mat, neg_mat, u, allowed)
    adj_mat = network.adjacency_matrix()
    left_row = network.left_row()
    active_row = npmask.bicore_active(
        adj_mat, left_row, bar_used, bar_used + 1, network.all_row())
    left_count = npmask.row_count(active_row & left_row)
    right_count = npmask.row_count(active_row) - left_count
    if left_count < bar_used or right_count < bar_used + 1:
        return "core", None, None
    ego.set(n=network.num_vertices)
    if stats is not None:
        stats.instances += 1
        ego_edges = ego_edge_count_from_matrix(
            pos_mat, neg_mat, u, allowed)
        reduced = npmask.active_edge_count(adj_mat, active_row)
        stats.record_reduction(ego_edges, network.num_edges, reduced)
    found = dichromatic_clique_witness(
        network, bar_used, bar_used + 1, stats=stats,
        engine="numpy", active_row=active_row, trace=tracer)
    return None, network, found
