"""Resilience layer: solve budgets and deterministic fault injection.

``repro.resilience`` is a bottom layer of the import DAG (like
:mod:`repro.obs`): it imports nothing from the solver stack, and the
solver stack threads its primitives through as plain parameters.

* :mod:`repro.resilience.budget` — the deadline / node-count budget
  behind the anytime-solver contract (``--timeout`` / ``--max-nodes``):
  a truncated solve returns its best proven incumbent plus
  ``status = BUDGET_EXHAUSTED`` instead of raising or hanging.
* :mod:`repro.resilience.faults` — an environment-driven fault plan
  (kill / raise / stall, keyed by chunk index and dispatch attempt)
  that the chaos test suite uses to prove the parallel engine survives
  worker death without losing work.

See ``docs/ROBUSTNESS.md`` for the full contract.
"""

from .budget import (
    DEADLINE_CHECK_INTERVAL,
    Budget,
    BudgetExceeded,
    Status,
)
from .faults import (
    ENV_FAULTS,
    ENV_FAULTS_PARENT,
    Fault,
    FaultInjected,
    KILL_EXIT_CODE,
    active_faults,
    clear_faults,
    encode_plan,
    fire_faults,
    install_faults,
    parse_plan,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "Status",
    "DEADLINE_CHECK_INTERVAL",
    "Fault",
    "FaultInjected",
    "ENV_FAULTS",
    "ENV_FAULTS_PARENT",
    "KILL_EXIT_CODE",
    "install_faults",
    "clear_faults",
    "active_faults",
    "fire_faults",
    "parse_plan",
    "encode_plan",
]
