"""Solve budgets: wall-clock deadlines and branch-and-bound node caps.

A :class:`Budget` is created once per solve (``Budget(deadline=5.0)``,
``Budget(max_nodes=100_000)``, or both) and threaded through the
solver stack as a ``budget=`` kwarg.  The solvers charge it at three
granularities:

* :meth:`Budget.spend` — once per branch-and-bound node, inside the
  MDC / DCC recursion.  The node ceiling is exact; the wall clock is
  only polled every :data:`DEADLINE_CHECK_INTERVAL` spent nodes so the
  hot path stays a counter increment and two comparisons.
* :meth:`Budget.check` — at coarse checkpoints (per ego network, per
  binary-search probe, per PF* round, per gMBC* tau) where a clock
  read is cheap relative to the work it gates.
* the parallel dispatcher's heartbeat — between chunk results, so a
  pooled solve honours the deadline even while all the work is in
  worker processes.

Exhaustion raises :class:`BudgetExceeded`; each solver catches it at
the level where its incumbent lives and returns that incumbent — the
*anytime* contract.  The budget records what happened: ``status`` is
:attr:`Status.BUDGET_EXHAUSTED` afterwards and :attr:`Budget.reason`
names the exhausted resource (``"deadline"`` or ``"nodes"``).  Once
exhausted a budget stays exhausted: ``check()`` keeps raising, so a
budget shared across probes (binary search, gMBC*) stops the whole
composition, not just the probe that tripped it.

The clock is injectable for deterministic tests; production use reads
``time.monotonic``.  This module deliberately lives outside the
R008-traced packages so it may read clocks directly.
"""

from __future__ import annotations

import enum
import time
from typing import Callable

__all__ = [
    "Budget",
    "BudgetExceeded",
    "Status",
    "DEADLINE_CHECK_INTERVAL",
]


class Status(enum.Enum):
    """Outcome classification of a (possibly budgeted) solve."""

    #: The solver ran to completion; its answer is exact.
    OPTIMAL = "optimal"
    #: The budget ran out; the answer is a certified lower bound (a
    #: real clique / proven tau*), not necessarily the optimum.
    BUDGET_EXHAUSTED = "budget_exhausted"


class BudgetExceeded(Exception):
    """Raised by budget checks when a resource limit is crossed.

    Solvers catch this at the granularity where their incumbent is in
    scope and return the incumbent; user code normally never sees it.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"solve budget exhausted ({reason})")
        self.reason = reason


#: :meth:`Budget.spend` polls the wall clock once per this many spent
#: nodes.  A branch-and-bound node costs far more than 1/256th of a
#: ``time.monotonic`` call, so deadline overshoot stays negligible
#: while the per-node cost stays a counter and two comparisons.
DEADLINE_CHECK_INTERVAL = 256


class Budget:
    """A per-solve resource budget (wall-clock and/or node count).

    ``deadline`` is seconds from construction; ``max_nodes`` caps the
    total branch-and-bound nodes spent across every MDC/DCC instance
    of the solve (including pooled workers, accounted per chunk).
    Either may be ``None``.  ``clock`` is injectable for tests.
    """

    __slots__ = ("deadline", "max_nodes", "nodes", "reason",
                 "_clock", "_deadline_at", "_tick")

    def __init__(
        self,
        deadline: float | None = None,
        max_nodes: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        if max_nodes is not None and max_nodes < 0:
            raise ValueError(f"max_nodes must be >= 0, got {max_nodes}")
        self.deadline = deadline
        self.max_nodes = max_nodes
        self.nodes = 0
        #: ``None`` until exhausted, then ``"deadline"`` or ``"nodes"``.
        self.reason: str | None = None
        self._clock = clock
        self._deadline_at = (
            None if deadline is None else clock() + deadline)
        self._tick = 0

    # -- state ---------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """Whether a limit has been *observed* crossed (sticky)."""
        return self.reason is not None

    @property
    def status(self) -> Status:
        """The anytime status this budget implies for its solve."""
        return (Status.BUDGET_EXHAUSTED if self.reason is not None
                else Status.OPTIMAL)

    def expired_reason(self) -> str | None:
        """Which limit is crossed right now, without raising.

        Used by the dispatcher's heartbeat, where the raise must happen
        on the consumer side of the generator.
        """
        if self.reason is not None:
            return self.reason
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            return "nodes"
        if (self._deadline_at is not None
                and self._clock() >= self._deadline_at):
            return "deadline"
        return None

    # -- charging ------------------------------------------------------

    def spend(self, nodes: int = 1) -> None:
        """Charge ``nodes`` branch-and-bound nodes; raise when over.

        The hot-path call.  Guard call sites with
        ``if budget is not None`` so an unbudgeted solve pays a single
        comparison per node and nothing else.
        """
        self.nodes += nodes
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            self.exceed("nodes")
        if self._deadline_at is not None:
            self._tick += nodes
            if self._tick >= DEADLINE_CHECK_INTERVAL:
                self._tick = 0
                if self._clock() >= self._deadline_at:
                    self.exceed("deadline")

    def check(self) -> None:
        """Coarse checkpoint: poll both limits, raise when over.

        Also re-raises when already exhausted, so a shared budget stops
        every later phase of a composite solve immediately.
        """
        reason = self.expired_reason()
        if reason is not None:
            self.exceed(reason)

    def exceed(self, reason: str) -> None:
        """Mark the budget exhausted (first reason wins) and raise."""
        if self.reason is None:
            self.reason = reason
        raise BudgetExceeded(self.reason)
