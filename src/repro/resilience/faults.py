"""Deterministic fault injection for the parallel dispatch path.

The chaos test suite needs to prove that the fan-out engine survives a
worker dying mid-chunk, a chunk runner raising, and a chunk stalling —
*deterministically*, across both ``fork`` and ``spawn`` pools.  The
only channel that reaches workers under both start methods without
touching the dispatch payloads is the environment, so the fault plan
lives in two environment variables:

* :data:`ENV_FAULTS` — the plan itself, ``;``-separated tokens of the
  form ``kind@chunk#attempt`` (``stall`` adds ``:seconds``), e.g.
  ``"kill@0#0;stall@2#0:0.5"``: kill the worker running chunk 0 on
  dispatch attempt 0, stall chunk 2 for half a second.
* :data:`ENV_FAULTS_PARENT` — the pid of the process that installed
  the plan.  :func:`fire_faults` never fires in that process, so a
  ``kill`` fault can only ever take down a *worker*; the in-process
  fallback path (which runs chunk code in the parent) is immune by
  construction.

Faults are keyed by ``(chunk index, dispatch attempt)``: when the
dispatcher rebuilds a pool and re-dispatches, the attempt number
increments and a once-keyed fault does not re-fire — which is exactly
the "crash once, recover" story the chaos tests script.

With :data:`ENV_FAULTS` unset, :func:`fire_faults` is one dict lookup
per chunk — nothing on the solver hot path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "Fault",
    "FaultInjected",
    "ENV_FAULTS",
    "ENV_FAULTS_PARENT",
    "KILL_EXIT_CODE",
    "FAULT_KINDS",
    "install_faults",
    "clear_faults",
    "active_faults",
    "fire_faults",
    "parse_plan",
    "encode_plan",
]

#: Fault plan spec (see module docstring for the grammar).
ENV_FAULTS = "REPRO_FAULTS"

#: Pid of the installing process; faults never fire there.
ENV_FAULTS_PARENT = "REPRO_FAULTS_PARENT"

#: Exit status of a ``kill``-faulted worker — distinctive on purpose,
#: so a chaos-test failure log reads as an injected death, not a crash.
KILL_EXIT_CODE = 87

FAULT_KINDS = ("kill", "raise", "stall")


class FaultInjected(RuntimeError):
    """The exception a ``raise``-kind fault throws inside a worker."""


@dataclass(frozen=True)
class Fault:
    """One planned fault: what to do, at which chunk, which attempt."""

    kind: str
    chunk: int
    attempt: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {FAULT_KINDS})")
        if self.chunk < 0 or self.attempt < 0:
            raise ValueError(
                f"fault chunk/attempt must be >= 0: {self}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0: {self}")


def encode_plan(faults: Iterable[Fault]) -> str:
    """Serialize faults to the :data:`ENV_FAULTS` wire format."""
    tokens = []
    for fault in faults:
        token = f"{fault.kind}@{fault.chunk}#{fault.attempt}"
        if fault.kind == "stall":
            token += f":{fault.seconds:g}"
        tokens.append(token)
    return ";".join(tokens)


def parse_plan(spec: str) -> tuple[Fault, ...]:
    """Parse a fault-plan spec; raises ``ValueError`` on bad tokens."""
    faults = []
    for token in spec.split(";"):
        token = token.strip()
        if not token:
            continue
        try:
            kind, _, rest = token.partition("@")
            chunk_part, _, tail = rest.partition("#")
            attempt_part, _, seconds_part = tail.partition(":")
            fault = Fault(
                kind=kind,
                chunk=int(chunk_part),
                attempt=int(attempt_part) if attempt_part else 0,
                seconds=float(seconds_part) if seconds_part else 0.0)
        except ValueError as exc:
            raise ValueError(
                f"bad fault token {token!r}: {exc}") from exc
        faults.append(fault)
    return tuple(faults)


def install_faults(plan: "Iterable[Fault] | str") -> None:
    """Activate a fault plan for this process and its future workers.

    Accepts either :class:`Fault` objects or a pre-encoded spec string;
    either way the plan is validated eagerly so a typo fails in the
    test, not silently in a worker.
    """
    spec = plan if isinstance(plan, str) else encode_plan(plan)
    parse_plan(spec)
    os.environ[ENV_FAULTS] = spec
    os.environ[ENV_FAULTS_PARENT] = str(os.getpid())


def clear_faults() -> None:
    """Deactivate any installed fault plan."""
    os.environ.pop(ENV_FAULTS, None)
    os.environ.pop(ENV_FAULTS_PARENT, None)


#: Parsed-plan cache keyed by the raw spec string (the spec is tiny,
#: but workers call :func:`active_faults` once per chunk).
_PARSED: "tuple[str, tuple[Fault, ...]] | None" = None


def active_faults() -> tuple[Fault, ...]:
    """The currently installed fault plan (empty when none)."""
    global _PARSED
    spec = os.environ.get(ENV_FAULTS)
    if not spec:
        return ()
    if _PARSED is None or _PARSED[0] != spec:
        _PARSED = (spec, parse_plan(spec))
    return _PARSED[1]


def fire_faults(chunk: int, attempt: int) -> None:
    """Trigger any fault planned for ``(chunk, attempt)``.

    Called by the chunk-runner envelopes before real work starts.
    No-ops when no plan is installed, and always no-ops in the process
    that installed the plan (see :data:`ENV_FAULTS_PARENT`), so the
    in-process fallback can never be killed by its own fault plan.
    """
    if ENV_FAULTS not in os.environ:
        return
    if os.environ.get(ENV_FAULTS_PARENT) == str(os.getpid()):
        return
    for fault in active_faults():
        if fault.chunk == chunk and fault.attempt == attempt:
            if fault.kind == "stall":
                time.sleep(fault.seconds)
            elif fault.kind == "raise":
                raise FaultInjected(
                    f"injected fault: chunk {chunk} "
                    f"attempt {attempt}")
            else:  # kill: die hard, exactly like an OOM kill would
                os._exit(KILL_EXIT_CODE)
