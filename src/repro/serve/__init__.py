"""``repro.serve`` — the async solver service behind ``repro serve``.

The serving layer turns the library into a daemon: a stdlib-only
asyncio HTTP server (:mod:`~repro.serve.app`) that multiplexes JSON
solve requests onto the engine stack through a bounded worker pool,
with request coalescing, a keyed LRU cache over certified-optimal
results (:mod:`~repro.serve.cache`), and a registry of resident
graphs whose edits re-answer incrementally via
:class:`~repro.dynamic.DynamicSolver`.

Layering: ``serve`` sits above everything — it imports ``core``,
``dynamic``, ``datasets``, ``kernels``, ``obs``, ``resilience``, and
``signed``, and nothing imports it back except the CLI.  The wire
contract lives in :mod:`~repro.serve.protocol`; the blocking core in
:mod:`~repro.serve.service` is fully testable without a socket.
"""

from .app import (
    DEFAULT_MAX_PENDING,
    DEFAULT_POOL_SIZE,
    BackgroundServer,
    ServeApp,
)
from .cache import DEFAULT_CACHE_CAPACITY, ResultCache
from .protocol import (
    PROBLEMS,
    SERVE_SCHEMA,
    ProtocolError,
    SolveRequest,
)
from .service import RegisteredGraph, SolverService, parse_dataset_ref

__all__ = [
    "BackgroundServer",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_POOL_SIZE",
    "PROBLEMS",
    "ProtocolError",
    "RegisteredGraph",
    "ResultCache",
    "SERVE_SCHEMA",
    "ServeApp",
    "SolveRequest",
    "SolverService",
    "parse_dataset_ref",
]
