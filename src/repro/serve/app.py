"""The asyncio HTTP daemon behind ``repro serve``.

Zero new dependencies: :func:`asyncio.start_server` carries the
sockets, a ~60-line HTTP/1.1 reader parses requests (JSON bodies,
``Content-Length`` framing, keep-alive), and CPU-bound solves run on
a **bounded worker pool** (`concurrent.futures.ThreadPoolExecutor`)
so the event loop keeps accepting connections while a solve grinds.
The pool size bounds concurrent solver work; an admission semaphore
bounds how much may queue behind it — excess requests wait their
turn (backpressure) rather than failing.

Request flow for ``POST /solve`` (all bookkeeping on the event-loop
thread; only the solver call crosses to the pool):

1. validate (:mod:`repro.serve.protocol` — client mistakes are 4xx);
2. resolve the graph spec (registry lookup / dataset memo; a cold
   dataset ref generates on the pool);
3. **cache** lookup on ``(fingerprint, problem, tau, engine)`` — a
   hit answers without queueing at all;
4. **coalesce**: an identical in-flight key (same cache key *and*
   same budget) awaits the solve already running instead of starting
   a second one;
5. miss: run on the pool under a fresh per-request
   :class:`~repro.resilience.Budget` (the request's SLO), store the
   payload iff certified optimal, answer ``200`` either way — a
   truncated solve reports ``status: budget_exhausted`` with the
   certified lower bound (the anytime contract over HTTP).

Requests against a **registered graph** run steps 3–5 while holding
an admission slot plus the graph's per-graph lock.  The lock is
load-bearing twice over: the resident
:class:`~repro.dynamic.DynamicSolver` is single-writer by contract,
and the cache key must name the exact graph version being solved —
computing the fingerprint *outside* the lock would let a concurrent
edit slip in between keying and solving, caching the post-edit
answer under the pre-edit fingerprint.  The admission slot is taken
*before* the lock so a solve queued behind unrelated load never
holds the graph hostage: edits bypass admission and wait only for
actual solving.

Every request runs under its own :class:`~repro.obs.Tracer` span
(solver spans nest inside via the ``trace=`` kwarg); the buffer is
absorbed into the service tracer afterwards, so ``GET /stats`` and
``--trace`` see one merged span forest, exactly like the parallel
worker merge.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Coroutine, TypeVar

from ..obs import get_tracer
from ..resilience.budget import Status
from ..signed.graph import SignedGraph
from .protocol import (
    SERVE_SCHEMA,
    ProtocolError,
    SolveRequest,
    graph_from_inline,
    parse_edits_request,
    parse_json_body,
    parse_register_request,
    parse_solve_request,
    validate_graph_name,
)
from .service import (
    RegisteredGraph,
    SolverService,
    parse_dataset_ref,
)

_T = TypeVar("_T")

__all__ = ["ServeApp", "BackgroundServer", "DEFAULT_POOL_SIZE",
           "DEFAULT_MAX_PENDING"]

#: Default solver pool width (threads running blocking solves).
DEFAULT_POOL_SIZE = 4

#: Default admission bound: solves queued or running at once before
#: new requests wait at the semaphore.
DEFAULT_MAX_PENDING = 64

#: Cap on accepted request bodies (16 MiB ≈ a million inline edges).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Cap on request header lines; each line is further capped at the
#: stream reader's 64 KiB limit, bounding total header bytes.
MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error"}


class _HttpError(Exception):
    """A transport-level request failure (pre-routing)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServeApp:
    """One serving daemon: routes HTTP onto a :class:`SolverService`.

    ``port=0`` binds an ephemeral port (tests and the bench harness);
    :attr:`port` reports the bound one after :meth:`start`.
    """

    def __init__(
        self,
        service: SolverService,
        host: str = "127.0.0.1",
        port: int = 8080,
        pool_size: int = DEFAULT_POOL_SIZE,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if pool_size < 1:
            raise ValueError(
                f"pool_size must be >= 1, got {pool_size}")
        if max_pending < pool_size:
            raise ValueError(
                f"max_pending ({max_pending}) must be >= pool_size "
                f"({pool_size})")
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: "asyncio.Server | None" = None
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size,
            thread_name_prefix="repro-serve")
        self._admission = asyncio.Semaphore(max_pending)
        self._inflight: "dict[tuple, asyncio.Future]" = {}
        self._graph_locks: "dict[str, asyncio.Lock]" = {}
        self._dataset_lock = asyncio.Lock()

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        sockets = self._server.sockets
        assert sockets
        port = sockets[0].getsockname()[1]
        assert isinstance(port, int)
        return port

    async def start(self) -> None:
        """Bind the listening socket."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port)

    async def serve_forever(self) -> None:
        """Accept connections until cancelled."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting and release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False)

    async def run(self) -> None:
        """``start`` + ``serve_forever`` (the CLI entry)."""
        await self.start()
        try:
            await self.serve_forever()
        finally:
            await self.close()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve HTTP/1.1 requests on one connection (keep-alive)."""
        try:
            while True:
                try:
                    parsed = await _read_request(reader)
                except _HttpError as exc:
                    writer.write(_encode_response(
                        exc.status, {"error": exc.message},
                        keep_alive=False))
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get(
                    "connection", "keep-alive").lower() != "close"
                status, payload = await self._dispatch(
                    method, path, body)
                writer.write(_encode_response(
                    status, payload, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> "tuple[int, dict]":
        """Route one request; every outcome becomes a JSON body."""
        self.service.count("serve.requests")
        try:
            status, payload = await self._route(method, path, body)
        except ProtocolError as exc:
            self.service.count("serve.rejected")
            return exc.status, {"error": exc.message,
                                "schema": SERVE_SCHEMA}
        except Exception as exc:  # noqa: BLE001 — the 500 boundary
            self.service.count("serve.errors")
            return 500, {"error": f"internal error: "
                                  f"{type(exc).__name__}: {exc}",
                         "schema": SERVE_SCHEMA}
        payload.setdefault("schema", SERVE_SCHEMA)
        return status, payload

    async def _route(self, method: str, path: str,
                     body: bytes) -> "tuple[int, dict]":
        if path == "/solve":
            _require_method(method, "POST")
            return 200, await self._handle_solve(
                parse_json_body(body))
        if path == "/graphs":
            if method == "GET":
                return 200, {"graphs": [
                    registered.describe() for registered in
                    self.service.graphs.values()]}
            _require_method(method, "POST")
            return 200, await self._handle_register(
                parse_json_body(body))
        if path.startswith("/graphs/") and path.endswith("/edits"):
            _require_method(method, "POST")
            name = path[len("/graphs/"):-len("/edits")]
            return 200, await self._handle_edits(
                name, parse_json_body(body))
        if path == "/stats":
            _require_method(method, "GET")
            return 200, self.service.stats()
        if path == "/healthz":
            _require_method(method, "GET")
            return 200, {"status": "ok",
                         "graphs": len(self.service.graphs),
                         "cache_size": len(self.service.cache)}
        if path == "/cache/clear":
            _require_method(method, "POST")
            return 200, {"cleared": self.service.cache.clear()}
        raise ProtocolError(404, f"no such endpoint: {path}")

    # -- /solve --------------------------------------------------------

    async def _handle_solve(self, payload: dict) -> dict:
        request = parse_solve_request(
            payload, self.service.default_engine)
        graph, registered = await self._resolve(request)
        if registered is None:
            # Anonymous graphs are immutable snapshots: their key is
            # stable, so no lock is needed and the cache/coalesce
            # lookups can happen before the admission wait.
            return await self._answer(request, graph, None)
        # Registered graphs are live.  Admission first, so a solve
        # queued behind unrelated load never blocks edits (which
        # bypass admission); then the graph lock; and only then the
        # fingerprint — the cache key must name the exact graph
        # version being solved, with no edit able to interleave
        # before the result is stored under it.
        async with self._admission:
            async with self._graph_lock(registered.name):
                return await self._answer(request, graph, registered)

    async def _answer(
        self, request: SolveRequest, graph: SignedGraph,
        registered: "RegisteredGraph | None",
    ) -> dict:
        """Cache lookup, coalescing, and the solve for one request.

        For a registered graph the caller holds its admission slot
        and the graph's lock throughout, so the key computed here is
        the key of the graph version actually solved and cached.
        """
        key = self.service.cache_key(graph.fingerprint(), request)
        cached = self.service.cache.get(key)
        if cached is not None:
            self.service.count("serve.cache_hits")
            return {**cached, "cache": "hit"}
        coalesce_key = key + request.budget_key()
        inflight = self._inflight.get(coalesce_key)
        if inflight is not None:
            # The leader never needs the lock this request may hold
            # (a same-graph registered solve would already hold it,
            # excluding us), so awaiting here cannot deadlock; its
            # graph is content-identical and cannot mutate while we
            # hold ours, so its answer is ours.
            self.service.count("serve.coalesced")
            shared = await asyncio.shield(inflight)
            return {**shared, "cache": "coalesced"}
        self.service.count("serve.cache_misses")
        future: "asyncio.Future[dict]" = \
            asyncio.get_running_loop().create_future()
        # A coalesced waiter cancelled mid-await must not surface the
        # leader's "exception was never retrieved" warning.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._inflight[coalesce_key] = future
        try:
            result = await self._run_solve(request, graph, registered)
            future.set_result(result)
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            del self._inflight[coalesce_key]
        if result["status"] == Status.OPTIMAL.value:
            self.service.cache.put(key, result)
        else:
            self.service.count("serve.truncated")
        return {**result, "cache": "miss"}

    async def _resolve(
        self, request: SolveRequest,
    ) -> "tuple[SignedGraph, RegisteredGraph | None]":
        """Resolve the graph spec, generating datasets on the pool."""
        if isinstance(request.graph, str) \
                and request.graph.startswith("dataset:") \
                and not self.service.dataset_cached(request.graph):
            name, scale = parse_dataset_ref(request.graph)
            async with self._dataset_lock:
                await self._run_blocking(
                    self.service.load_dataset, name, scale)
        return self.service.resolve_graph(request.graph)

    async def _run_solve(
        self, request: SolveRequest, graph: SignedGraph,
        registered: "RegisteredGraph | None",
    ) -> dict:
        """Execute one solve on the pool under its request span.

        Anonymous solves admit here; registered solves arrive from
        :meth:`_handle_solve` already holding an admission slot (and
        their graph lock).
        """
        budget = self.service.build_budget(request)
        tracer = get_tracer(True)
        admission = (self._admission if registered is None
                     else contextlib.nullcontext())
        async with admission:
            with tracer.span(
                    "serve.request", problem=request.problem,
                    tau=request.tau,
                    engine=request.engine) as span:
                payload = await self._run_blocking(
                    self.service.execute, request, graph,
                    registered, budget, tracer)
                span.set(status=payload["status"])
        self.service.tracer.absorb(tracer.export_buffer())
        return payload

    def _graph_lock(self, name: str) -> "asyncio.Lock":
        """The per-registered-graph writer lock."""
        return self._graph_locks.setdefault(name, asyncio.Lock())

    # -- /graphs -------------------------------------------------------

    async def _handle_register(self, payload: dict) -> dict:
        name, spec, tau, engine = parse_register_request(
            payload, self.service.default_engine)
        if name in self.service.graphs:
            raise ProtocolError(
                409, f"graph {name!r} is already registered; POST "
                     f"edits to it or pick another name")
        if isinstance(spec, str):
            ds_name, scale = parse_dataset_ref(spec)
            async with self._dataset_lock:
                shared = await self._run_blocking(
                    self.service.load_dataset, ds_name, scale)
            # Residents own their graph's mutation stream; a shared
            # dataset memo entry must not mutate under other requests.
            graph = shared.copy()
        else:
            graph = graph_from_inline(spec)
        async with self._admission:
            registered = await self._run_blocking(
                self.service.prime_registration, name, graph, tau,
                engine)
        return self.service.commit_registration(registered)

    async def _handle_edits(self, name: str, payload: dict) -> dict:
        validate_graph_name(name)
        script_text = parse_edits_request(payload)
        registered = self.service.lookup_graph(name)
        async with self._graph_lock(name):
            return await self._run_blocking(
                self.service.apply_script, registered, script_text)

    # -- pool plumbing -------------------------------------------------

    async def _run_blocking(self, fn: "Callable[..., _T]",
                            *args: object) -> "_T":
        """Run ``fn(*args)`` on the worker pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, fn, *args)


# -- HTTP framing ------------------------------------------------------


async def _read_request(
    reader: asyncio.StreamReader,
) -> "tuple[str, str, dict[str, str], bytes] | None":
    """Parse one HTTP/1.1 request; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    except (ValueError, asyncio.LimitOverrunError):
        # StreamReader.readline signals a line beyond its 64 KiB
        # limit with ValueError; answer 400 instead of letting the
        # connection task die with an unhandled exception.
        raise _HttpError(400, "request line too long") from None
    if not line:
        return None
    try:
        method, target, _version = line.decode(
            "latin-1").strip().split(" ", 2)
    except ValueError:
        raise _HttpError(
            400, f"malformed request line: {line!r}") from None
    headers: "dict[str, str]" = {}
    for _ in range(MAX_HEADER_LINES):
        try:
            header = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _HttpError(
                431, "request header line too long") from None
        if header in (b"\r\n", b"\n", b""):
            break
        name, sep, value = header.decode("latin-1").partition(":")
        if not sep:
            raise _HttpError(
                400, f"malformed header line: {header!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(
            431, f"more than {MAX_HEADER_LINES} request headers")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _HttpError(
            400, f"invalid Content-Length: {length_text!r}") from None
    if length > MAX_BODY_BYTES:
        raise _HttpError(
            413, f"request body of {length} bytes exceeds the "
                 f"{MAX_BODY_BYTES}-byte limit")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


def _encode_response(status: int, payload: dict,
                     keep_alive: bool) -> bytes:
    """Serialise a JSON response with explicit framing."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n")
    return head.encode("latin-1") + body


def _require_method(method: str, expected: str) -> None:
    if method != expected:
        raise ProtocolError(
            405, f"method {method} not allowed here (use {expected})")


# -- embedding ---------------------------------------------------------


class BackgroundServer:
    """A serve daemon on a background thread, for tests and the bench.

    Runs the app's event loop on a daemon thread, exposes the bound
    URL, and tears the loop down on :meth:`stop` / context exit::

        with BackgroundServer(SolverService()) as server:
            urllib.request.urlopen(server.url + "/healthz")
    """

    def __init__(self, service: SolverService,
                 host: str = "127.0.0.1", port: int = 0,
                 pool_size: int = DEFAULT_POOL_SIZE) -> None:
        self.app = ServeApp(service, host=host, port=port,
                            pool_size=pool_size)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop",
            daemon=True)
        self._ready = threading.Event()
        self._startup_error: "BaseException | None" = None

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.app.start())
        except BaseException as exc:  # noqa: BLE001 — report to starter
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.app.close())
            self._loop.close()

    def start(self) -> "BackgroundServer":
        """Bind and begin serving; returns once the port is live."""
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve daemon failed to start: "
                f"{self._startup_error}") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("serve daemon did not start in time")
        return self

    @property
    def url(self) -> str:
        """Base URL of the running daemon."""
        return f"http://{self.app.host}:{self.app.port}"

    def submit(
        self, coro: "Coroutine[object, object, object]",
    ) -> "object":
        """Run a coroutine on the server loop (test plumbing)."""
        return self.submit_nowait(coro).result(timeout=60)

    def submit_nowait(
        self, coro: "Coroutine[object, object, object]",
    ) -> "concurrent.futures.Future[object]":
        """Schedule a coroutine on the server loop without waiting
        (test plumbing for interleaving scenarios)."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def stop(self) -> None:
        """Shut the daemon down and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
