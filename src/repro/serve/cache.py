"""The keyed result cache: LRU over certified-optimal answers only.

Keys are ``(fingerprint, problem, tau, engine)`` — exactly the tuple
that determines a solve's answer.  The fingerprint is
:meth:`repro.signed.graph.SignedGraph.fingerprint`, a content hash,
so two requests naming the same graph differently (a dataset ref, the
same graph inline, a registered copy) share one entry, and any edit
to a registered graph moves it to a fresh key — stale entries age out
by LRU instead of needing an invalidation protocol.

Only ``OPTIMAL`` results are ever stored (:meth:`ResultCache.put`
enforces it): a budget-truncated answer is *that request's* best
effort under *its* SLO, and replaying it to a later request with a
larger budget would launder a lower bound into an exact answer.
Truncated responses are returned with ``status: budget_exhausted``
and recomputed every time.

The cache is sized in entries, not bytes: a cached payload is a few
hundred bytes of JSON-able plain data, so even the default capacity
is megabytes at worst, and an entry count is predictable for tests.
"""

from __future__ import annotations

from collections import OrderedDict

from ..resilience.budget import Status

__all__ = ["CacheKey", "ResultCache", "DEFAULT_CACHE_CAPACITY"]

#: ``(graph fingerprint, problem, tau, engine)``.
CacheKey = "tuple[str, str, int, str]"

#: Default entry capacity of the serve cache (``--cache-size``).
DEFAULT_CACHE_CAPACITY = 1024


class ResultCache:
    """An LRU map from solve keys to response payloads.

    Single-threaded by design: the serving app only touches it from
    the event-loop thread, so no lock is needed and hit/miss counts
    observed by tests are exact.
    """

    def __init__(self,
                 capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(
                f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[tuple, dict]" = OrderedDict()

    @property
    def capacity(self) -> int:
        """Maximum entry count before LRU eviction."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> "dict | None":
        """The cached payload for ``key`` (refreshes its recency)."""
        payload = self._entries.get(key)
        if payload is not None:
            self._entries.move_to_end(key)
        return payload

    def put(self, key: tuple, payload: dict) -> None:
        """Store a payload; rejects non-optimal results.

        The ``status`` field is re-checked here rather than trusted to
        the caller: every path that could cache a truncated answer is
        a correctness bug, so the cache is the single enforcement
        point.
        """
        if payload.get("status") != Status.OPTIMAL.value:
            raise ValueError(
                f"only OPTIMAL results may be cached, got status "
                f"{payload.get('status')!r}")
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped
