"""Wire protocol of the solve service: request schema + validation.

Everything a client can say to ``repro serve`` is validated here,
*before* any solver runs, and every way a request can be malformed
maps to a :class:`ProtocolError` carrying the HTTP status the daemon
should answer with.  The contract (see ``docs/SERVING.md``):

* client mistakes — unparseable JSON, unknown problem, bad tau, a
  malformed inline edge list — are **4xx**, with the same message the
  library layer raises (e.g. :func:`repro.signed.io.parse_edge_lines`
  line numbers survive verbatim into the response body);
* only genuinely unexpected failures are 500s, and the server counts
  them separately (``serve.errors``).

A solve request body is a JSON object::

    {
      "graph":     "dataset:douban"          (stand-in registry)
                 | "dataset:douban@0.3"      (scaled stand-in)
                 | "graph:mygraph"           (registered via /graphs)
                 | {"edges": ...}            (inline edge list),
      "problem":   "mbc" | "pf" | "gmbc",
      "tau":       3,            (mbc only; default 3)
      "engine":    "bitset",     (default: the server's engine)
      "timeout":   1.5,          (optional per-request SLO, seconds)
      "max_nodes": 100000        (optional per-request node budget)
    }

Inline ``edges`` accept the three spellings clients naturally have in
hand: one ``"u v sign"`` text blob, a list of such lines, or a list of
``[u, v, sign]`` triples.  All three are normalised to edge-list lines
and parsed by the one shared :func:`~repro.signed.io.parse_edge_lines`
code path, so the error messages (line numbers, self-loop and
duplicate-edge diagnostics) are identical to the CLI's.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass

from ..kernels import available_engines
from ..signed.graph import SignedGraph
from ..signed.io import read_edge_list

__all__ = [
    "SERVE_SCHEMA",
    "PROBLEMS",
    "ProtocolError",
    "SolveRequest",
    "parse_json_body",
    "parse_solve_request",
    "parse_register_request",
    "parse_edits_request",
    "graph_from_inline",
    "validate_graph_name",
]

#: Schema tag stamped into every response body.
SERVE_SCHEMA = "repro.serve/1"

#: The problems the service answers, in CLI-subcommand spelling.
PROBLEMS = ("mbc", "pf", "gmbc")

#: Characters allowed in a registered-graph name (path-segment safe).
_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-")


class ProtocolError(Exception):
    """A request the protocol rejects; ``status`` is the HTTP answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class SolveRequest:
    """A validated solve request (graph still unresolved).

    ``graph`` is the raw spec — a ref string or an inline-edges
    object — because resolution (dataset generation, registry lookup)
    is the service's job and may need the event loop's locks.
    """

    graph: "str | dict"
    problem: str
    tau: int
    engine: str
    timeout: "float | None"
    max_nodes: "int | None"

    def budget_key(self) -> "tuple[float | None, int | None]":
        """The budget part of the request-coalescing key."""
        return (self.timeout, self.max_nodes)


def parse_json_body(body: bytes) -> dict:
    """Decode a request body into a JSON object, or 400."""
    if not body:
        raise ProtocolError(400, "request body must be a JSON object")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(400, f"invalid JSON body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            400, f"request body must be a JSON object, "
                 f"got {type(payload).__name__}")
    return payload


def _require_graph_spec(payload: dict) -> "str | dict":
    spec = payload.get("graph")
    if isinstance(spec, str):
        if spec.startswith(("dataset:", "graph:")):
            return spec
        raise ProtocolError(
            400, f"graph ref {spec!r} must start with 'dataset:' or "
                 f"'graph:'")
    if isinstance(spec, dict):
        if "edges" not in spec:
            raise ProtocolError(
                400, "inline graph object must carry an 'edges' field")
        unknown = set(spec) - {"edges"}
        if unknown:
            raise ProtocolError(
                400, f"unknown inline graph fields: {sorted(unknown)}")
        return spec
    raise ProtocolError(
        400, "missing or invalid 'graph': expected a 'dataset:NAME' / "
             "'graph:NAME' ref or an inline {'edges': ...} object")


def _parse_tau(payload: dict) -> int:
    tau = payload.get("tau", 3)
    if not isinstance(tau, int) or isinstance(tau, bool) or tau < 0:
        raise ProtocolError(
            400, f"tau must be a non-negative integer, got {tau!r}")
    return tau


def _parse_engine(payload: dict, default_engine: str) -> str:
    engine = payload.get("engine", default_engine)
    if engine not in available_engines():
        raise ProtocolError(
            400, f"unknown or unavailable engine {engine!r}; "
                 f"available: {list(available_engines())}")
    assert isinstance(engine, str)
    return engine


def _parse_budget_fields(
    payload: dict,
) -> "tuple[float | None, int | None]":
    timeout = payload.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or \
                not isinstance(timeout, (int, float)) or timeout < 0:
            raise ProtocolError(
                400, f"timeout must be a non-negative number of "
                     f"seconds, got {timeout!r}")
        timeout = float(timeout)
    max_nodes = payload.get("max_nodes")
    if max_nodes is not None and (
            not isinstance(max_nodes, int)
            or isinstance(max_nodes, bool) or max_nodes < 0):
        raise ProtocolError(
            400, f"max_nodes must be a non-negative integer, "
                 f"got {max_nodes!r}")
    return timeout, max_nodes


def parse_solve_request(payload: dict,
                        default_engine: str) -> SolveRequest:
    """Validate a ``POST /solve`` body into a :class:`SolveRequest`."""
    known = {"graph", "problem", "tau", "engine", "timeout",
             "max_nodes"}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(
            400, f"unknown request fields: {sorted(unknown)}")
    problem = payload.get("problem")
    if problem not in PROBLEMS:
        raise ProtocolError(
            400, f"problem must be one of {list(PROBLEMS)}, "
                 f"got {problem!r}")
    assert isinstance(problem, str)
    timeout, max_nodes = _parse_budget_fields(payload)
    return SolveRequest(
        graph=_require_graph_spec(payload),
        problem=problem,
        tau=_parse_tau(payload),
        engine=_parse_engine(payload, default_engine),
        timeout=timeout,
        max_nodes=max_nodes)


def validate_graph_name(name: object) -> str:
    """A registered-graph name: non-empty, path-segment safe."""
    if not isinstance(name, str) or not name or \
            not set(name) <= _NAME_CHARS:
        raise ProtocolError(
            400, f"graph name must be a non-empty string of "
                 f"[A-Za-z0-9_.-], got {name!r}")
    return name


def parse_register_request(
    payload: dict, default_engine: str,
) -> "tuple[str, str | dict, int, str]":
    """Validate a ``POST /graphs`` body.

    Returns ``(name, graph_spec, tau, engine)``; the spec must be a
    dataset ref or inline edges — registering a registered graph
    under a second name is a client mistake, not a feature.
    """
    known = {"name", "graph", "tau", "engine"}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(
            400, f"unknown register fields: {sorted(unknown)}")
    name = validate_graph_name(payload.get("name"))
    spec = _require_graph_spec(payload)
    if isinstance(spec, str) and spec.startswith("graph:"):
        raise ProtocolError(
            400, "cannot register a graph from a 'graph:' ref; "
                 "use a dataset ref or inline edges")
    tau = _parse_tau(payload)
    if tau < 1:
        raise ProtocolError(
            400, f"registered graphs need tau >= 1 (the resident "
                 f"dynamic solver's contract), got {tau}")
    return name, spec, tau, _parse_engine(payload, default_engine)


def parse_edits_request(payload: dict) -> str:
    """Validate a ``POST /graphs/NAME/edits`` body into script text."""
    known = {"script", "edits"}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(
            400, f"unknown edit fields: {sorted(unknown)}")
    script = payload.get("script")
    edits = payload.get("edits")
    if (script is None) == (edits is None):
        raise ProtocolError(
            400, "exactly one of 'script' (text) or 'edits' (array "
                 "of lines) is required")
    if script is not None:
        if not isinstance(script, str):
            raise ProtocolError(
                400, f"script must be a string, got "
                     f"{type(script).__name__}")
        return script
    if not isinstance(edits, list) or any(
            not isinstance(line, str) for line in edits):
        raise ProtocolError(
            400, "edits must be an array of edit-script lines")
    return "\n".join(edits)


def _inline_lines(edges: object) -> "list[str]":
    """Normalise the three inline-edge spellings to edge-list lines."""
    if isinstance(edges, str):
        return edges.splitlines()
    if not isinstance(edges, list):
        raise ProtocolError(
            400, f"edges must be a text blob, an array of lines, or "
                 f"an array of [u, v, sign] triples, "
                 f"got {type(edges).__name__}")
    lines: list[str] = []
    for index, item in enumerate(edges, start=1):
        if isinstance(item, str):
            lines.append(item)
        elif isinstance(item, list) and len(item) == 3:
            lines.append(" ".join(str(part) for part in item))
        else:
            raise ProtocolError(
                400, f"edges[{index - 1}] must be a 'u v sign' line "
                     f"or a [u, v, sign] triple, got {item!r}")
    return lines


def graph_from_inline(spec: dict) -> SignedGraph:
    """Build a :class:`SignedGraph` from an inline ``edges`` payload.

    Parse failures surface as 400s carrying the library's own
    message — ``parse_edge_lines`` line numbers, the self-loop
    diagnostic, ``read_edge_list``'s conflicting-duplicate-edge error
    — never as 500s (the regression the serve suite pins).
    """
    lines = _inline_lines(spec["edges"])
    try:
        return read_edge_list(io.StringIO("\n".join(lines)))
    except ValueError as exc:
        raise ProtocolError(400, f"invalid edge list: {exc}") from exc
