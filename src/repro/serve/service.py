"""The solver service: graph resolution, solving, and registration.

:class:`SolverService` is the synchronous core the asyncio app
(:mod:`repro.serve.app`) dispatches onto its worker pool.  It owns

* the **result cache** (:class:`~repro.serve.cache.ResultCache`,
  keyed by graph fingerprint — see that module for the
  only-certified-optimal rule),
* the **graph registry**: named graphs registered via ``POST
  /graphs``, each resident as a :class:`~repro.dynamic.DynamicSolver`
  so edits invalidate per-ego bounds incrementally instead of
  evicting whole answers,
* a memo of **resolved dataset refs**, so ``dataset:douban`` costs
  one generation, after which its fingerprint (the cache key) is
  O(1) per request,
* the service-lifetime **metrics tracer** (``serve.*`` counters and
  the merged per-request span trees behind ``GET /stats``).

Splitting the blocking core from the event loop keeps every solver
call testable without a socket, and pins the threading contract in
one place: methods marked *loop-thread-only* below touch the cache /
registry / tracer and must be called from the event-loop thread (or
a single-threaded test); ``execute`` and ``prime_registration`` are
pure compute over arguments and are what the app runs on pool
threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.gmbc import gmbc_star
from ..core.mbc_star import mbc_star
from ..core.pf import pf_star
from ..core.result import SolveResult
from ..datasets.registry import dataset_names, load
from ..dynamic import DynamicSolver, apply_edit, parse_edit_script
from ..kernels import DEFAULT_ENGINE, engine_spec
from ..obs import Tracer, get_tracer
from ..resilience.budget import Budget, Status
from ..signed.graph import SignedGraph
from .cache import DEFAULT_CACHE_CAPACITY, ResultCache
from .protocol import ProtocolError, SolveRequest, graph_from_inline

__all__ = ["SolverService", "RegisteredGraph", "parse_dataset_ref"]


def parse_dataset_ref(ref: str) -> "tuple[str, float]":
    """Split ``dataset:NAME[@SCALE]`` into ``(name, scale)``.

    The optional ``@SCALE`` suffix mirrors ``REPRO_BENCH_SCALE`` so a
    load generator (or a CI smoke) can serve shrunken stand-ins
    without a separate registry.
    """
    spec = ref.split(":", 1)[1]
    name, _, scale_text = spec.partition("@")
    scale = 1.0
    if scale_text:
        try:
            scale = float(scale_text)
        except ValueError:
            raise ProtocolError(
                400, f"invalid dataset scale {scale_text!r} in "
                     f"{ref!r}") from None
        if not scale > 0:
            raise ProtocolError(
                400, f"dataset scale must be > 0, got {scale}")
    if name.lower() not in dataset_names():
        raise ProtocolError(
            400, f"unknown dataset {name!r}; "
                 f"available: {dataset_names()}")
    return name.lower(), scale


@dataclass
class RegisteredGraph:
    """One resident graph: a live :class:`DynamicSolver` + its key.

    ``tau`` / ``engine`` are the residency parameters: ``mbc``
    requests matching both are answered straight from the solver's
    incremental cache; anything else (another tau, ``gmbc``) solves
    against the live graph it wraps.
    """

    name: str
    solver: DynamicSolver
    tau: int
    engine: str

    @property
    def graph(self) -> SignedGraph:
        """The live wrapped graph."""
        return self.solver.graph

    def describe(self) -> dict:
        """The registry row ``GET /graphs`` reports."""
        graph = self.graph
        return {
            "name": self.name,
            "fingerprint": graph.fingerprint(),
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "tau": self.tau,
            "engine": self.engine,
            "edits": self.solver.edits,
        }


class SolverService:
    """Blocking solve/registration core behind the serve endpoints."""

    def __init__(
        self,
        default_engine: str = DEFAULT_ENGINE,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        workers: int = 0,
    ) -> None:
        engine_spec(default_engine)  # raises on unknown
        self.default_engine = default_engine
        self.workers = workers
        self.cache = ResultCache(cache_capacity)
        self.graphs: "dict[str, RegisteredGraph]" = {}
        #: Service-lifetime tracer: ``serve.*`` counters plus the
        #: per-request span trees the app absorbs after each request.
        self.tracer: Tracer = get_tracer(True)
        self._datasets: "dict[tuple[str, float], SignedGraph]" = {}

    # -- counters (loop-thread-only) -----------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Bump a ``serve.*`` counter on the service tracer."""
        self.tracer.counter(name).inc(n)

    def counters_snapshot(self) -> "dict[str, int]":
        """Plain-data counter state (the ``GET /stats`` body)."""
        return self.tracer.counters_snapshot()

    # -- graph resolution ----------------------------------------------

    def resolve_graph(
        self, spec: "str | dict",
    ) -> "tuple[SignedGraph, RegisteredGraph | None]":
        """Materialise a request's graph spec.

        Loop-thread-only for the registry/memo lookups; the *first*
        resolution of a dataset ref generates the stand-in (blocking,
        potentially slow) — the app routes that case through the pool
        via :meth:`load_dataset`.
        """
        if isinstance(spec, dict):
            return graph_from_inline(spec), None
        if spec.startswith("graph:"):
            name = spec.split(":", 1)[1]
            registered = self.graphs.get(name)
            if registered is None:
                raise ProtocolError(
                    404, f"no registered graph named {name!r}; "
                         f"register it via POST /graphs first")
            return registered.graph, registered
        name, scale = parse_dataset_ref(spec)
        graph = self._datasets.get((name, scale))
        if graph is None:
            graph = self.load_dataset(name, scale)
        return graph, None

    def dataset_cached(self, spec: str) -> bool:
        """Whether a dataset ref is already materialised (memo hit)."""
        return parse_dataset_ref(spec) in self._datasets

    def load_dataset(self, name: str, scale: float) -> SignedGraph:
        """Generate (or re-use) a stand-in; memoised per (name, scale).

        Generation is deterministic, so a duplicate generation from a
        racing first request is wasteful but harmless — last write
        wins with an identical graph.
        """
        key = (name, scale)
        graph = self._datasets.get(key)
        if graph is None:
            graph = load(name, scale=scale)
            graph.fingerprint()  # prime: later requests need O(1) keys
            self._datasets[key] = graph
        return graph

    # -- solving -------------------------------------------------------

    @staticmethod
    def cache_key(fingerprint: str,
                  request: SolveRequest) -> "tuple[str, str, int, str]":
        """The result-cache key; tau is keyed for ``mbc`` only (pf and
        gmbc ignore it, so requests differing only in tau share the
        answer)."""
        tau = request.tau if request.problem == "mbc" else 0
        return (fingerprint, request.problem, tau, request.engine)

    @staticmethod
    def build_budget(request: SolveRequest) -> "Budget | None":
        """A fresh per-request budget, or ``None`` when unbounded."""
        if request.timeout is None and request.max_nodes is None:
            return None
        return Budget(deadline=request.timeout,
                      max_nodes=request.max_nodes)

    def execute(
        self,
        request: SolveRequest,
        graph: SignedGraph,
        registered: "RegisteredGraph | None",
        budget: "Budget | None",
        trace: "Tracer | None" = None,
    ) -> dict:
        """Run one solve and build its response payload (pool-safe).

        Touches only its arguments — never the cache or registry — so
        the app can run it on any worker thread.  The payload's
        ``status`` mirrors the budget outcome; the app caches it only
        when optimal.
        """
        problem = request.problem
        use_resident = (
            registered is not None
            and request.engine == registered.engine
            and (problem == "pf"
                 or (problem == "mbc" and request.tau == registered.tau)))
        if use_resident:
            assert registered is not None
            payload = self._execute_resident(
                request, registered, budget)
        elif problem == "mbc":
            clique = mbc_star(
                graph, request.tau, engine=request.engine,
                parallel=self.workers, trace=trace, budget=budget)
            payload = {
                "result": SolveResult.capture(clique, budget).to_json(),
            }
        elif problem == "pf":
            outcome = pf_star(
                graph, engine=request.engine, parallel=self.workers,
                return_witness=True, trace=trace, budget=budget)
            assert isinstance(outcome, tuple)
            beta, witness = outcome
            payload = {
                "beta": beta,
                "result": SolveResult.capture(
                    witness, budget, lower_bound=beta).to_json(),
            }
        else:
            results = gmbc_star(
                graph, engine=request.engine, parallel=self.workers,
                trace=trace, budget=budget)
            status_value = (budget.status if budget is not None
                            else Status.OPTIMAL).value
            payload = {
                "result": {
                    "status": status_value,
                    "beta": len(results) - 1 if results else 0,
                    "cliques": [clique.to_json()
                                for clique in results],
                },
            }
        status = payload["result"]["status"]
        payload.update(
            problem=problem, tau=request.tau, engine=request.engine,
            fingerprint=graph.fingerprint(), status=status,
            resident=use_resident)
        return payload

    def _execute_resident(
        self,
        request: SolveRequest,
        registered: RegisteredGraph,
        budget: "Budget | None",
    ) -> dict:
        """Answer through the resident dynamic solver's bound cache."""
        if request.problem == "pf":
            outcome = registered.solver.beta(
                budget, return_witness=True)
            assert isinstance(outcome, tuple)
            beta, witness = outcome
            return {
                "beta": beta,
                "result": SolveResult.capture(
                    witness, budget, lower_bound=beta).to_json(),
            }
        result = registered.solver.solve(budget)
        return {"result": result.to_json()}

    # -- registration --------------------------------------------------

    def prime_registration(
        self, name: str, graph: SignedGraph, tau: int, engine: str,
    ) -> RegisteredGraph:
        """Build the resident solver for a graph (pool-safe: the cold
        priming sweep is the expensive part of registration)."""
        solver = DynamicSolver(graph, tau, engine=engine,
                               parallel=self.workers)
        return RegisteredGraph(
            name=name, solver=solver, tau=tau, engine=engine)

    def commit_registration(
        self, registered: RegisteredGraph,
    ) -> dict:
        """Publish a primed registration (loop-thread-only).

        Re-checks the name: two racing registrations both prime, but
        only the first publishes — the loser gets the 409 it would
        have gotten serially.
        """
        if registered.name in self.graphs:
            raise ProtocolError(
                409, f"graph {registered.name!r} is already "
                     f"registered; POST edits to it or pick another "
                     f"name")
        self.graphs[registered.name] = registered
        self.count("serve.graphs_registered")
        return registered.describe()

    def lookup_graph(self, name: str) -> RegisteredGraph:
        """The registered graph for an edits endpoint, or 404."""
        registered = self.graphs.get(name)
        if registered is None:
            raise ProtocolError(
                404, f"no registered graph named {name!r}")
        return registered

    def apply_script(self, registered: RegisteredGraph,
                     script_text: str) -> dict:
        """Parse and apply an edit script to a resident graph.

        Edits stream through the solver's guarded mutation API, so
        each one invalidates exactly the dirty ego instances.  A
        malformed script is rejected whole (parse-before-apply); an
        edit that is *semantically* impossible (removing an absent
        edge) fails mid-script — the response says how many were
        applied, and the applied prefix remains in effect, exactly
        like a partial CLI replay.
        """
        try:
            edits = parse_edit_script(script_text)
        except ValueError as exc:
            raise ProtocolError(
                400, f"invalid edit script: {exc}") from exc
        applied = 0
        no_ops = 0
        for index, edit in enumerate(edits):
            try:
                changed = apply_edit(registered.solver, edit)
            except (KeyError, ValueError) as exc:
                message = exc.args[0] if exc.args else str(exc)
                raise ProtocolError(
                    400, f"edit {index + 1} ({edit.as_line()}) "
                         f"failed after {applied} applied: "
                         f"{message}") from exc
            applied += 1
            if not changed:
                no_ops += 1
        self.count("serve.edits_applied", applied)
        return {
            "name": registered.name,
            "applied": applied,
            "no_ops": no_ops,
            "dirty_egos": registered.solver.dirty_count,
            "fingerprint": registered.graph.fingerprint(),
        }

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        """The ``GET /stats`` body (loop-thread-only)."""
        return {
            "counters": self.counters_snapshot(),
            "cache": {
                "size": len(self.cache),
                "capacity": self.cache.capacity,
            },
            "graphs": [registered.describe()
                       for registered in self.graphs.values()],
            "default_engine": self.default_engine,
        }
