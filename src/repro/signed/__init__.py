"""Signed-graph substrate: data structure, I/O, generators, conversions."""

from .graph import NEGATIVE, POSITIVE, SignedGraph
from .io import load_signed_graph, read_edge_list, save_signed_graph, \
    write_edge_list
from .generators import chung_lu_signed_graph, plant_balanced_clique, \
    random_signed_graph, srn_community_graph
from .ratings import RatingTable, random_rating_table, \
    ratings_to_signed_graph
from .triangles import TriangleCensus, balance_degree, \
    edge_triangle_profile, triangle_census
from .balance import connected_components, frustration_count, \
    frustration_partition_local_search, harary_partition, \
    is_structurally_balanced

__all__ = [
    "SignedGraph",
    "POSITIVE",
    "NEGATIVE",
    "load_signed_graph",
    "save_signed_graph",
    "read_edge_list",
    "write_edge_list",
    "random_signed_graph",
    "chung_lu_signed_graph",
    "srn_community_graph",
    "plant_balanced_clique",
    "RatingTable",
    "random_rating_table",
    "ratings_to_signed_graph",
    "is_structurally_balanced",
    "harary_partition",
    "connected_components",
    "frustration_count",
    "frustration_partition_local_search",
    "TriangleCensus",
    "triangle_census",
    "balance_degree",
    "edge_triangle_profile",
]
