"""Global structural balance (Harary's theorem) and frustration.

The balanced-clique machinery of :mod:`repro.core` works on vertex
*subsets*; this module covers the graph-level theory the paper builds
on (Harary [6]):

* a signed graph is **structurally balanced** iff its vertex set splits
  into two camps with positive edges inside camps and negative edges
  across — equivalently, iff every cycle has an even number of
  negative edges;
* :func:`harary_partition` decides balance per connected component via
  signed BFS two-colouring and returns the camps;
* :func:`frustration_count` counts the edges violating a given
  partition (the objective of the *frustration index*), and
  :func:`frustration_partition_local_search` is a deterministic local
  search that heuristically minimizes it — useful for near-balanced
  graphs where exact balance fails.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .graph import SignedGraph

__all__ = [
    "is_structurally_balanced",
    "harary_partition",
    "connected_components",
    "frustration_count",
    "frustration_partition_local_search",
]


def connected_components(graph: SignedGraph) -> list[set[int]]:
    """Connected components of the underlying unsigned graph."""
    seen: set[int] = set()
    components: list[set[int]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            for u in graph.pos_neighbors(v) | graph.neg_neighbors(v):
                if u not in seen:
                    seen.add(u)
                    component.add(u)
                    queue.append(u)
        components.append(component)
    return components


def harary_partition(
    graph: SignedGraph,
) -> tuple[set[int], set[int]] | None:
    """Two camps witnessing balance, or ``None`` if unbalanced.

    Signed BFS: a positive edge forces the same camp, a negative edge
    the opposite camp.  The graph is balanced iff no contradiction
    arises (Harary's theorem).  Isolated vertices and whole balanced
    components land in the camp of their BFS root, so the returned
    partition is one valid witness among possibly many.
    """
    camp: dict[int, int] = {}
    for start in graph.vertices():
        if start in camp:
            continue
        camp[start] = 0
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.pos_neighbors(v):
                if u not in camp:
                    camp[u] = camp[v]
                    queue.append(u)
                elif camp[u] != camp[v]:
                    return None
            for u in graph.neg_neighbors(v):
                if u not in camp:
                    camp[u] = 1 - camp[v]
                    queue.append(u)
                elif camp[u] == camp[v]:
                    return None
    left = {v for v, side in camp.items() if side == 0}
    right = set(graph.vertices()) - left
    return left, right


def is_structurally_balanced(graph: SignedGraph) -> bool:
    """Whether the whole graph is structurally balanced [6]."""
    return harary_partition(graph) is not None


def frustration_count(
    graph: SignedGraph,
    left: Iterable[int],
    right: Iterable[int] | None = None,
) -> int:
    """Edges violating the partition ``(left, right)``.

    A positive cross-camp edge or a negative within-camp edge is
    *frustrated*.  ``right`` defaults to the complement of ``left``.
    The minimum over all partitions is the graph's frustration index.
    """
    left_set = set(left)
    if right is None:
        right_set = set(graph.vertices()) - left_set
    else:
        right_set = set(right)
        if left_set & right_set:
            raise ValueError(
                f"camps overlap: {sorted(left_set & right_set)}")
    frustrated = 0
    for u, v, sign in graph.edges():
        same = (u in left_set) == (v in left_set)
        if same and sign == -1:
            frustrated += 1
        elif not same and sign == 1:
            frustrated += 1
    return frustrated


def frustration_partition_local_search(
    graph: SignedGraph,
    max_rounds: int = 20,
) -> tuple[set[int], set[int], int]:
    """Greedy local search for a low-frustration partition.

    Starts from the signed-BFS colouring (exact when the graph is
    balanced) and repeatedly flips any vertex whose camp change reduces
    the number of frustrated incident edges, until a fixpoint or
    ``max_rounds`` sweeps.  Returns ``(left, right, frustration)``.

    Deterministic; a heuristic only — computing the frustration index
    exactly is NP-hard.
    """
    camp: dict[int, int] = {}
    # Seed with BFS colouring that ignores contradictions (majority-ish
    # start that is exact on balanced graphs).
    for start in graph.vertices():
        if start in camp:
            continue
        camp[start] = 0
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.pos_neighbors(v):
                if u not in camp:
                    camp[u] = camp[v]
                    queue.append(u)
            for u in graph.neg_neighbors(v):
                if u not in camp:
                    camp[u] = 1 - camp[v]
                    queue.append(u)

    def gain(v: int) -> int:
        """Frustration reduction if ``v`` switches camp."""
        delta = 0
        for u in graph.pos_neighbors(v):
            delta += 1 if camp[u] == camp[v] else -1
        for u in graph.neg_neighbors(v):
            delta += -1 if camp[u] == camp[v] else 1
        # ``delta`` counts satisfied-incident-edges now minus after;
        # switching helps when it is negative.
        return delta

    for _round in range(max_rounds):
        improved = False
        for v in graph.vertices():
            if gain(v) < 0:
                camp[v] = 1 - camp[v]
                improved = True
        if not improved:
            break

    left = {v for v, side in camp.items() if side == 0}
    right = set(graph.vertices()) - left
    return left, right, frustration_count(graph, left, right)
