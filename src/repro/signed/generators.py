"""Synthetic signed-graph generators.

The paper evaluates on 12 real datasets plus two graphs produced by the
SRN community-based generator of Su et al. [32].  Offline we cannot fetch
the real graphs, so this module provides the generator family used by
:mod:`repro.datasets` to build deterministic stand-ins that preserve the
features the algorithms are sensitive to:

* :func:`random_signed_graph` — Erdős–Rényi-style background noise with a
  controlled negative-edge ratio;
* :func:`chung_lu_signed_graph` — heavy-tailed degree sequence (real
  social/rating networks are power-law);
* :func:`srn_community_graph` — an SRN-style generator: dense positive
  communities with sparse negative inter-community edges, mirroring [32];
* :func:`plant_balanced_clique` — embeds a balanced clique with chosen
  side sizes (this pins ``|C*|`` and contributes to ``beta(G)``).

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import Sequence

from .graph import NEGATIVE, POSITIVE, SignedGraph

__all__ = [
    "random_signed_graph",
    "chung_lu_signed_graph",
    "srn_community_graph",
    "plant_balanced_clique",
    "power_law_weights",
]


def random_signed_graph(
    n: int,
    m: int,
    neg_ratio: float = 0.2,
    seed: int | None = None,
) -> SignedGraph:
    """Uniform random signed graph with ``n`` vertices and ``~m`` edges.

    Each sampled edge is negative with probability ``neg_ratio``.
    Duplicate picks are re-drawn, so the result has exactly ``m`` edges
    whenever ``m <= n*(n-1)/2``.
    """
    if not 0.0 <= neg_ratio <= 1.0:
        raise ValueError(f"neg_ratio must be in [0, 1], got {neg_ratio}")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the maximum {max_edges} for n={n}")
    rng = random.Random(seed)
    graph = SignedGraph(n)
    seen: set[tuple[int, int]] = set()
    while len(seen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        sign = NEGATIVE if rng.random() < neg_ratio else POSITIVE
        graph.add_edge(u, v, sign)
    return graph


def power_law_weights(n: int, exponent: float = 2.5) -> list[float]:
    """Chung–Lu weights ``w_i ∝ (i+1)^(-1/(exponent-1))``.

    Produces a degree sequence whose tail follows a power law with the
    given exponent, the standard model for social-network degrees.
    """
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    alpha = 1.0 / (exponent - 1.0)
    return [(i + 1) ** (-alpha) for i in range(n)]


def chung_lu_signed_graph(
    n: int,
    m: int,
    neg_ratio: float = 0.2,
    exponent: float = 2.5,
    seed: int | None = None,
) -> SignedGraph:
    """Signed Chung–Lu graph: heavy-tailed degrees, ``~m`` edges.

    Endpoints are sampled proportionally to power-law weights; the sign
    of each edge is negative with probability ``neg_ratio``.  Collisions
    are re-drawn up to a bounded number of attempts, so very dense
    requests may return slightly fewer than ``m`` edges.
    """
    rng = random.Random(seed)
    weights = power_law_weights(n, exponent)
    total = sum(weights)
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total)

    def sample_vertex() -> int:
        r = rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < r:
                lo = mid + 1
            else:
                hi = mid
        return lo

    graph = SignedGraph(n)
    seen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = 20 * m + 100
    while len(seen) < m and attempts < max_attempts:
        attempts += 1
        u = sample_vertex()
        v = sample_vertex()
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        sign = NEGATIVE if rng.random() < neg_ratio else POSITIVE
        graph.add_edge(u, v, sign)
    return graph


def srn_community_graph(
    n: int,
    communities: int,
    p_in: float = 0.05,
    p_out: float = 0.005,
    noise: float = 0.05,
    seed: int | None = None,
) -> SignedGraph:
    """SRN-style community signed graph (after Su et al. [32]).

    Vertices are split evenly into ``communities`` groups.  Within-group
    pairs get a positive edge with probability ``p_in``; cross-group
    pairs get a negative edge with probability ``p_out``.  Each placed
    edge has its sign flipped with probability ``noise``, modelling the
    imperfect balance of real networks.
    """
    if communities < 1:
        raise ValueError("need at least one community")
    rng = random.Random(seed)
    membership = [v % communities for v in range(n)]
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            same = membership[u] == membership[v]
            p = p_in if same else p_out
            if rng.random() >= p:
                continue
            sign = POSITIVE if same else NEGATIVE
            if rng.random() < noise:
                sign = -sign
            graph.add_edge(u, v, sign)
    return graph


def plant_balanced_clique(
    graph: SignedGraph,
    left: Sequence[int],
    right: Sequence[int],
) -> SignedGraph:
    """Embed a balanced clique on ``left ∪ right`` (mutates ``graph``).

    All within-side pairs become positive edges and all cross-side pairs
    become negative edges; conflicting pre-existing edges are rewritten.
    Returns ``graph`` for chaining.

    Raises
    ------
    ValueError
        if the two sides overlap or contain out-of-range vertices.
    """
    left_set, right_set = set(left), set(right)
    if left_set & right_set:
        raise ValueError(f"sides overlap: {sorted(left_set & right_set)}")
    n = graph.num_vertices
    for v in left_set | right_set:
        if not 0 <= v < n:
            raise ValueError(f"vertex {v} out of range for n={n}")

    def force_edge(u: int, v: int, sign: int) -> None:
        current = graph.sign(u, v)
        if current == sign:
            return
        if current is not None:
            graph.remove_edge(u, v)
        graph.add_edge(u, v, sign)

    members = sorted(left_set | right_set)
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            same_side = (u in left_set) == (v in left_set)
            force_edge(u, v, POSITIVE if same_side else NEGATIVE)
    return graph
