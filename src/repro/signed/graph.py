"""Signed graph data structure.

The :class:`SignedGraph` is the substrate every algorithm in this package
operates on.  It stores an undirected simple signed graph
``G = (V, E+, E-)`` as two families of adjacency sets (one per edge sign),
mirroring the paper's notation:

* ``N+(v)`` — positive neighbours (:meth:`SignedGraph.pos_neighbors`),
* ``N-(v)`` — negative neighbours (:meth:`SignedGraph.neg_neighbors`),
* ``d+(v)`` / ``d-(v)`` — positive / negative degree.

Vertices are integers ``0..n-1``.  Optional string labels can be attached
(used by the case-study datasets so results are human-readable).

Design notes
------------
Adjacency *sets* (not lists) are used because the branch-and-bound
algorithms intersect neighbourhoods constantly; set intersection is the
dominant primitive.  The structure is mutable only through the explicit
edge/vertex editing API; algorithms never mutate a caller's graph — they
copy or build induced subgraphs via :meth:`SignedGraph.subgraph`.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from ..kernels import npmask
from ..kernels.bitset import adjacency_masks, full_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernels.npmask import Matrix

POSITIVE = 1
NEGATIVE = -1

__all__ = ["SignedGraph", "POSITIVE", "NEGATIVE"]


def _edge_token(u: int, v: int, sign: int) -> int:
    """256-bit hash token of a single signed edge (endpoint order free).

    The incremental fingerprint accumulator XORs one token per edge, so
    inserting and removing the same edge cancel exactly and the
    accumulator never depends on edit order.  XOR-of-hashes is a
    standard multiset hash; it is collision-resistant for the
    non-adversarial cache-keying done here, not against attackers who
    can choose edges.
    """
    if u > v:
        u, v = v, u
    payload = f"{u},{v},{sign}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest(), "big")


class SignedGraph:
    """An undirected simple signed graph with integer vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    labels:
        Optional sequence of ``n`` vertex labels (e.g. subreddit names).
    """

    def __init__(self, n: int = 0,
                 labels: Sequence[str] | None = None) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._pos: list[set[int]] = [set() for _ in range(n)]
        self._neg: list[set[int]] = [set() for _ in range(n)]
        # Edge counters maintained incrementally by the mutation API so
        # num_edges / negative_ratio are O(1) (they are queried inside
        # reduction loops).
        self._pos_edges = 0
        self._neg_edges = 0
        self._pos_bits: list[int] | None = None
        self._neg_bits: list[int] | None = None
        self._pos_mat: "Matrix | None" = None
        self._neg_mat: "Matrix | None" = None
        self._fingerprint: str | None = None
        # XOR accumulator of per-edge hash tokens.  ``None`` means "not
        # primed": mutators skip it entirely, so bulk construction and
        # the reductions' peeling loops pay nothing.  The first
        # ``fingerprint()`` call primes it with one full edge scan;
        # after that every mutation maintains it in O(1) hashes, which
        # is what makes fingerprint-keyed caching viable on streaming
        # graphs (see ``repro.dynamic``).
        self._edge_acc: int | None = None
        self._labels: list[str] | None = None
        if labels is not None:
            if len(labels) != n:
                raise ValueError(
                    f"expected {n} labels, got {len(labels)}")
            self._labels = list(labels)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        positive_edges: Iterable[tuple[int, int]] = (),
        negative_edges: Iterable[tuple[int, int]] = (),
        labels: Sequence[str] | None = None,
    ) -> "SignedGraph":
        """Build a graph from explicit positive / negative edge lists."""
        graph = cls(n, labels=labels)
        for u, v in positive_edges:
            graph.add_edge(u, v, POSITIVE)
        for u, v in negative_edges:
            graph.add_edge(u, v, NEGATIVE)
        return graph

    @classmethod
    def from_signed_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int, int]],
        labels: Sequence[str] | None = None,
    ) -> "SignedGraph":
        """Build a graph from ``(u, v, sign)`` triples."""
        graph = cls(n, labels=labels)
        for u, v, sign in edges:
            graph.add_edge(u, v, sign)
        return graph

    def copy(self) -> "SignedGraph":
        """Return a deep copy (labels included)."""
        clone = SignedGraph(self.num_vertices, labels=self._labels)
        clone._pos = [set(adj) for adj in self._pos]
        clone._neg = [set(adj) for adj in self._neg]
        clone._pos_edges = self._pos_edges
        clone._neg_edges = self._neg_edges
        return clone

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``n = |V|``."""
        return len(self._pos)

    @property
    def num_edges(self) -> int:
        """``m = |E+| + |E-|``."""
        return self.num_positive_edges + self.num_negative_edges

    @property
    def num_positive_edges(self) -> int:
        """``|E+|`` (incrementally maintained, O(1))."""
        return self._pos_edges

    @property
    def num_negative_edges(self) -> int:
        """``|E-|`` (incrementally maintained, O(1))."""
        return self._neg_edges

    @property
    def negative_ratio(self) -> float:
        """``|E-| / |E|`` — the statistic reported in Table I."""
        m = self.num_edges
        return self.num_negative_edges / m if m else 0.0

    def vertices(self) -> range:
        """Iterate vertex ids ``0..n-1``."""
        return range(self.num_vertices)

    def label(self, v: int) -> str:
        """Human-readable label of ``v`` (falls back to ``str(v)``)."""
        if self._labels is None:
            return str(v)
        return self._labels[v]

    def labels(self) -> list[str]:
        """Labels for all vertices (generated if none were attached)."""
        if self._labels is None:
            return [str(v) for v in self.vertices()]
        return list(self._labels)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def pos_neighbors(self, v: int) -> set[int]:
        """``N+(v)`` — the set of positive neighbours of ``v``.

        The returned set is the live internal set; callers must not
        mutate it.
        """
        return self._pos[v]

    def neg_neighbors(self, v: int) -> set[int]:
        """``N-(v)`` — the set of negative neighbours of ``v``."""
        return self._neg[v]

    def neighbors(self, v: int) -> set[int]:
        """``N(v) = N+(v) ∪ N-(v)`` (a fresh set)."""
        return self._pos[v] | self._neg[v]

    def pos_adjacency_bits(self) -> list[int]:
        """Per-vertex positive-neighbour bitmasks, lazily cached.

        Invalidated by every mutation; callers must not mutate the
        returned list or hold it across edits.
        """
        if self._pos_bits is None:
            self._pos_bits = adjacency_masks(self._pos)
        return self._pos_bits

    def neg_adjacency_bits(self) -> list[int]:
        """Per-vertex negative-neighbour bitmasks, lazily cached."""
        if self._neg_bits is None:
            self._neg_bits = adjacency_masks(self._neg)
        return self._neg_bits

    def pos_adjacency_matrix(self) -> "Matrix":
        """Positive adjacency as a uint64 mask matrix, lazily cached.

        Kernel-layer representation for ``engine="numpy"``
        (:mod:`repro.kernels.npmask`); same invalidation contract as
        :meth:`pos_adjacency_bits`.
        """
        if self._pos_mat is None:
            self._pos_mat = npmask.matrix_from_masks(
                self.pos_adjacency_bits(), self.num_vertices)
        return self._pos_mat

    def neg_adjacency_matrix(self) -> "Matrix":
        """Negative adjacency as a uint64 mask matrix, lazily cached."""
        if self._neg_mat is None:
            self._neg_mat = npmask.matrix_from_masks(
                self.neg_adjacency_bits(), self.num_vertices)
        return self._neg_mat

    def all_bits(self) -> int:
        """Mask of the full vertex set ``0..n-1``."""
        return full_mask(self.num_vertices)

    def _invalidate_bits(self) -> None:
        self._pos_bits = None
        self._neg_bits = None
        self._pos_mat = None
        self._neg_mat = None
        self._fingerprint = None

    def pos_degree(self, v: int) -> int:
        """``d+(v)``."""
        return len(self._pos[v])

    def neg_degree(self, v: int) -> int:
        """``d-(v)``."""
        return len(self._neg[v])

    def degree(self, v: int) -> int:
        """``d(v) = d+(v) + d-(v)``."""
        return len(self._pos[v]) + len(self._neg[v])

    def sign(self, u: int, v: int) -> int | None:
        """Sign of edge ``(u, v)``: ``+1``, ``-1`` or ``None`` if absent."""
        if v in self._pos[u]:
            return POSITIVE
        if v in self._neg[u]:
            return NEGATIVE
        return None

    def has_edge(self, u: int, v: int) -> bool:
        """Whether any edge (either sign) joins ``u`` and ``v``."""
        return v in self._pos[u] or v in self._neg[u]

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield each edge once as ``(u, v, sign)`` with ``u < v``."""
        for u in self.vertices():
            for v in self._pos[u]:
                if u < v:
                    yield u, v, POSITIVE
            for v in self._neg[u]:
                if u < v:
                    yield u, v, NEGATIVE

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, label: str | None = None) -> int:
        """Append a vertex; returns its id."""
        self._pos.append(set())
        self._neg.append(set())
        self._invalidate_bits()
        if self._labels is not None:
            self._labels.append(label if label is not None
                                else str(len(self._pos) - 1))
        elif label is not None:
            self._labels = [str(v) for v in range(len(self._pos) - 1)]
            self._labels.append(label)
        return len(self._pos) - 1

    def add_edge(self, u: int, v: int, sign: int) -> None:
        """Insert edge ``(u, v)`` with the given sign.

        Raises
        ------
        ValueError
            on self-loops, out-of-range endpoints, invalid signs, or if
            the edge already exists with the *opposite* sign (the paper
            assumes ``E+ ∩ E- = ∅``).
        """
        if sign not in (POSITIVE, NEGATIVE):
            raise ValueError(f"sign must be +1 or -1, got {sign!r}")
        if u == v:
            raise ValueError(f"self-loop on vertex {u} is not allowed")
        n = self.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        other = self._neg if sign == POSITIVE else self._pos
        if v in other[u]:
            raise ValueError(
                f"edge ({u}, {v}) already present with opposite sign")
        target = self._pos if sign == POSITIVE else self._neg
        if v in target[u]:
            return  # duplicate insert of the same edge: no-op
        target[u].add(v)
        target[v].add(u)
        if sign == POSITIVE:
            self._pos_edges += 1
        else:
            self._neg_edges += 1
        if self._edge_acc is not None:
            self._edge_acc ^= _edge_token(u, v, sign)
        self._invalidate_bits()

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the edge ``(u, v)`` whatever its sign."""
        if v in self._pos[u]:
            self._pos[u].discard(v)
            self._pos[v].discard(u)
            self._pos_edges -= 1
            removed_sign = POSITIVE
        elif v in self._neg[u]:
            self._neg[u].discard(v)
            self._neg[v].discard(u)
            self._neg_edges -= 1
            removed_sign = NEGATIVE
        else:
            raise KeyError(f"no edge between {u} and {v}")
        if self._edge_acc is not None:
            self._edge_acc ^= _edge_token(u, v, removed_sign)
        self._invalidate_bits()

    def flip_sign(self, u: int, v: int) -> None:
        """Toggle the sign of the existing edge ``(u, v)``.

        Raises
        ------
        KeyError
            if no edge joins ``u`` and ``v``.
        """
        if v in self._pos[u]:
            self._pos[u].discard(v)
            self._pos[v].discard(u)
            self._neg[u].add(v)
            self._neg[v].add(u)
            self._pos_edges -= 1
            self._neg_edges += 1
            old_sign, new_sign = POSITIVE, NEGATIVE
        elif v in self._neg[u]:
            self._neg[u].discard(v)
            self._neg[v].discard(u)
            self._pos[u].add(v)
            self._pos[v].add(u)
            self._neg_edges -= 1
            self._pos_edges += 1
            old_sign, new_sign = NEGATIVE, POSITIVE
        else:
            raise KeyError(f"no edge between {u} and {v}")
        if self._edge_acc is not None:
            self._edge_acc ^= _edge_token(u, v, old_sign)
            self._edge_acc ^= _edge_token(u, v, new_sign)
        self._invalidate_bits()

    def isolate_vertex(self, v: int) -> None:
        """Remove all edges incident to ``v`` (used by peeling reductions)."""
        if self._edge_acc is not None:
            for u in self._pos[v]:
                self._edge_acc ^= _edge_token(u, v, POSITIVE)
            for u in self._neg[v]:
                self._edge_acc ^= _edge_token(u, v, NEGATIVE)
        for u in self._pos[v]:
            self._pos[u].discard(v)
        for u in self._neg[v]:
            self._neg[u].discard(v)
        self._pos_edges -= len(self._pos[v])
        self._neg_edges -= len(self._neg[v])
        self._pos[v] = set()
        self._neg[v] = set()
        self._invalidate_bits()

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def subgraph(
        self, vertices: Iterable[int]
    ) -> tuple["SignedGraph", list[int]]:
        """Vertex-induced subgraph ``G[S]`` with relabelled vertices.

        Returns the subgraph plus ``mapping`` where ``mapping[new_id]``
        is the original vertex id, so results can be translated back.
        """
        kept = set(vertices)
        mapping = sorted(kept)
        if len(mapping) == self.num_vertices:
            return self.copy(), mapping
        index: dict[int, int] = {old: new for new, old in enumerate(mapping)}
        labels = None
        if self._labels is not None:
            labels = [self._labels[old] for old in mapping]
        sub = SignedGraph(len(mapping), labels=labels)
        for new_u, old_u in enumerate(mapping):
            for old_v in self._pos[old_u] & kept:
                new_v = index[old_v]
                if new_u < new_v:
                    sub._pos[new_u].add(new_v)
                    sub._pos[new_v].add(new_u)
                    sub._pos_edges += 1
            for old_v in self._neg[old_u] & kept:
                new_v = index[old_v]
                if new_u < new_v:
                    sub._neg[new_u].add(new_v)
                    sub._neg[new_v].add(new_u)
                    sub._neg_edges += 1
        return sub, mapping

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of ``(n, signed edge set)``.

        SHA-256 over the vertex count plus an XOR accumulator of
        per-edge hash tokens (:func:`_edge_token`).  Two graphs get the
        same fingerprint iff they have the same vertex count and edge
        set — labels and construction order do not matter.  This is the
        cache key for result caching / memoization; cached per instance
        and invalidated by every mutation.

        The first call primes the accumulator with one full edge scan;
        every subsequent mutation maintains it with O(1) hash updates
        (O(deg) for :meth:`isolate_vertex`), so re-fingerprinting after
        an edit costs one SHA-256 rather than an edge-list sort.  The
        incremental path is what :class:`repro.dynamic.DynamicSolver`
        keys its per-ego result cache on; ``tests/test_signed_graph.py``
        asserts it always equals a from-scratch recomputation.
        """
        if self._fingerprint is None:
            if self._edge_acc is None:
                acc = 0
                for u, v, sign in self.edges():
                    acc ^= _edge_token(u, v, sign)
                self._edge_acc = acc
            digest = hashlib.sha256()
            digest.update(
                f"n={self.num_vertices};edges={self._edge_acc:064x}"
                .encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on breakage.

        Intended for tests and after bulk construction — verifies
        symmetry, sign-disjointness and absence of self-loops.
        """
        n = self.num_vertices
        for v in self.vertices():
            assert v not in self._pos[v], f"positive self-loop at {v}"
            assert v not in self._neg[v], f"negative self-loop at {v}"
            overlap = self._pos[v] & self._neg[v]
            assert not overlap, f"vertex {v} has double-signed edges {overlap}"
            for u in self._pos[v]:
                assert 0 <= u < n and v in self._pos[u], \
                    f"asymmetric positive edge ({v}, {u})"
            for u in self._neg[v]:
                assert 0 <= u < n and v in self._neg[u], \
                    f"asymmetric negative edge ({v}, {u})"
        pos_sum = sum(len(adj) for adj in self._pos) // 2
        neg_sum = sum(len(adj) for adj in self._neg) // 2
        assert self._pos_edges == pos_sum, \
            f"positive edge counter {self._pos_edges} != {pos_sum}"
        assert self._neg_edges == neg_sum, \
            f"negative edge counter {self._neg_edges} != {neg_sum}"

    def degree_statistics(self) -> Mapping[str, float]:
        """Summary statistics used by dataset reports."""
        n = self.num_vertices
        if n == 0:
            return {"max_degree": 0, "avg_degree": 0.0,
                    "max_pos_degree": 0, "max_neg_degree": 0}
        return {
            "max_degree": max(self.degree(v) for v in self.vertices()),
            "avg_degree": 2.0 * self.num_edges / n,
            "max_pos_degree": max(self.pos_degree(v)
                                  for v in self.vertices()),
            "max_neg_degree": max(self.neg_degree(v)
                                  for v in self.vertices()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SignedGraph(n={self.num_vertices}, "
                f"m+={self.num_positive_edges}, "
                f"m-={self.num_negative_edges})")
