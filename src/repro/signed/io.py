"""Reading and writing signed graphs.

The on-disk format is a plain text edge list, one edge per line::

    # comment lines start with '#'
    <u> <v> <sign>

where ``sign`` is ``1``/``+``/``+1`` or ``-1``/``-``.  This matches the
format of the SNAP signed networks (soc-sign-bitcoin etc.) after their
header is stripped, so real datasets drop in directly when available.
"""

from __future__ import annotations

import os
from typing import IO, Iterable, Iterator

from .graph import NEGATIVE, POSITIVE, SignedGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "parse_edge_lines",
    "load_signed_graph",
    "save_signed_graph",
]

_POSITIVE_TOKENS = {"1", "+1", "+"}
_NEGATIVE_TOKENS = {"-1", "-"}


def parse_edge_lines(
    lines: Iterable[str],
) -> Iterator[tuple[int, int, int]]:
    """Parse edge-list lines into ``(u, v, sign)`` triples.

    Blank lines and ``#`` comments are skipped.  Raises ``ValueError``
    with the offending line number for malformed input, including
    self-loops — :class:`~repro.signed.graph.SignedGraph` would reject
    one anyway, but only after id compaction has destroyed the line
    number the user needs to fix their file.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(
                f"line {lineno}: expected 'u v sign', got {line!r}")
        try:
            u = int(parts[0])
            v = int(parts[1])
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: non-integer endpoint in {line!r}") from exc
        if u == v:
            raise ValueError(
                f"line {lineno}: self-loop ({u}, {v}) — signed graphs "
                f"here are simple")
        token = parts[2]
        if token in _POSITIVE_TOKENS:
            sign = POSITIVE
        elif token in _NEGATIVE_TOKENS:
            sign = NEGATIVE
        else:
            raise ValueError(
                f"line {lineno}: sign must be +1/-1, got {token!r}")
        yield u, v, sign


def read_edge_list(stream: IO[str]) -> SignedGraph:
    """Read a signed graph from an open text stream.

    Vertex ids may be sparse; they are compacted to ``0..n-1`` in order
    of first appearance of the sorted id set.  Duplicate edges with the
    same sign are merged silently; a duplicate with conflicting sign
    raises ``ValueError``.
    """
    triples = list(parse_edge_lines(stream))
    ids = sorted({u for u, _, _ in triples} | {v for _, v, _ in triples})
    index = {old: new for new, old in enumerate(ids)}
    graph = SignedGraph(len(ids))
    for u, v, sign in triples:
        a, b = index[u], index[v]
        if graph.sign(a, b) == sign:
            continue
        try:
            graph.add_edge(a, b, sign)
        except ValueError as exc:
            raise ValueError(
                f"conflicting duplicate edge ({u}, {v})") from exc
    return graph


def write_edge_list(graph: SignedGraph, stream: IO[str]) -> None:
    """Write ``graph`` in the edge-list format."""
    stream.write(f"# signed graph: n={graph.num_vertices} "
                 f"m={graph.num_edges}\n")
    for u, v, sign in graph.edges():
        stream.write(f"{u} {v} {sign}\n")


def load_signed_graph(path: str | os.PathLike[str]) -> SignedGraph:
    """Load a signed graph from ``path`` (edge-list format).

    ``OSError`` is re-raised with the path attached: the CLI surfaces
    these directly, and a bare ``ENOENT`` from three frames down is
    useless without knowing *which* file the solve tried to read.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return read_edge_list(handle)
    except OSError as exc:
        raise OSError(
            f"cannot read signed graph {os.fspath(path)!r}: "
            f"{exc.strerror or exc}") from exc


def save_signed_graph(
    graph: SignedGraph, path: str | os.PathLike[str]
) -> None:
    """Save ``graph`` to ``path`` (edge-list format)."""
    with open(path, "w", encoding="utf-8") as handle:
        write_edge_list(graph, handle)
