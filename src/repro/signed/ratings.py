"""Rating-network → signed-graph conversion.

Four of the paper's datasets (Amazon, BookCross, TripAdvisor, YahooSong)
are bipartite user–item *rating* networks that the authors convert into
signed user–user graphs: a pair of users gets a positive edge when they
gave enough *close* ratings to common items, and a negative edge when
they gave enough *opposite* ratings.

This module implements that conversion so the pipeline exists end to
end; :mod:`repro.datasets` uses it (fed by a synthetic rating generator)
to build the rating-network stand-ins.
"""

from __future__ import annotations

import random
from collections import defaultdict

from .graph import NEGATIVE, POSITIVE, SignedGraph

__all__ = ["RatingTable", "ratings_to_signed_graph", "random_rating_table"]


class RatingTable:
    """A sparse users × items rating table.

    Ratings are numeric (e.g. 1–5 stars).  Stored as per-item maps so the
    conversion can iterate over co-raters of each item.
    """

    def __init__(self, num_users: int, num_items: int) -> None:
        if num_users < 0 or num_items < 0:
            raise ValueError("user/item counts must be non-negative")
        self.num_users = num_users
        self.num_items = num_items
        self._by_item: list[dict[int, float]] = [
            {} for _ in range(num_items)]

    def rate(self, user: int, item: int, score: float) -> None:
        """Record (or overwrite) a rating."""
        if not 0 <= user < self.num_users:
            raise ValueError(f"user {user} out of range")
        if not 0 <= item < self.num_items:
            raise ValueError(f"item {item} out of range")
        self._by_item[item][user] = score

    def item_ratings(self, item: int) -> dict[int, float]:
        """Mapping ``user -> score`` for ``item``."""
        return self._by_item[item]

    @property
    def num_ratings(self) -> int:
        return sum(len(r) for r in self._by_item)


def ratings_to_signed_graph(
    table: RatingTable,
    close_threshold: float = 1.0,
    opposite_threshold: float = 2.0,
    min_agreements: int = 2,
) -> SignedGraph:
    """Convert a rating table into a signed user–user graph.

    Following the paper's recipe: for each pair of users, count the
    common items on which their scores differ by at most
    ``close_threshold`` (*close*) and by at least ``opposite_threshold``
    (*opposite*).  If at least ``min_agreements`` close co-ratings exist
    and they outnumber opposite ones, the pair gets a positive edge; the
    symmetric rule yields a negative edge; ties produce no edge.
    """
    close: dict[tuple[int, int], int] = defaultdict(int)
    opposite: dict[tuple[int, int], int] = defaultdict(int)
    for item in range(table.num_items):
        ratings = sorted(table.item_ratings(item).items())
        for i, (u, su) in enumerate(ratings):
            for v, sv in ratings[i + 1:]:
                gap = abs(su - sv)
                if gap <= close_threshold:
                    close[(u, v)] += 1
                elif gap >= opposite_threshold:
                    opposite[(u, v)] += 1

    graph = SignedGraph(table.num_users)
    # Sorted so edge insertion order (and thus everything downstream
    # that iterates edges) is identical across PYTHONHASHSEED values.
    for pair in sorted(set(close) | set(opposite)):
        agree = close.get(pair, 0)
        disagree = opposite.get(pair, 0)
        u, v = pair
        if agree >= min_agreements and agree > disagree:
            graph.add_edge(u, v, POSITIVE)
        elif disagree >= min_agreements and disagree > agree:
            graph.add_edge(u, v, NEGATIVE)
    return graph


def random_rating_table(
    num_users: int,
    num_items: int,
    ratings_per_user: int,
    taste_groups: int = 2,
    noise: float = 0.1,
    seed: int | None = None,
) -> RatingTable:
    """Generate a synthetic rating table with latent taste groups.

    Users belong to one of ``taste_groups`` groups; each group loves a
    disjoint half of the item space and pans the rest, so users in the
    same group produce *close* co-ratings and users in different groups
    produce *opposite* ones — exactly the structure the conversion turns
    into positive/negative edges.  ``noise`` is the chance a rating is
    replaced by a uniform random score.
    """
    if taste_groups < 1:
        raise ValueError("need at least one taste group")
    rng = random.Random(seed)
    table = RatingTable(num_users, num_items)
    for user in range(num_users):
        group = user % taste_groups
        items = rng.sample(range(num_items),
                           min(ratings_per_user, num_items))
        for item in items:
            loves = (item % taste_groups) == group
            score = 5.0 if loves else 1.0
            if rng.random() < noise:
                score = float(rng.randint(1, 5))
            table.rate(user, item, score)
    return table
