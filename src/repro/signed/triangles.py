"""Signed triangle census and the graph balance degree.

Triangles are the local unit of structural balance: a triangle is
*balanced* when the product of its edge signs is positive (``+++`` or
``+--``) and *unbalanced* otherwise (``++-`` or ``---``).  The classic
*balance degree* of a signed graph is the fraction of its triangles
that are balanced — a standard descriptive statistic for the Table I
datasets, and the quantity ``EdgeReduction`` [13] reasons about
per-edge (a balanced-clique edge must close enough sign-compatible
triangles).

:func:`triangle_census` counts all four sign patterns in
``O(sum_v d(v)^2)`` using neighbourhood intersections.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import SignedGraph

__all__ = ["TriangleCensus", "triangle_census", "balance_degree",
           "edge_triangle_profile"]


@dataclass(frozen=True)
class TriangleCensus:
    """Counts of the four signed-triangle types."""

    #: All edges positive (balanced).
    ppp: int = 0
    #: One positive, two negative (balanced).
    pnn: int = 0
    #: Two positive, one negative (unbalanced).
    ppn: int = 0
    #: All negative (unbalanced).
    nnn: int = 0

    @property
    def total(self) -> int:
        return self.ppp + self.pnn + self.ppn + self.nnn

    @property
    def balanced(self) -> int:
        """Triangles with a positive sign product."""
        return self.ppp + self.pnn

    @property
    def unbalanced(self) -> int:
        return self.ppn + self.nnn

    @property
    def balance_degree(self) -> float:
        """Fraction of balanced triangles (1.0 for triangle-free)."""
        if self.total == 0:
            return 1.0
        return self.balanced / self.total


def triangle_census(graph: SignedGraph) -> TriangleCensus:
    """Count every triangle of ``graph`` by sign pattern.

    Each triangle is counted exactly once (via its lowest-id vertex
    ordering).
    """
    ppp = pnn = ppn = nnn = 0
    for u in graph.vertices():
        pos_u = graph.pos_neighbors(u)
        neg_u = graph.neg_neighbors(u)
        higher_pos = {v for v in pos_u if v > u}
        higher_neg = {v for v in neg_u if v > u}
        for v in higher_pos:
            for w in (graph.pos_neighbors(v) & higher_pos):
                if w > v:
                    ppp += 1                  # + + +
            for w in (graph.neg_neighbors(v) & higher_pos):
                if w > v:
                    ppn += 1                  # + + -
            for w in (graph.pos_neighbors(v) & higher_neg):
                if w > v:
                    ppn += 1                  # + - +
            for w in (graph.neg_neighbors(v) & higher_neg):
                if w > v:
                    pnn += 1                  # + - -
        for v in higher_neg:
            for w in (graph.pos_neighbors(v) & higher_pos):
                if w > v:
                    ppn += 1                  # - + +
            for w in (graph.neg_neighbors(v) & higher_pos):
                if w > v:
                    pnn += 1                  # - + -
            for w in (graph.pos_neighbors(v) & higher_neg):
                if w > v:
                    pnn += 1                  # - - +
            for w in (graph.neg_neighbors(v) & higher_neg):
                if w > v:
                    nnn += 1                  # - - -
    return TriangleCensus(ppp=ppp, pnn=pnn, ppn=ppn, nnn=nnn)


def balance_degree(graph: SignedGraph) -> float:
    """Fraction of balanced triangles (convenience wrapper)."""
    return triangle_census(graph).balance_degree


def edge_triangle_profile(
    graph: SignedGraph, u: int, v: int
) -> dict[str, int]:
    """Sign-typed triangle counts through one edge ``(u, v)``.

    Keys mirror the quantities ``EdgeReduction`` needs:

    * ``pos_pos`` — third vertices positive to both endpoints,
    * ``neg_neg`` — negative to both,
    * ``pos_neg`` — positive to ``u``, negative to ``v``,
    * ``neg_pos`` — negative to ``u``, positive to ``v``.

    Raises ``KeyError`` if the edge is absent.
    """
    if not graph.has_edge(u, v):
        raise KeyError(f"no edge between {u} and {v}")
    return {
        "pos_pos": len(graph.pos_neighbors(u) & graph.pos_neighbors(v)),
        "neg_neg": len(graph.neg_neighbors(u) & graph.neg_neighbors(v)),
        "pos_neg": len(graph.pos_neighbors(u) & graph.neg_neighbors(v)),
        "neg_pos": len(graph.neg_neighbors(u) & graph.pos_neighbors(v)),
    }
