"""Unsigned-graph substrate: cores, orderings, colouring, max clique."""

from .graph import UnsignedGraph
from .cores import core_numbers, degeneracy, k_core_subset, k_core_vertices
from .ordering import degeneracy_ordering, rank_of_ordering
from .coloring import coloring_upper_bound, greedy_coloring, \
    is_proper_coloring
from .clique import maximum_clique, maximum_clique_size
from .recolor import recolor, recoloring_upper_bound

__all__ = [
    "UnsignedGraph",
    "core_numbers",
    "degeneracy",
    "k_core_subset",
    "k_core_vertices",
    "degeneracy_ordering",
    "rank_of_ordering",
    "coloring_upper_bound",
    "greedy_coloring",
    "is_proper_coloring",
    "maximum_clique",
    "maximum_clique_size",
    "recolor",
    "recoloring_upper_bound",
]
