"""Reference maximum-clique solver for unsigned graphs.

A compact branch-and-bound in the style of the solvers the paper builds
on [25]-[27]: degeneracy-ordered outer loop, per-node k-core reduction
and greedy-colouring upper bound.  It is used

* as the unsigned machinery behind ``MBC-Adv`` (Figure 8's baseline),
* to cross-check the dichromatic solver when ``tau = 0`` (a dichromatic
  clique with no side constraints is just a clique), and
* by the NP-hardness-reduction tests (Theorem 1).
"""

from __future__ import annotations

from .coloring import coloring_upper_bound
from .cores import k_core_subset
from .graph import UnsignedGraph
from .ordering import degeneracy_ordering

__all__ = ["maximum_clique", "maximum_clique_size"]


def maximum_clique(graph: UnsignedGraph) -> set[int]:
    """Return a maximum clique of ``graph`` (exact, exponential worst
    case; fast in practice on sparse graphs)."""
    best: set[int] = set()
    order = degeneracy_ordering(graph)
    rank = {v: i for i, v in enumerate(order)}
    # Process vertices from highest rank down, restricting candidates to
    # higher-ranked neighbours — every clique is found at its
    # lowest-ranked member.
    for v in reversed(order):
        candidates = {u for u in graph.neighbors(v) if rank[u] > rank[v]}
        if len(candidates) + 1 <= len(best):
            continue
        candidates = k_core_subset(graph, max(len(best) - 1, 0), candidates)
        if len(candidates) + 1 <= len(best):
            continue
        if coloring_upper_bound(graph, candidates) + 1 <= len(best):
            continue
        found = _extend({v}, candidates, graph, best)
        if len(found) > len(best):
            best = found
    return best


def _extend(
    clique: set[int],
    candidates: set[int],
    graph: UnsignedGraph,
    best: set[int],
) -> set[int]:
    """Grow ``clique`` within ``candidates``; returns the best clique seen."""
    if not candidates:
        return clique if len(clique) > len(best) else best
    if len(clique) + len(candidates) <= len(best):
        return best
    if len(clique) + coloring_upper_bound(graph, candidates) <= len(best):
        return best
    working = set(candidates)
    while working:
        # Branch on the minimum-degree candidate (within the candidate
        # subgraph), matching the paper's branching rule.
        v = min(working, key=lambda u: len(graph.neighbors(u) & working))
        result = _extend(
            clique | {v}, graph.neighbors(v) & working, graph, best)
        if len(result) > len(best):
            best = result
        working.discard(v)
        if len(clique) + len(working) <= len(best):
            break
    return best


def maximum_clique_size(graph: UnsignedGraph) -> int:
    """Size of a maximum clique (convenience wrapper)."""
    return len(maximum_clique(graph))
