"""Greedy graph colouring and the colouring-based clique upper bound.

Lemma 2 of the paper: the maximum clique size of a graph is at most its
chromatic number, and any proper colouring's colour count upper-bounds
the chromatic number.  MBC* uses this bound both to prune whole
dichromatic networks (Line 8 of Algorithm 2) and inside the MDC
branch-and-bound (Line 12).

The greedy colouring processes vertices in non-increasing degree order
(within the active subset) and gives each vertex the smallest colour not
used by its already-coloured neighbours — the standard heuristic used by
maximum-clique solvers [27].
"""

from __future__ import annotations

from typing import Iterable

from .graph import UnsignedGraph

__all__ = ["greedy_coloring", "coloring_upper_bound", "is_proper_coloring"]


def greedy_coloring(
    graph: UnsignedGraph, active: Iterable[int] | None = None
) -> dict[int, int]:
    """Proper colouring of the subgraph induced by ``active``.

    Returns ``vertex -> colour`` with colours ``0..k-1``.  Linear in the
    number of induced edges.
    """
    if active is None:
        vertices = list(graph.vertices())
        vertex_set = set(vertices)
    else:
        vertex_set = set(active)
        vertices = list(vertex_set)
    vertices.sort(
        key=lambda v: len(graph.neighbors(v) & vertex_set), reverse=True)
    colors: dict[int, int] = {}
    for v in vertices:
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        color = 0
        while color in used:
            color += 1
        colors[v] = color
    return colors


def coloring_upper_bound(
    graph: UnsignedGraph, active: Iterable[int] | None = None
) -> int:
    """``colorUB(g)``: number of colours used by the greedy colouring.

    Upper-bounds the maximum clique size of the induced subgraph
    (Lemma 2).  Returns 0 for an empty vertex set.
    """
    colors = greedy_coloring(graph, active)
    if not colors:
        return 0
    return max(colors.values()) + 1


def is_proper_coloring(
    graph: UnsignedGraph, colors: dict[int, int]
) -> bool:
    """Whether ``colors`` assigns distinct colours to adjacent vertices
    (test helper)."""
    for v, c in colors.items():
        for u in graph.neighbors(v):
            if u in colors and colors[u] == c:
                return False
    return True
