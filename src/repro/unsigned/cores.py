"""k-core decomposition and k-core reduction (unsigned).

Used throughout MBC* (Algorithm 2): the input graph is reduced to its
``|C*|``-core before the search, and each branch-and-bound node reduces
its candidate subgraph to the ``(|C*| - |C|)``-core.

Two entry points:

* :func:`core_numbers` — full core decomposition via peeling (linear
  time with bucket queues);
* :func:`k_core_vertices` — the vertex set of the ``k``-core of a graph,
  optionally restricted to an ``active`` vertex subset (the form the
  branch-and-bound needs: it never materializes induced subgraphs).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from .graph import UnsignedGraph

__all__ = [
    "core_numbers",
    "k_core_vertices",
    "k_core_subset",
    "degeneracy",
    "verify_core_property",
]


def core_numbers(graph: UnsignedGraph) -> list[int]:
    """Core number of every vertex (peeling with bucket queues).

    ``core[v]`` is the largest ``k`` such that ``v`` belongs to the
    ``k``-core.  Runs in ``O(n + m)``.
    """
    n = graph.num_vertices
    degree = [graph.degree(v) for v in range(n)]
    max_degree = max(degree, default=0)
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    core = [0] * n
    removed = [False] * n
    current = 0
    processed = 0
    pointer = [0] * (max_degree + 1)
    scan_from = 0
    while processed < n:
        # Find the non-empty bucket with the smallest degree.  After a
        # vertex of degree d is peeled, neighbour degrees drop to >= d-1,
        # so the scan can resume from d-1 instead of 0 (keeps the whole
        # decomposition linear).
        d = scan_from
        while d <= max_degree and pointer[d] >= len(buckets[d]):
            d += 1
        if d > max_degree:
            break
        v = buckets[d][pointer[d]]
        pointer[d] += 1
        if removed[v] or degree[v] != d:
            continue
        scan_from = max(0, d - 1)
        current = max(current, d)
        core[v] = current
        removed[v] = True
        processed += 1
        for u in graph.neighbors(v):
            if not removed[u] and degree[u] > d:
                degree[u] -= 1
                buckets[degree[u]].append(u)
    return core


def k_core_vertices(graph: UnsignedGraph, k: int) -> set[int]:
    """Vertex set of the ``k``-core of ``graph``.

    The ``k``-core is the (unique, possibly empty) maximal subgraph with
    minimum degree at least ``k``.
    """
    return k_core_subset(graph, k, graph.vertices())


def k_core_subset(
    graph: UnsignedGraph, k: int, active: Iterable[int]
) -> set[int]:
    """``k``-core of the subgraph induced by ``active``.

    Iteratively removes vertices whose degree *within the active set*
    drops below ``k``.  Returns the set of surviving vertices.
    """
    alive = set(active)
    if k <= 0:
        return alive
    degree = {v: len(graph.neighbors(v) & alive) for v in alive}
    queue = deque(v for v, d in degree.items() if d < k)
    queued = set(queue)
    while queue:
        v = queue.popleft()
        if v not in alive:
            continue
        alive.discard(v)
        for u in graph.neighbors(v):
            if u in alive:
                degree[u] -= 1
                if degree[u] < k and u not in queued:
                    queue.append(u)
                    queued.add(u)
    return alive


def degeneracy(graph: UnsignedGraph) -> int:
    """The degeneracy of ``graph`` (the largest ``k`` with non-empty
    ``k``-core); equals ``max(core_numbers(graph))``."""
    cores = core_numbers(graph)
    return max(cores, default=0)


def verify_core_property(
    graph: UnsignedGraph, k: int, vertices: Sequence[int] | set[int]
) -> bool:
    """True iff every vertex of ``vertices`` has ``>= k`` neighbours in
    ``vertices`` (test helper)."""
    vertex_set = set(vertices)
    return all(
        len(graph.neighbors(v) & vertex_set) >= k for v in vertex_set)
