"""Lightweight unsigned graph used by the pruning/bounding machinery.

``MBC*`` repeatedly treats (sub)graphs *without* edge signs: the
``|C*|``-core reduction, the degeneracy ordering and the colouring upper
bound all operate on the unsigned view of the signed graph.  This module
provides that view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from ..kernels.bitset import adjacency_masks, full_mask, iter_bits

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..signed.graph import SignedGraph

__all__ = ["UnsignedGraph"]


class UnsignedGraph:
    """Undirected simple graph over vertices ``0..n-1`` (adjacency sets)."""

    def __init__(self, n: int = 0) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._adj: list[set[int]] | None = [set() for _ in range(n)]
        self._adj_bits: list[int] | None = None

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]]
    ) -> "UnsignedGraph":
        graph = cls(n)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_signed(cls, signed: "SignedGraph") -> "UnsignedGraph":
        """Unsigned view of a signed graph (signs discarded)."""
        graph = cls(signed.num_vertices)
        for u, v, _sign in signed.edges():
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_signed_bits(cls, signed: "SignedGraph") -> "UnsignedGraph":
        """Mask-backed unsigned view: adjacency is ``pos | neg``.

        No per-edge set insertions — one OR per vertex over the signed
        graph's cached global bitmasks.  Adjacency sets are materialized
        lazily only if a set-based accessor is used.
        """
        pos_bits = signed.pos_adjacency_bits()
        neg_bits = signed.neg_adjacency_bits()
        graph = cls.__new__(cls)
        graph._n = signed.num_vertices
        graph._adj = None
        graph._adj_bits = [
            pos | neg for pos, neg in zip(pos_bits, neg_bits)]
        return graph

    def _sets(self) -> list[set[int]]:
        """Adjacency sets, materialized from the masks on first use."""
        if self._adj is None:
            self._adj = [
                set(iter_bits(mask)) for mask in self._adj_bits]
        return self._adj

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        if self._adj_bits is not None:
            return sum(mask.bit_count() for mask in self._adj_bits) // 2
        return sum(len(adj) for adj in self._adj) // 2

    def vertices(self) -> range:
        return range(self.num_vertices)

    def neighbors(self, v: int) -> set[int]:
        """Live adjacency set of ``v`` — callers must not mutate it."""
        return self._sets()[v]

    def degree(self, v: int) -> int:
        if self._adj_bits is not None:
            return self._adj_bits[v].bit_count()
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        if self._adj_bits is not None:
            return bool(self._adj_bits[u] & (1 << v))
        return v in self._adj[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        adj = self._sets()
        for u in self.vertices():
            for v in adj[u]:
                if u < v:
                    yield u, v

    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loop on vertex {u} is not allowed")
        n = self.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        adj = self._sets()
        adj[u].add(v)
        adj[v].add(u)
        self._adj_bits = None

    def adjacency_bits(self) -> list[int]:
        """Per-vertex neighbourhood bitmasks, built lazily and cached.

        The cache is invalidated by :meth:`add_edge`; callers must not
        mutate the returned list or its entries between edits.
        """
        if self._adj_bits is None:
            self._adj_bits = adjacency_masks(self._adj)
        return self._adj_bits

    def all_bits(self) -> int:
        """Mask of the full vertex set ``0..n-1``."""
        return full_mask(self.num_vertices)

    def copy(self) -> "UnsignedGraph":
        clone = UnsignedGraph(self.num_vertices)
        clone._adj = [set(adj) for adj in self._sets()]
        return clone

    def is_clique(self, vertices: Iterable[int]) -> bool:
        """Whether the given vertices are pairwise adjacent."""
        members = list(vertices)
        sets = self._sets()
        for i, u in enumerate(members):
            adj = sets[u]
            for v in members[i + 1:]:
                if v not in adj:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnsignedGraph(n={self.num_vertices}, m={self.num_edges})"
