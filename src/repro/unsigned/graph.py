"""Lightweight unsigned graph used by the pruning/bounding machinery.

``MBC*`` repeatedly treats (sub)graphs *without* edge signs: the
``|C*|``-core reduction, the degeneracy ordering and the colouring upper
bound all operate on the unsigned view of the signed graph.  This module
provides that view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..signed.graph import SignedGraph

__all__ = ["UnsignedGraph"]


class UnsignedGraph:
    """Undirected simple graph over vertices ``0..n-1`` (adjacency sets)."""

    def __init__(self, n: int = 0):
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._adj: list[set[int]] = [set() for _ in range(n)]

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]]
    ) -> "UnsignedGraph":
        graph = cls(n)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_signed(cls, signed: "SignedGraph") -> "UnsignedGraph":
        """Unsigned view of a signed graph (signs discarded)."""
        graph = cls(signed.num_vertices)
        for u, v, _sign in signed.edges():
            graph.add_edge(u, v)
        return graph

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(adj) for adj in self._adj) // 2

    def vertices(self) -> range:
        return range(self.num_vertices)

    def neighbors(self, v: int) -> set[int]:
        """Live adjacency set of ``v`` — callers must not mutate it."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        for u in self.vertices():
            for v in self._adj[u]:
                if u < v:
                    yield u, v

    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loop on vertex {u} is not allowed")
        n = self.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        self._adj[u].add(v)
        self._adj[v].add(u)

    def copy(self) -> "UnsignedGraph":
        clone = UnsignedGraph(self.num_vertices)
        clone._adj = [set(adj) for adj in self._adj]
        return clone

    def is_clique(self, vertices: Iterable[int]) -> bool:
        """Whether the given vertices are pairwise adjacent."""
        members = list(vertices)
        for i, u in enumerate(members):
            adj = self._adj[u]
            for v in members[i + 1:]:
                if v not in adj:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnsignedGraph(n={self.num_vertices}, m={self.num_edges})"
