"""Vertex orderings for the search algorithms.

MBC* (Algorithm 2) processes vertices in reverse *degeneracy ordering*
(smallest-first ordering [29]): the first vertex has minimum degree in
the graph, the second has minimum degree after removing the first, and
so on.  Ego-networks built from higher-ranked neighbours then have at
most ``degeneracy(G)`` vertices.
"""

from __future__ import annotations

from .graph import UnsignedGraph

__all__ = ["degeneracy_ordering", "rank_of_ordering", "HigherRanked"]


class HigherRanked:
    """Membership view over vertices ranked above a threshold.

    MBC* and PF* both restrict each ego network to the neighbours that
    appear *later* in the processing order; this view answers that
    membership question without materializing the suffix set.  Vertices
    absent from ``rank`` are never members.
    """

    __slots__ = ("_rank", "_threshold")

    def __init__(self, rank: dict[int, int], threshold: int) -> None:
        self._rank = rank
        self._threshold = threshold

    def __contains__(self, v: int) -> bool:
        position = self._rank.get(v)
        return position is not None and position > self._threshold


def degeneracy_ordering(graph: UnsignedGraph) -> list[int]:
    """Smallest-first (degeneracy) ordering of the vertices.

    Returns the peeling order: position 0 holds the globally
    smallest-degree vertex.  A vertex "ranks higher" when it appears
    *later* in this list.  Runs in ``O(n + m)`` using bucket queues.
    """
    n = graph.num_vertices
    degree = [graph.degree(v) for v in range(n)]
    max_degree = max(degree, default=0)
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    pointer = [0] * (max_degree + 1)
    removed = [False] * n
    order: list[int] = []
    scan_from = 0
    while len(order) < n:
        d = scan_from
        while d <= max_degree and pointer[d] >= len(buckets[d]):
            d += 1
        if d > max_degree:
            break
        v = buckets[d][pointer[d]]
        pointer[d] += 1
        if removed[v] or degree[v] != d:
            continue
        scan_from = max(0, d - 1)
        removed[v] = True
        order.append(v)
        for u in graph.neighbors(v):
            if not removed[u]:
                degree[u] -= 1
                buckets[degree[u]].append(u)
    return order


def rank_of_ordering(order: list[int]) -> list[int]:
    """Inverse permutation: ``rank[v]`` is the position of ``v`` in
    ``order`` (higher rank = later = processed earlier by MBC*)."""
    rank = [0] * len(order)
    for position, v in enumerate(order):
        rank[v] = position
    return rank
