"""Recolouring-improved clique upper bound (after Tomita [26]).

The paper's Related Work points to graph *recolouring* as one of the
advanced techniques of modern maximum-clique solvers.  The idea: after
a greedy colouring, a vertex ``v`` in the highest colour class may be
*re-numbered* into a lower class ``c1`` if it conflicts with exactly
one vertex ``w`` there and ``w`` itself can move to another class
``c2`` (a 2-swap).  Emptying the top class lowers the bound by one.

:func:`recoloring_upper_bound` applies the swap repeatedly; the result
is still a proper colouring, hence still a valid clique upper bound
(Lemma 2), and never worse than the plain greedy bound.  The ablation
benchmark ``bench_ablation_bounds`` quantifies how much tighter it is
on dichromatic networks.
"""

from __future__ import annotations

from typing import Iterable

from .coloring import greedy_coloring
from .graph import UnsignedGraph

__all__ = ["recoloring_upper_bound", "recolor"]


def recolor(
    graph: UnsignedGraph,
    active: Iterable[int] | None = None,
) -> dict[int, int]:
    """Greedy colouring improved by 2-swap re-numbering.

    Returns a proper colouring using at most as many colours as
    :func:`repro.unsigned.coloring.greedy_coloring`.
    """
    colors = greedy_coloring(graph, active)
    if not colors:
        return colors
    vertex_set = set(colors)

    def classes() -> dict[int, set[int]]:
        by_color: dict[int, set[int]] = {}
        for v, c in colors.items():
            by_color.setdefault(c, set()).add(v)
        return by_color

    improved = True
    while improved:
        improved = False
        by_color = classes()
        top = max(by_color)
        if top == 0:
            break
        movable = True
        for v in list(by_color[top]):
            if _try_renumber(graph, colors, by_color, v, top,
                             vertex_set):
                continue
            movable = False
            break
        if movable and not by_color[top]:
            # Top class emptied entirely; loop to try the next one.
            improved = True
    return colors


def _try_renumber(
    graph: UnsignedGraph,
    colors: dict[int, int],
    by_color: dict[int, set[int]],
    v: int,
    top: int,
    vertex_set: set[int],
) -> bool:
    """Move ``v`` out of the top class via a 2-swap if possible."""
    neighbors = graph.neighbors(v) & vertex_set
    for c1 in range(top):
        conflicts = [u for u in by_color.get(c1, ())
                     if u in neighbors]
        if not conflicts:
            colors[v] = c1
            by_color[top].discard(v)
            by_color.setdefault(c1, set()).add(v)
            return True
        if len(conflicts) != 1:
            continue
        w = conflicts[0]
        w_neighbors = graph.neighbors(w) & vertex_set
        for c2 in range(top):
            if c2 == c1:
                continue
            if any(colors.get(x) == c2 for x in w_neighbors):
                continue
            # Swap: w -> c2, v -> c1.
            colors[w] = c2
            by_color[c1].discard(w)
            by_color.setdefault(c2, set()).add(w)
            colors[v] = c1
            by_color[top].discard(v)
            by_color[c1].add(v)
            return True
    return False


def recoloring_upper_bound(
    graph: UnsignedGraph,
    active: Iterable[int] | None = None,
) -> int:
    """Clique upper bound from the recoloured colouring."""
    colors = recolor(graph, active)
    if not colors:
        return 0
    return max(colors.values()) + 1
