"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.kernels import available_engines
from repro.kernels.npmask import HAVE_NUMPY
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph

#: Skip marker for tests that exercise the numpy kernel backend
#: directly.  numpy is an optional extra (``pip install repro[numpy]``)
#: and the engine registry reports it unavailable when absent, so the
#: differential matrices (which parametrize over
#: :data:`SOLVER_ENGINES`) degrade gracefully without it.
requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY,
    reason="numpy not installed (pip install repro[numpy])")

#: Every registered engine that is usable in this environment — the
#: axis the differential matrices sweep.  ``set`` and ``bitset`` are
#: always present; ``numpy`` joins when the import probe succeeds.
SOLVER_ENGINES: tuple[str, ...] = available_engines()

#: The available engines that support the parallel fan-out.
PARALLEL_ENGINES: tuple[str, ...] = tuple(
    e for e in SOLVER_ENGINES if e != "set")


def make_random_signed_graph(
    n: int,
    p_pos: float,
    p_neg: float,
    seed: int,
) -> SignedGraph:
    """Deterministic G(n, p) signed graph for tests."""
    rng = random.Random(seed)
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            roll = rng.random()
            if roll < p_pos:
                graph.add_edge(u, v, POSITIVE)
            elif roll < p_pos + p_neg:
                graph.add_edge(u, v, NEGATIVE)
    return graph


@st.composite
def signed_graphs(
    draw,
    max_vertices: int = 10,
    min_vertices: int = 1,
) -> SignedGraph:
    """Hypothesis strategy: small random signed graphs.

    Sized so the brute-force oracle stays fast; edge signs are drawn
    per pair with tunable densities.
    """
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    graph = SignedGraph(n)
    p_pos = draw(st.floats(min_value=0.0, max_value=0.6))
    p_neg = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    for u in range(n):
        for v in range(u + 1, n):
            roll = rng.random()
            if roll < p_pos:
                graph.add_edge(u, v, POSITIVE)
            elif roll < min(p_pos + p_neg, 1.0):
                graph.add_edge(u, v, NEGATIVE)
    return graph


@pytest.fixture
def toy_figure2() -> SignedGraph:
    """A Figure-2-style toy graph.

    Vertices 0..7 (the paper's v1..v8): {0, 1} and {2, 3} form a
    balanced 4-clique; {2, 3, 6, 7} vs {4, 5} form the maximum balanced
    clique for tau = 2 (size 6).
    """
    graph = SignedGraph(8)
    positive = [(0, 1), (2, 3), (4, 5), (6, 7), (2, 6), (3, 7), (2, 7),
                (3, 6)]
    negative = [(0, 2), (0, 3), (1, 2), (1, 3), (2, 4), (2, 5), (3, 4),
                (3, 5), (6, 4), (6, 5), (7, 4), (7, 5)]
    for u, v in positive:
        graph.add_edge(u, v, POSITIVE)
    for u, v in negative:
        graph.add_edge(u, v, NEGATIVE)
    return graph


@pytest.fixture
def balanced_six() -> SignedGraph:
    """A clean balanced 6-clique (3|3) plus two stray vertices."""
    graph = SignedGraph(8)
    left = [0, 1, 2]
    right = [3, 4, 5]
    for i, u in enumerate(left):
        for v in left[i + 1:]:
            graph.add_edge(u, v, POSITIVE)
    for i, u in enumerate(right):
        for v in right[i + 1:]:
            graph.add_edge(u, v, POSITIVE)
    for u in left:
        for v in right:
            graph.add_edge(u, v, NEGATIVE)
    graph.add_edge(6, 0, POSITIVE)
    graph.add_edge(7, 3, NEGATIVE)
    return graph


@pytest.fixture
def all_positive_clique() -> SignedGraph:
    """A 5-clique of purely positive edges (one side empty)."""
    graph = SignedGraph(5)
    for u in range(5):
        for v in range(u + 1, 5):
            graph.add_edge(u, v, POSITIVE)
    return graph
