"""Tests for the ablation switches of MBC* and MDC.

Every configuration must stay *exact* (the switches only change how
much is pruned), and the instrumentation should show the pruning rules
actually reduce work.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_maximum_balanced_clique
from repro.core.mbc_star import mbc_star
from repro.core.stats import SearchStats
from repro.datasets.registry import load
from repro.dichromatic.mdc import solve_mdc

from .conftest import signed_graphs
from .test_mdc_dcc import dichromatic_graphs, oracle_maximum

ORDERINGS = ["degeneracy", "degree", "id"]


class TestMBCStarAblations:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_orderings_exact_on_fixture(self, toy_figure2, ordering):
        assert mbc_star(toy_figure2, 2, ordering=ordering).size == 6

    def test_unknown_ordering_rejected(self, toy_figure2):
        with pytest.raises(ValueError):
            mbc_star(toy_figure2, 2, ordering="nope")

    @pytest.mark.parametrize("use_coloring", [True, False])
    @pytest.mark.parametrize("use_core", [True, False])
    def test_prune_toggles_exact_on_fixture(
            self, toy_figure2, use_coloring, use_core):
        clique = mbc_star(toy_figure2, 2, use_coloring=use_coloring,
                          use_core=use_core)
        assert clique.size == 6

    @given(signed_graphs(max_vertices=9),
           st.sampled_from(ORDERINGS),
           st.booleans(), st.booleans(),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=60, deadline=None)
    def test_all_configurations_exact(
            self, graph, ordering, use_coloring, use_core, tau):
        expected = brute_force_maximum_balanced_clique(graph, tau).size
        found = mbc_star(graph, tau, ordering=ordering,
                         use_coloring=use_coloring, use_core=use_core)
        assert found.size == expected

    def test_pruning_reduces_instances(self):
        """With both rules off, strictly more MDC instances launch on
        a realistic graph."""
        graph = load("epinions", scale=0.5)
        full = SearchStats()
        mbc_star(graph, 3, stats=full)
        stripped = SearchStats()
        mbc_star(graph, 3, stats=stripped,
                 use_coloring=False, use_core=False)
        assert stripped.instances >= full.instances
        assert stripped.nodes >= full.nodes


class TestMDCAblations:
    @given(dichromatic_graphs(),
           st.integers(min_value=0, max_value=2),
           st.integers(min_value=0, max_value=2),
           st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_all_configurations_exact(
            self, graph, tau_l, tau_r, use_coloring, use_core):
        expected = oracle_maximum(graph, tau_l, tau_r)
        found = solve_mdc(graph, tau_l, tau_r, must_exceed=0,
                          use_coloring=use_coloring, use_core=use_core)
        if found is None:
            assert expected == 0
        else:
            assert len(found) == expected
