"""Tests for repro.analysis — the AST invariant linter.

Three layers:

* framework unit tests (pragmas, module-name derivation, findings,
  reporters, CLI exit codes);
* one fixture triple per rule — a known-bad snippet the rule must
  fire on, the same snippet silenced with ``# repro: noqa RXXX``, and
  a clean snippet it must stay quiet on;
* the self-check: ``repro lint src/`` over this very repository must
  report nothing (the repo is its own largest fixture).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    RULES_BY_ID,
    CALLGRAPH_SCHEMA_VERSION,
    Finding,
    JSON_SCHEMA_VERSION,
    build_program,
    lint_paths,
    lint_source,
    lint_sources,
    parse_pragmas,
    render_json,
    render_text,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import (
    ModuleInfo,
    _module_name_for,
    iter_python_files,
    load_module,
)
from repro.analysis.program import call_passes_kwarg
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")
BENCHMARKS = str(REPO_ROOT / "benchmarks")


def rule_hits(source: str, module: str, rule_id: str) -> list[Finding]:
    """Findings of one rule on an in-memory snippet."""
    return [f for f in lint_source(source, module=module)
            if f.rule_id == rule_id]


# ---------------------------------------------------------------------------
# framework


class TestPragmas:
    def test_blanket(self):
        table = parse_pragmas("x = 1  # repro: noqa\ny = 2\n")
        assert table.is_suppressed(1, "R001")
        assert table.is_suppressed(1, "R999")
        assert not table.is_suppressed(2, "R001")

    def test_coded(self):
        table = parse_pragmas("x = set()  # repro: noqa R001,R005\n")
        assert table.is_suppressed(1, "R001")
        assert table.is_suppressed(1, "R005")
        assert not table.is_suppressed(1, "R002")

    def test_space_separated_codes(self):
        table = parse_pragmas("x = 1  # repro: noqa R001 R002\n")
        assert table.is_suppressed(1, "R001")
        assert table.is_suppressed(1, "R002")

    def test_unrelated_comment_is_not_a_pragma(self):
        table = parse_pragmas("x = 1  # repro: the solver\n")
        assert not table.is_suppressed(1, "R001")

    def test_line_one_pragma_applies_module_wide(self):
        table = parse_pragmas(
            "# fixture ships a lambda  # repro: noqa R014\n"
            "x = 1\ny = 2\n")
        assert table.is_suppressed(1, "R014")
        assert table.is_suppressed(3, "R014")
        assert not table.is_suppressed(3, "R012")
        assert table.file_level == frozenset({"R014"})

    def test_file_level_pragma_only_on_line_one(self):
        table = parse_pragmas(
            "x = 1\ny = 2  # repro: noqa R014\nz = 3\n")
        assert table.is_suppressed(2, "R014")
        assert not table.is_suppressed(3, "R014")
        assert table.file_level == frozenset()

    def test_line_one_blanket_stays_line_scoped(self):
        # Only the coded form escalates to file scope: a blanket
        # pragma silencing a whole file would be unauditable.
        table = parse_pragmas("# repro: noqa\nx = 1\n")
        assert table.is_suppressed(1, "R012")
        assert not table.is_suppressed(2, "R012")


class TestModuleNames:
    @pytest.mark.parametrize("path,expected,is_init", [
        ("src/repro/core/pf.py", "repro.core.pf", False),
        ("src/repro/__init__.py", "repro", True),
        ("src/repro/kernels/__init__.py", "repro.kernels", True),
        ("src/repro/cli.py", "repro.cli", False),
        ("tests/test_cli.py", None, False),
        ("benchmarks/bench_kernels.py", "benchmarks.bench_kernels",
         False),
        ("benchmarks/__init__.py", "benchmarks", True),
        ("examples/quickstart.py", None, False),
    ])
    def test_derivation(self, path, expected, is_init):
        module, init = _module_name_for(path)
        assert module == expected
        assert init == is_init

    def test_package_of_init_is_itself(self):
        info = ModuleInfo.from_source(
            "__all__ = []\n", module="repro.kernels",
            is_package_init=True)
        assert info.package == "repro.kernels"

    def test_package_of_module_is_parent(self):
        info = ModuleInfo.from_source(
            "__all__ = []\n", module="repro.kernels.bitset")
        assert info.package == "repro.kernels"


class TestFindings:
    def test_sort_order_is_reading_order(self):
        a = Finding("b.py", 1, 0, "R001", "x")
        b = Finding("a.py", 9, 0, "R002", "x")
        c = Finding("a.py", 2, 0, "R003", "x")
        assert sorted([a, b, c]) == [c, b, a]

    def test_severity_validated(self):
        with pytest.raises(ValueError):
            Finding("a.py", 1, 0, "R001", "x", severity="fatal")

    def test_render_is_clickable(self):
        finding = Finding("src/x.py", 12, 4, "R002", "msg")
        assert finding.render() == "src/x.py:12:5: R002 msg"

    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def f(:\n")
        findings = lint_paths([str(tmp_path)])
        assert len(findings) == 1
        assert findings[0].rule_id == "E999"


class TestReporters:
    def _findings(self):
        return [Finding("a.py", 3, 1, "R002", "iterate sorted")]

    def test_text_lists_findings_and_summary(self):
        text = render_text(self._findings())
        assert "a.py:3:2: R002 iterate sorted" in text
        assert "1 finding (R002 x1)" in text

    def test_text_clean_summary(self):
        assert "no findings in 4 files" in render_text(
            [], files_checked=4)

    def test_json_schema(self):
        document = json.loads(render_json(
            self._findings(), files_checked=7))
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["total"] == 1
        assert document["files_checked"] == 7
        assert document["counts"] == {"R002": 1}
        (entry,) = document["findings"]
        assert set(entry) == {
            "path", "line", "col", "rule", "message", "severity"}
        assert entry["rule"] == "R002"
        assert entry["severity"] == "error"

    def test_json_clean(self):
        document = json.loads(render_json([], files_checked=68))
        assert document["findings"] == []
        assert document["total"] == 0


class TestRegistry:
    def test_fourteen_rules_with_unique_ids(self):
        ids = [rule.rule_id for rule in ALL_RULES]
        assert len(ids) == len(set(ids)) == 14
        assert ids == sorted(ids)

    def test_every_rule_documented(self):
        catalogue = (REPO_ROOT / "docs" / "STATIC_ANALYSIS.md") \
            .read_text()
        for rule in ALL_RULES:
            assert rule.rule_id in catalogue, \
                f"{rule.rule_id} missing from docs/STATIC_ANALYSIS.md"

    def test_rules_by_id(self):
        assert RULES_BY_ID["R001"].rule_id == "R001"


# ---------------------------------------------------------------------------
# rule fixtures: bad fires / pragma silences / clean stays quiet


R001_BAD = '''\
"""Fixture."""
__all__ = ["collect"]


def collect(adj: list[int], active: int) -> int:
    seen = set()
    seen.add(active)
    return len({v for v in adj})
'''

R001_CLEAN = '''\
"""Fixture."""
__all__ = ["collect"]


def collect(adj: list[int], active: int) -> int:
    mask = 0
    for neighbors in adj:
        mask |= neighbors & active
    return mask.bit_count()
'''

R002_BAD = '''\
"""Fixture."""
__all__ = ["pairs"]


def pairs(close: dict[int, int], far: dict[int, int]) -> list[int]:
    out = [k for k in set(close) | set(far)]
    for key in far.keys():
        out.append(key)
    return out
'''

R002_CLEAN = '''\
"""Fixture."""
__all__ = ["pairs"]


def pairs(close: dict[int, int], far: dict[int, int]) -> list[int]:
    out = [k for k in sorted(set(close) | set(far))]
    for key in far:
        out.append(key)
    smallest = min(set(close))  # aggregation is order-insensitive
    return out + [smallest]
'''

R003_BAD = '''\
"""Fixture."""
__all__ = ["CACHE", "publish", "dispatch", "rebind"]

CACHE = load_graph()


def publish(incumbent: object, size: int) -> None:
    incumbent.value = size


def dispatch(pool: object, items: list[int]) -> list[int]:
    return pool.map(lambda x: x + 1, items)


def rebind(ctx: object) -> None:
    global CACHE
    CACHE = ctx
'''

R003_CLEAN = '''\
"""Fixture."""
__all__ = ["LIMIT", "publish", "dispatch", "install_context"]

LIMIT = 64
_CTX: object | None = None


def publish(incumbent: object, size: int) -> None:
    incumbent.improve(size)


def dispatch(pool: object, items: list[int]) -> list[int]:
    return pool.map(square, items)


def square(x: int) -> int:
    return x * x


def install_context(ctx: object) -> None:
    global _CTX
    _CTX = ctx
'''

R004_BAD = '''\
"""Fixture."""
__all__ = ["solve"]


def solve(graph: SignedGraph, tau: int) -> int:
    graph.remove_edge(0, 1)
    graph.dirty = True
    return tau
'''

R004_CLEAN = '''\
"""Fixture."""
__all__ = ["solve", "shadowed"]


def solve(graph: SignedGraph, tau: int) -> int:
    reduced = graph.copy()
    reduced.remove_edge(0, 1)
    return tau


def shadowed(graph: SignedGraph) -> int:
    graph = graph.copy()
    graph.remove_edge(0, 1)  # rebinding severs the argument alias
    return graph.num_edges
'''

R005_MISSING = '''\
"""Fixture."""


def helper() -> int:
    return 1
'''

R005_STALE = '''\
"""Fixture."""
__all__ = ["helper", "vanished", "helper"]


def helper() -> int:
    return 1
'''

R005_DYNAMIC = '''\
"""Fixture."""
__all__ = [name for name in ("a", "b")]
'''

R005_CLEAN = '''\
"""Fixture."""
from collections import Counter

__all__ = ["helper", "Counter", "LIMIT"]

LIMIT = 3


def helper() -> int:
    return 1
'''

R006_BAD = '''\
"""Fixture."""
from ..core.gmbc import gmbc_star

__all__ = ["up"]


def up() -> object:
    return gmbc_star
'''

R006_GUARDED = '''\
"""Fixture."""
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..core.stats import SearchStats

__all__ = ["annotated"]


def annotated(stats: "SearchStats | None") -> None:
    return None
'''

R007_BAD = '''\
"""Fixture."""
__all__ = ["f", "Thing"]


def f(x, y: int):
    return x + y


class Thing:
    def method(self, value) -> None:
        self.value = value
'''

R007_CLEAN = '''\
"""Fixture."""
__all__ = ["f", "Thing"]


def f(x: int, y: int) -> int:
    def tiny_local_helper(z):  # nested defs are exempt
        return z

    return tiny_local_helper(x) + y


class Thing:
    def method(self, value: int) -> None:
        self.value = value
'''


R008_BAD = '''\
"""Fixture."""
import time

__all__ = ["solve"]


def solve(n: int) -> float:
    start = time.perf_counter()
    total = 0
    for i in range(n):
        total += i
    return time.perf_counter() - start
'''

R008_CLEAN = '''\
"""Fixture."""
from ..obs import current_tracer

__all__ = ["solve"]


def solve(n: int) -> int:
    total = 0
    with current_tracer().span("solve", n=n) as span:
        for i in range(n):
            span.count("nodes")
            total += i
    return total
'''


R009_BAD = '''\
"""Fixture."""
__all__ = ["sweep"]


def sweep(pool: object, chunks: "list[list[int]]") -> "list[int]":
    return list(pool.imap_unordered(len, chunks))
'''

R009_CLEAN = '''\
"""Fixture."""
from ..parallel.dispatch import ResilientDispatcher

__all__ = ["sweep"]


def sweep(dispatcher: ResilientDispatcher, runner: object,
          chunks: "list[list[int]]") -> "list[int]":
    return list(dispatcher.run(runner, chunks))
'''


R010_BAD = '''\
"""Fixture."""
__all__ = ["degrees"]


def degrees(mat: "Matrix", active: "Row") -> "list[int]":
    out: "list[int]" = []
    for row in mat:
        out.append(int((row & active).sum()))
    return out
'''

R010_CLEAN = '''\
"""Fixture."""
import numpy as np

__all__ = ["degrees"]


def degrees(mat: "Matrix", active: "Row") -> "IntArray":
    return np.bitwise_count(mat & active).sum(axis=1)
'''


R011_BAD = '''\
"""Fixture."""
__all__ = ["DynamicSolver"]


class DynamicSolver:
    def resync(self, u: int, v: int) -> None:
        self._graph.remove_edge(u, v)
'''

R011_CLEAN = '''\
"""Fixture."""
__all__ = ["DynamicSolver"]


class DynamicSolver:
    def add_edge(self, u: int, v: int, sign: int) -> bool:
        self._graph.add_edge(u, v, sign)
        return True
'''


R012_BAD = '''\
"""Fixture."""
__all__ = ["outer"]


def _inner(n: int, budget: "Budget | None" = None) -> int:
    return n


def outer(n: int, budget: "Budget | None" = None) -> int:
    return _inner(n)
'''

R012_CLEAN = '''\
"""Fixture."""
__all__ = ["outer"]


def _inner(n: int, budget: "Budget | None" = None) -> int:
    return n


def outer(n: int, budget: "Budget | None" = None) -> int:
    return _inner(n, budget)
'''

R013_BAD = '''\
"""Fixture."""
from ..resilience.budget import BudgetExceeded

__all__ = ["guarded"]


def guarded(n: int) -> int:
    try:
        return n
    except BudgetExceeded:
        return 0
'''

R013_CLEAN = '''\
"""Fixture."""
__all__ = ["guarded"]


def guarded(n: int) -> int:
    try:
        return n
    except ValueError:
        raise
'''

R014_BAD = '''\
"""Fixture."""
from .dispatch import ResilientDispatcher

__all__ = ["sweep"]


def sweep(dispatcher: ResilientDispatcher,
          chunks: "list[list[int]]") -> "list[int]":
    return list(dispatcher.run(lambda c: c, chunks))
'''

R014_CLEAN = '''\
"""Fixture."""
from .dispatch import ResilientDispatcher

__all__ = ["sweep"]


def sweep(dispatcher: ResilientDispatcher, runner: object,
          chunks: "list[list[int]]") -> "list[int]":
    return list(dispatcher.run(runner, chunks))
'''


def _with_pragma(source: str, line_fragment: str, rule_id: str) -> str:
    """Append a noqa pragma to the first line containing the fragment."""
    lines = source.splitlines()
    for i, text in enumerate(lines):
        if line_fragment in text:
            lines[i] = f"{text}  # repro: noqa {rule_id}"
            return "\n".join(lines) + "\n"
    raise AssertionError(f"{line_fragment!r} not in fixture")


RULE_FIXTURES = [
    # (rule, module the snippet pretends to be, bad, a bad line, clean)
    ("R001", "repro.kernels.fixture", R001_BAD, "seen = set()",
     R001_CLEAN),
    ("R002", "repro.core.fixture", R002_BAD,
     "out = [k for k in set(close) | set(far)]", R002_CLEAN),
    ("R003", "repro.parallel.fixture", R003_BAD,
     "incumbent.value = size", R003_CLEAN),
    ("R004", "repro.core.fixture", R004_BAD,
     "graph.remove_edge(0, 1)", R004_CLEAN),
    ("R005", "repro.signed.fixture", R005_STALE,
     '__all__ = ["helper", "vanished", "helper"]', R005_CLEAN),
    ("R006", "repro.kernels.fixture", R006_BAD,
     "from ..core.gmbc import gmbc_star", R006_GUARDED),
    ("R007", "repro.metrics.fixture", R007_BAD, "def f(x, y: int):",
     R007_CLEAN),
    ("R008", "repro.core.fixture", R008_BAD,
     "start = time.perf_counter()", R008_CLEAN),
    ("R009", "repro.core.fixture", R009_BAD,
     "return list(pool.imap_unordered(len, chunks))", R009_CLEAN),
    ("R010", "repro.kernels.npmask", R010_BAD,
     "for row in mat:", R010_CLEAN),
    ("R011", "repro.dynamic.fixture", R011_BAD,
     "self._graph.remove_edge(u, v)", R011_CLEAN),
    ("R012", "repro.core.fixture", R012_BAD,
     "return _inner(n)", R012_CLEAN),
    ("R013", "repro.dichromatic.fixture", R013_BAD,
     "except BudgetExceeded:", R013_CLEAN),
    ("R014", "repro.parallel.fixture", R014_BAD,
     "return list(dispatcher.run(lambda c: c, chunks))",
     R014_CLEAN),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "rule_id,module,bad,bad_line,clean", RULE_FIXTURES,
        ids=[f[0] for f in RULE_FIXTURES])
    def test_bad_fires(self, rule_id, module, bad, bad_line, clean):
        assert rule_hits(bad, module, rule_id), \
            f"{rule_id} did not fire on its known-bad fixture"

    @pytest.mark.parametrize(
        "rule_id,module,bad,bad_line,clean", RULE_FIXTURES,
        ids=[f[0] for f in RULE_FIXTURES])
    def test_pragma_silences_the_line(self, rule_id, module, bad,
                                      bad_line, clean):
        before = rule_hits(bad, module, rule_id)
        silenced = _with_pragma(bad, bad_line, rule_id)
        after = rule_hits(silenced, module, rule_id)
        assert len(after) < len(before)
        pragma_line = next(
            i for i, text in enumerate(silenced.splitlines(), 1)
            if "repro: noqa" in text)
        assert all(f.line != pragma_line for f in after)

    @pytest.mark.parametrize(
        "rule_id,module,bad,bad_line,clean", RULE_FIXTURES,
        ids=[f[0] for f in RULE_FIXTURES])
    def test_clean_is_quiet_across_all_rules(self, rule_id, module,
                                             bad, bad_line, clean):
        assert lint_source(clean, module=module) == []


class TestRuleScoping:
    def test_r001_skips_set_engine_modules(self):
        # The same set()-heavy code is fine outside the bitset scopes.
        assert rule_hits(R001_BAD, "repro.core.fixture", "R001") == []

    def test_r009_exempts_the_dispatch_module(self):
        # The resilient dispatcher *implements* the discipline, so the
        # raw pool calls are legal exactly there.
        assert rule_hits(
            R009_BAD, "repro.parallel.dispatch", "R009") == []

    def test_r001_fires_in_bitset_class_of_mixed_module(self):
        source = (
            '__all__ = ["X"]\n'
            "class _BitsetState:\n"
            "    def search(self, clique: list[int]) -> None:\n"
            "        self.best = set(clique)\n")
        assert rule_hits(source, "repro.dichromatic.mdc", "R001")

    def test_r001_quiet_in_dispatch_wrapper_of_mixed_module(self):
        source = (
            '__all__ = ["solve"]\n'
            "def solve(active: set[int] | None) -> set[int]:\n"
            "    return set(active or ())\n")
        assert rule_hits(source, "repro.dichromatic.mdc", "R001") == []

    def test_r010_only_polices_the_npmask_module(self):
        # The same row loop is fine anywhere else — only the numpy
        # backend promises vectorisation.
        assert rule_hits(
            R010_BAD, "repro.kernels.fixture", "R010") == []
        assert rule_hits(R010_BAD, "repro.core.fixture", "R010") == []

    def test_r010_flags_flat_and_nditer_walks(self):
        source = (
            '__all__ = ["walk"]\n'
            "import numpy as np\n"
            'def walk(mat: "Matrix") -> int:\n'
            "    total = 0\n"
            "    for word in mat.flat:\n"
            "        total += int(word)\n"
            "    for word in np.nditer(mat):\n"
            "        total += int(word)\n"
            "    return total\n")
        hits = rule_hits(source, "repro.kernels.npmask", "R010")
        assert len(hits) >= 2

    def test_r010_allows_scalar_and_list_loops(self):
        # Sequential-by-nature loops over Python lists or index
        # materialisations stay legal; only matrix-row walks fire.
        source = (
            '__all__ = ["pack"]\n'
            'def pack(masks: "Sequence[int]", order: "IntArray") '
            '-> int:\n'
            "    total = 0\n"
            "    for mask in masks:\n"
            "        total += mask\n"
            "    for v in order.tolist():\n"
            "        total += v\n"
            "    return total\n")
        assert rule_hits(
            source, "repro.kernels.npmask", "R010") == []

    def test_r002_out_of_scope_package_is_quiet(self):
        assert rule_hits(R002_BAD, "repro.unsigned.fixture",
                         "R002") == []

    def test_r005_missing_and_dynamic_all(self):
        assert rule_hits(R005_MISSING, "repro.signed.fixture", "R005")
        assert rule_hits(R005_DYNAMIC, "repro.signed.fixture", "R005")

    def test_r005_exempts_entry_points(self):
        assert rule_hits(R005_MISSING, "repro.analysis.__main__",
                         "R005") == []

    def test_r006_type_checking_guard_is_exempt(self):
        assert rule_hits(R006_GUARDED, "repro.kernels.fixture",
                         "R006") == []

    def test_r006_parallel_may_import_core_leaves_only(self):
        leaf = ('__all__ = ["S"]\n'
                "from ..core.stats import SearchStats as S\n")
        assert rule_hits(leaf, "repro.parallel.fixture", "R006") == []
        driver = ('__all__ = ["m"]\n'
                  "from ..core.mbc_star import mbc_star as m\n")
        assert rule_hits(driver, "repro.parallel.fixture", "R006")

    def test_r006_analysis_must_stay_stdlib_only(self):
        source = ('__all__ = ["g"]\n'
                  "from ..signed.graph import SignedGraph as g\n")
        assert rule_hits(source, "repro.analysis.fixture", "R006")

    def test_r008_composition_root_may_read_clocks(self):
        # repro.cli reports wall time to humans; R008 scopes to the
        # solver packages only.
        assert rule_hits(R008_BAD, "repro.cli", "R008") == []

    def test_r008_obs_implements_the_clocks(self):
        assert rule_hits(R008_BAD, "repro.obs.tracer", "R008") == []

    def test_r008_clock_alias_import_fires(self):
        source = ('__all__ = ["f"]\n'
                  "from time import perf_counter as clock\n"
                  "def f() -> float:\n"
                  "    return clock()\n")
        hits = rule_hits(source, "repro.dichromatic.fixture", "R008")
        assert len(hits) == 2  # the import and the call

    def test_r008_non_clock_time_import_is_legal(self):
        source = ('__all__ = ["f"]\n'
                  "from time import sleep\n"
                  "def f() -> None:\n"
                  "    sleep(0.0)\n")
        assert rule_hits(source, "repro.core.fixture", "R008") == []

    def test_r008_direct_tracer_construction_fires(self):
        source = ('__all__ = ["f"]\n'
                  "from ..obs import Tracer\n"
                  "def f() -> Tracer:\n"
                  "    return Tracer()\n")
        assert rule_hits(source, "repro.parallel.fixture", "R008")

    def test_r008_factory_construction_is_legal(self):
        source = ('__all__ = ["f"]\n'
                  "from ..obs import Tracer, get_tracer\n"
                  "def f() -> Tracer:\n"
                  "    return get_tracer(True)\n")
        assert rule_hits(source, "repro.parallel.fixture", "R008") == []

    def test_non_repro_files_are_skipped(self):
        # No module name -> no rules apply (e.g. tests, scripts).
        assert lint_source("x = set()\n", module=None) == []


# ---------------------------------------------------------------------------
# the whole-program layer: call-graph builder units


def _program_of(sources: dict[str, str]):
    modules = []
    for name, source in sources.items():
        is_init = name.endswith("/__init__")
        module = name[:-len("/__init__")] if is_init else name
        modules.append(ModuleInfo.from_source(
            source, path=f"<memory:{module}>", module=module,
            is_package_init=is_init))
    return build_program(modules)


class TestProgramBuilder:
    def test_direct_call_and_from_import_alias(self):
        program = _program_of({
            "repro.core.a": "def f(n: int) -> int:\n    return n\n",
            "repro.core.b": (
                "from .a import f as renamed\n"
                "def g(n: int) -> int:\n    return renamed(n)\n"),
        })
        edges = {(e.caller, e.callee) for e in program.edges}
        assert ("repro.core.b:g", "repro.core.a:f") in edges

    def test_reexport_chain_through_package_init(self):
        program = _program_of({
            "repro.dichromatic.mdc":
                "def solve_mdc(n: int) -> int:\n    return n\n",
            "repro.dichromatic/__init__":
                "from .mdc import solve_mdc\n",
            "repro.core.driver": (
                "from ..dichromatic import solve_mdc\n"
                "def drive(n: int) -> int:\n"
                "    return solve_mdc(n)\n"),
        })
        edges = {(e.caller, e.callee) for e in program.edges}
        assert ("repro.core.driver:drive",
                "repro.dichromatic.mdc:solve_mdc") in edges

    def test_conditional_dispatch_yields_both_candidates(self):
        program = _program_of({
            "repro.parallel.worker": (
                "def _np(n: int) -> int:\n    return n\n"
                "def _bits(n: int) -> int:\n    return n\n"
                "def run(n: int, engine: str) -> int:\n"
                "    solver = _np if engine == 'numpy' else _bits\n"
                "    return solver(n)\n"),
        })
        edges = {(e.caller, e.callee, e.kind)
                 for e in program.edges}
        assert ("repro.parallel.worker:run",
                "repro.parallel.worker:_np", "dispatch") in edges
        assert ("repro.parallel.worker:run",
                "repro.parallel.worker:_bits", "dispatch") in edges

    def test_registry_table_edges(self):
        program = _program_of({
            "repro.cli": (
                "def _cmd_a() -> int:\n    return 0\n"
                "def _cmd_b() -> int:\n    return 1\n"
                "_COMMANDS = {'a': _cmd_a, 'b': _cmd_b}\n"),
        })
        edges = {(e.caller, e.callee, e.kind)
                 for e in program.edges}
        assert ("repro.cli:<module>", "repro.cli:_cmd_a",
                "table") in edges
        assert ("repro.cli:<module>", "repro.cli:_cmd_b",
                "table") in edges

    def test_method_resolution_through_local_construction(self):
        program = _program_of({
            "repro.parallel.dispatch": (
                "class ResilientDispatcher:\n"
                "    def run(self, runner: object,\n"
                "            payloads: object) -> list:\n"
                "        return []\n"),
            "repro.parallel.engine": (
                "from .dispatch import ResilientDispatcher\n"
                "def fanout(chunks: list) -> list:\n"
                "    d = ResilientDispatcher()\n"
                "    return d.run(fanout, chunks)\n"),
        })
        edges = {(e.caller, e.callee) for e in program.edges}
        assert (
            "repro.parallel.engine:fanout",
            "repro.parallel.dispatch:ResilientDispatcher.run",
        ) in edges

    def test_worker_entry_points_and_reachability(self):
        program = _program_of({
            "repro.parallel.worker": (
                "def _ego(n: int) -> int:\n    return n\n"
                "def run_mdc_chunk(chunk: list) -> int:\n"
                "    return _ego(len(chunk))\n"),
        })
        entries = [fn.key for fn in program.worker_entry_points()]
        assert entries == ["repro.parallel.worker:run_mdc_chunk"]
        reach = program.reachable_from(entries)
        assert "repro.parallel.worker:_ego" in reach

    def test_classmethod_positional_coverage(self):
        # capture(best, budget) passes budget positionally even
        # though ``cls`` occupies slot zero of the def.
        program = _program_of({
            "repro.core.result": (
                "class SolveResult:\n"
                "    @classmethod\n"
                "    def capture(cls, clique: object,\n"
                "                budget: object) -> object:\n"
                "        return cls\n"),
        })
        fn = program.function(
            "repro.core.result:SolveResult.capture")
        assert fn is not None and fn.is_classmethod
        assert fn.positional_index("budget", bound=False) == 1

    def test_call_passes_kwarg_forms(self):
        import ast as ast_mod
        program = _program_of({
            "repro.core.a": (
                "def f(n: int, budget: object = None) -> int:\n"
                "    return n\n"),
        })
        fn = program.function("repro.core.a:f")

        def call(src):
            return ast_mod.parse(src, mode="eval").body

        assert call_passes_kwarg(
            call("f(1, budget=b)"), fn, "budget", False)
        assert call_passes_kwarg(
            call("f(1, b)"), fn, "budget", False)
        assert call_passes_kwarg(
            call("f(**kw)"), fn, "budget", False)
        assert not call_passes_kwarg(
            call("f(1)"), fn, "budget", False)

    def test_real_tree_graph_is_nontrivially_connected(self):
        modules = [
            m for m in (load_module(p)
                        for p in iter_python_files([SRC]))
            if isinstance(m, ModuleInfo)]
        program = build_program(modules)
        assert len(program.functions) > 300
        assert len(program.edges) > 500
        kinds = {e.kind for e in program.edges}
        assert kinds == {"call", "dispatch", "table"}


class TestProgramRulesCrossModule:
    def test_r012_fires_across_modules(self):
        findings = lint_sources({
            "repro.dichromatic.mdc": (
                '"""Fixture."""\n'
                '__all__ = ["solve_mdc"]\n'
                "def solve_mdc(n: int,\n"
                '              budget: "Budget | None" = None'
                ") -> int:\n"
                "    return n\n"),
            "repro.core.driver": (
                '"""Fixture."""\n'
                '__all__ = ["drive"]\n'
                "from ..dichromatic.mdc import solve_mdc\n"
                "def drive(n: int,\n"
                '          budget: "Budget | None" = None) -> int:\n'
                "    return solve_mdc(n)\n"),
        })
        r12 = [f for f in findings if f.rule_id == "R012"]
        assert len(r12) == 1
        assert "driver" in r12[0].path

    def test_r012_respects_tracer_alias(self):
        findings = lint_sources({
            "repro.core.mbc": (
                '"""Fixture."""\n'
                '__all__ = ["mbc"]\n'
                "def _pipeline(n: int,\n"
                '              tracer: "Tracer | None" = None'
                ") -> int:\n"
                "    return n\n"
                "def mbc(n: int,\n"
                '        trace: "Tracer | None" = None) -> int:\n'
                "    return _pipeline(n, trace)\n"),
        })
        assert [f for f in findings if f.rule_id == "R012"] == []

    def test_r013_allows_incumbent_owning_modules(self):
        source = (
            '"""Fixture."""\n'
            '__all__ = ["guarded"]\n'
            "def guarded(n: int) -> int:\n"
            "    try:\n"
            "        return n\n"
            "    except BudgetExceeded:\n"
            "        return 0\n")
        assert rule_hits(source, "repro.core.mbc_star", "R013") == []
        assert rule_hits(source, "repro.resilience.budget",
                         "R013") == []
        assert rule_hits(source, "repro.dichromatic.mdc", "R013")

    def test_r013_broad_handler_that_records_is_legal(self):
        source = (
            '"""Fixture."""\n'
            '__all__ = ["run_fix_chunk"]\n'
            "def run_fix_chunk(chunk: list,\n"
            "                  envelope: object) -> int:\n"
            "    try:\n"
            "        return len(chunk)\n"
            "    except Exception as exc:\n"
            "        envelope.record_failure(exc)\n"
            "        return 0\n")
        assert rule_hits(source, "repro.parallel.fixture",
                         "R013") == []

    def test_r013_broad_handler_outside_worker_paths_is_legal(self):
        source = (
            '"""Fixture."""\n'
            '__all__ = ["load"]\n'
            "def load(path: str) -> str:\n"
            "    try:\n"
            "        return path\n"
            "    except Exception:\n"
            "        return ''\n")
        assert rule_hits(source, "repro.datasets.fixture",
                         "R013") == []

    def test_r014_parent_side_on_recover_lambda_is_legal(self):
        source = (
            '"""Fixture."""\n'
            "from .dispatch import ResilientDispatcher\n"
            '__all__ = ["sweep"]\n'
            "def sweep(dispatcher: ResilientDispatcher,\n"
            "          runner: object, chunks: list,\n"
            "          incumbent: object) -> list:\n"
            "    return list(dispatcher.run(\n"
            "        runner, chunks,\n"
            "        on_recover=lambda: incumbent.reset()))\n")
        assert rule_hits(source, "repro.parallel.fixture",
                         "R014") == []

    def test_r014_nested_def_payload_fires(self):
        source = (
            '"""Fixture."""\n'
            "from .dispatch import ResilientDispatcher\n"
            '__all__ = ["sweep"]\n'
            "def sweep(dispatcher: ResilientDispatcher,\n"
            "          runner: object) -> list:\n"
            "    def _make(i: int) -> int:\n"
            "        return i\n"
            "    return list(dispatcher.run(runner, [_make]))\n")
        hits = rule_hits(source, "repro.parallel.fixture", "R014")
        assert hits and "_make" in hits[0].message

    def test_r014_file_level_pragma_silences_fixture_module(self):
        silenced = (
            "# chaos fixture ships a lambda on purpose  "
            "# repro: noqa R014\n") + R014_BAD
        assert rule_hits(silenced, "repro.parallel.fixture",
                         "R014") == []


# ---------------------------------------------------------------------------
# the repository is its own fixture


class TestSelfCheck:
    def test_repo_is_lint_clean(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_benchmarks_are_lint_clean_under_all_rules(self):
        findings = lint_paths([SRC, BENCHMARKS])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_iter_python_files_sees_the_stack(self):
        files = iter_python_files([SRC])
        assert len(files) > 60
        assert all(f.endswith(".py") for f in files)

    def test_every_pragma_in_tree_names_its_rules(self):
        # Blanket pragmas silence everything; the repo only allows
        # rule-scoped ones so each exception stays auditable.
        for path in iter_python_files([SRC]):
            source = Path(path).read_text()
            table = parse_pragmas(source)
            for line in sorted(table.lines):
                text = source.splitlines()[line - 1]
                assert "noqa R" in text, \
                    f"{path}:{line}: blanket pragma (name the rules)"


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_module_cli_clean_exit(self, capsys):
        assert lint_main([SRC]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_module_cli_findings_exit(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "fixture.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(R002_BAD)
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R002" in out

    def test_module_cli_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "fixture.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(R004_BAD)
        # Only R002 requested; the R004 finding must not fail the run.
        assert lint_main(["--rule", "R002", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_module_cli_unknown_rule_usage_error(self, capsys):
        assert lint_main(["--rule", "R999", SRC]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_module_cli_missing_path_usage_error(self, capsys):
        assert lint_main(["definitely/not/a/path"]) == 2
        capsys.readouterr()

    def test_module_cli_json(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "fixture.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(R002_BAD)
        assert lint_main(["--json", str(tmp_path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["counts"].get("R002")

    def test_repro_cli_lint_subcommand(self, capsys):
        assert repro_main(["lint", SRC]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_repro_cli_lint_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out

    def test_repro_cli_lint_usage_error(self, capsys):
        assert repro_main(["lint", "--rule", "R999", SRC]) == 2
        capsys.readouterr()


class TestCallgraphCli:
    def test_json_export_schema(self, capsys):
        assert repro_main(["callgraph", SRC]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == CALLGRAPH_SCHEMA_VERSION
        assert document["root_paths"] == [SRC]
        assert set(document["counts"]) == {
            "modules", "functions", "edges"}
        assert document["counts"]["edges"] > 500
        (node,) = document["nodes"][:1]
        assert set(node) == {
            "id", "module", "qualname", "path", "line", "params"}
        (edge,) = document["edges"][:1]
        assert set(edge) == {"caller", "callee", "path", "line",
                             "kind"}

    def test_dot_export(self, capsys):
        assert repro_main(
            ["callgraph", SRC, "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph callgraph {")
        assert "->" in out

    def test_missing_path_usage_error(self, capsys):
        assert repro_main(
            ["callgraph", "definitely/not/a/path"]) == 2
        capsys.readouterr()

    def test_syntax_error_is_skipped_not_fatal(self, tmp_path,
                                               capsys):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def f(:\n")
        assert repro_main(["callgraph", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "skipping unparsable" in captured.err
