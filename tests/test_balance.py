"""Tests for structural-balance checking and side splitting."""

import pytest
from hypothesis import given, settings

from repro.core.balance import is_balanced_clique, is_clique, split_sides
from repro.core.bruteforce import enumerate_balanced_cliques
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph

from .conftest import signed_graphs


class TestIsClique:
    def test_clique_any_signs(self, toy_figure2):
        assert is_clique(toy_figure2, [0, 1, 2, 3])

    def test_missing_edge(self, toy_figure2):
        assert not is_clique(toy_figure2, [0, 4])

    def test_empty_and_singleton(self, toy_figure2):
        assert is_clique(toy_figure2, [])
        assert is_clique(toy_figure2, [5])


class TestSplitSides:
    def test_balanced_four(self, toy_figure2):
        sides = split_sides(toy_figure2, [0, 1, 2, 3])
        assert sides is not None
        left, right = sides
        assert {frozenset(left), frozenset(right)} == {
            frozenset({0, 1}), frozenset({2, 3})}

    def test_all_positive_is_one_sided(self, all_positive_clique):
        sides = split_sides(all_positive_clique, range(5))
        assert sides is not None
        left, right = sides
        assert {len(left), len(right)} == {5, 0}

    def test_empty_set(self, toy_figure2):
        assert split_sides(toy_figure2, []) == (set(), set())

    def test_singleton(self, toy_figure2):
        sides = split_sides(toy_figure2, [4])
        assert sides == ({4}, set())

    def test_non_clique_rejected(self, toy_figure2):
        assert split_sides(toy_figure2, [0, 4]) is None

    def test_unbalanced_triangle_rejected(self):
        # Two positive edges and one negative edge: v0-v1 +, v1-v2 +,
        # v0-v2 - cannot be two-sided.
        graph = SignedGraph.from_edges(
            3, positive_edges=[(0, 1), (1, 2)], negative_edges=[(0, 2)])
        assert split_sides(graph, [0, 1, 2]) is None

    def test_all_negative_triangle_rejected(self):
        graph = SignedGraph.from_edges(
            3, negative_edges=[(0, 1), (1, 2), (0, 2)])
        assert split_sides(graph, [0, 1, 2]) is None

    def test_negative_pair_is_balanced(self):
        graph = SignedGraph.from_edges(2, negative_edges=[(0, 1)])
        sides = split_sides(graph, [0, 1])
        assert sides is not None
        assert {len(s) for s in sides} == {1}

    def test_deterministic_side_order(self, toy_figure2):
        left, right = split_sides(toy_figure2, [0, 1, 2, 3])
        assert min(left) < min(right)

    def test_sides_partition_input(self, toy_figure2):
        left, right = split_sides(toy_figure2, [2, 3, 4, 5, 6, 7])
        assert left | right == {2, 3, 4, 5, 6, 7}
        assert not (left & right)


class TestIsBalancedClique:
    def test_tau_zero(self, all_positive_clique):
        assert is_balanced_clique(all_positive_clique, range(5), tau=0)

    def test_tau_one_fails_one_sided(self, all_positive_clique):
        assert not is_balanced_clique(
            all_positive_clique, range(5), tau=1)

    def test_figure2_tau2(self, toy_figure2):
        assert is_balanced_clique(
            toy_figure2, [2, 3, 4, 5, 6, 7], tau=2)

    def test_figure2_tau3_fails(self, toy_figure2):
        assert not is_balanced_clique(
            toy_figure2, [2, 3, 4, 5, 6, 7], tau=3)

    def test_non_clique(self, toy_figure2):
        assert not is_balanced_clique(toy_figure2, [0, 5])


class TestAgainstBruteForce:
    @given(signed_graphs(max_vertices=8))
    @settings(max_examples=40, deadline=None)
    def test_split_agrees_with_enumeration(self, graph):
        """Every clique reported balanced by the oracle splits, and
        the split sides reproduce the clique."""
        for clique in enumerate_balanced_cliques(graph):
            sides = split_sides(graph, clique.vertices)
            assert sides is not None
            left, right = sides
            assert left | right == set(clique.vertices)

    @given(signed_graphs(max_vertices=8))
    @settings(max_examples=40, deadline=None)
    def test_split_validates_signs(self, graph):
        """Whenever split_sides succeeds, the sign pattern is balanced:
        positive within sides, negative across."""
        import itertools

        vertices = list(graph.vertices())
        for size in (2, 3):
            for combo in itertools.combinations(vertices, size):
                sides = split_sides(graph, combo)
                if sides is None:
                    continue
                left, right = sides
                for u, v in itertools.combinations(combo, 2):
                    sign = graph.sign(u, v)
                    assert sign is not None
                    same = (u in left) == (v in left)
                    assert sign == (POSITIVE if same else NEGATIVE)
