"""Structural tests for the benchmark harness.

Guards the (d) deliverable: every table/figure module exists, imports,
exposes a runnable ``main``, and the shared helpers behave.
"""

import importlib
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"

EXPECTED_MODULES = [
    "bench_table1_stats",
    "bench_fig5_polarity",
    "bench_table23_casestudies",
    "bench_fig6_runtime",
    "bench_fig7_vary_tau",
    "bench_fig8_mdc_transform",
    "bench_table4_running_stats",
    "bench_fig9_pf_runtime",
    "bench_fig10_scalability",
    "bench_fig11_memory",
    "bench_fig12_pf_scalability",
    "bench_table5_gmbc_profile",
    "bench_fig13_gmbc_runtime",
    "bench_ablation_orderings",
    "bench_ablation_pruning",
    "bench_ablation_bounds",
    "bench_kernels",
]


@pytest.fixture(scope="module")
def bench_package():
    sys.path.insert(0, str(BENCH_DIR.parent))
    yield
    sys.path.remove(str(BENCH_DIR.parent))


class TestCoverageOfPaperExperiments:
    def test_all_modules_exist(self):
        names = {p.stem for p in BENCH_DIR.glob("bench_*.py")}
        missing = set(EXPECTED_MODULES) - names
        assert not missing, f"missing benchmark modules: {missing}"

    @pytest.mark.parametrize("module", EXPECTED_MODULES)
    def test_module_importable_with_main(self, bench_package, module):
        imported = importlib.import_module(f"benchmarks.{module}")
        assert callable(getattr(imported, "main", None)), \
            f"{module} lacks a standalone main()"

    def test_design_doc_indexes_every_module(self):
        design = (BENCH_DIR.parent / "DESIGN.md").read_text(
            encoding="utf-8")
        for module in EXPECTED_MODULES:
            assert module in design, \
                f"{module} missing from DESIGN.md's experiment index"


class TestHelpers:
    def test_format_seconds(self, bench_package):
        from benchmarks._common import format_seconds

        assert format_seconds(0.0000005).endswith("us")
        assert format_seconds(0.5).endswith("ms")
        assert format_seconds(2.0) == "2.00s"

    def test_sample_vertices_fraction(self, bench_package):
        from benchmarks._common import sample_vertices
        from repro.datasets.registry import load

        graph = load("bitcoin", scale=0.3)
        sample = sample_vertices(graph, 0.5, seed=1)
        assert sample.num_vertices == graph.num_vertices // 2
        sample.validate()

    def test_sample_vertices_fraction_above_one(self, bench_package):
        # Regression: fraction > 1 used to ask random.sample for more
        # vertices than the graph has, raising ValueError; the count is
        # now clamped to n.
        from benchmarks._common import sample_vertices
        from repro.datasets.registry import load

        graph = load("bitcoin", scale=0.3)
        sample = sample_vertices(graph, 1.25, seed=3)
        assert sample.num_vertices == graph.num_vertices
        sample.validate()

    def test_sample_vertices_deterministic(self, bench_package):
        from benchmarks._common import sample_vertices
        from repro.datasets.registry import load

        graph = load("bitcoin", scale=0.3)
        a = sample_vertices(graph, 0.4, seed=7)
        b = sample_vertices(graph, 0.4, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_print_table_alignment(self, bench_package, capsys):
        from benchmarks._common import print_table

        print_table("T", ["col", "x"], [["a", 1], ["bb", 22]])
        out = capsys.readouterr().out
        assert "T" in out
        assert "col" in out and "bb" in out
