"""Chaos suite: injected worker faults must not change any optimum.

Drives the fault-injection plans of :mod:`repro.resilience.faults`
through real worker pools (``MIN_POOL_TASKS`` forced to 0 so the small
test graphs still dispatch) and asserts the fan-out engines return
exactly the serial optimum under every fault kind:

* ``kill`` — the worker running the faulted chunk dies hard
  (``os._exit``), the way an OOM kill would; the dispatcher must
  detect the silent death, rebuild the pool once and re-dispatch only
  the lost chunks.
* ``raise`` — the chunk runner raises, poisoning the ``imap`` stream;
  same recovery.
* ``stall`` — the chunk sleeps; nothing fails, the heartbeat just
  keeps beating (and enforces any deadline meanwhile).

A second kill of the *same* re-dispatched chunk exhausts the failure
budget and degrades the solve to the in-process runner — which is
immune to the plan by the parent-pid gate, so the solve still
completes with the right answer.
"""

import multiprocessing
import random

import pytest

from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.obs import get_tracer
from repro.parallel import dispatch as dispatch_module
from repro.parallel import engine as engine_module
from repro.parallel import worker as worker_module
from repro.parallel.incumbent import SharedIncumbent
from repro.parallel.worker import WorkerContext, install_context
from repro.resilience import Budget, Fault, Status, clear_faults, \
    install_faults
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph


def random_signed_graph(seed: int, n: int = 40,
                        density: float = 0.3) -> SignedGraph:
    rng = random.Random(seed)
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            roll = rng.random()
            if roll < density:
                graph.add_edge(u, v, POSITIVE)
            elif roll < 2 * density:
                graph.add_edge(u, v, NEGATIVE)
    return graph


@pytest.fixture
def pool_always(monkeypatch):
    """Make even tiny graphs dispatch to a real pool."""
    monkeypatch.setattr(engine_module, "MIN_POOL_TASKS", 0)
    monkeypatch.setattr(engine_module, "MIN_POOL_WORK", 0)


@pytest.fixture
def fault_plan():
    """Install a fault plan for the test, always cleared afterwards."""
    clear_faults()
    yield install_faults
    clear_faults()


def fanout_attrs(tracer) -> dict:
    """The attrs of the solve's ``fanout`` span."""
    for record in tracer.records:
        if record["name"] == "fanout":
            return record["attrs"]
    raise AssertionError("no fanout span recorded")


FAULT_PLANS = {
    "kill": [Fault("kill", 0)],
    "raise": [Fault("raise", 0)],
    "stall": [Fault("stall", 0, seconds=0.1)],
}


class TestChaosMatrix:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("kind", sorted(FAULT_PLANS))
    def test_mbc_optimum_survives_fault(self, kind, workers,
                                        pool_always, fault_plan):
        graph = random_signed_graph(5)
        serial = mbc_star(graph, 2)
        fault_plan(FAULT_PLANS[kind])
        clique = mbc_star(graph, 2, parallel=workers)
        assert clique.size == serial.size
        if not clique.is_empty:
            assert clique.satisfies(2)

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("kind", sorted(FAULT_PLANS))
    def test_pf_optimum_survives_fault(self, kind, workers,
                                       pool_always, fault_plan):
        graph = random_signed_graph(6)
        serial_beta = pf_star(graph)
        fault_plan(FAULT_PLANS[kind])
        outcome = pf_star(graph, return_witness=True,
                          parallel=workers)
        assert isinstance(outcome, tuple)
        beta, witness = outcome
        assert beta == serial_beta
        if beta > 0:
            assert witness.satisfies(beta)


class TestRecoveryLadder:
    def test_single_kill_costs_one_rebuild(self, pool_always,
                                           fault_plan):
        graph = random_signed_graph(7)
        serial = mbc_star(graph, 2)
        fault_plan([Fault("kill", 0)])
        tracer = get_tracer(True)
        clique = mbc_star(graph, 2, parallel=2, trace=tracer)
        assert clique.size == serial.size
        attrs = fanout_attrs(tracer)
        assert attrs["pooled"] is True
        assert attrs["rebuilds"] == 1
        assert attrs["degraded"] is False

    def test_double_kill_degrades_to_in_process(self, pool_always,
                                                fault_plan):
        # The re-dispatched chunk is killed again (attempt 1): the
        # failure budget is spent, the solve finishes in-process —
        # where the parent-pid gate makes the plan inert.
        graph = random_signed_graph(8)
        serial = mbc_star(graph, 2)
        fault_plan([Fault("kill", 0, attempt=0),
                    Fault("kill", 0, attempt=1)])
        tracer = get_tracer(True)
        clique = mbc_star(graph, 2, parallel=2, trace=tracer)
        assert clique.size == serial.size
        attrs = fanout_attrs(tracer)
        assert attrs["degraded"] is True
        assert attrs["rebuilds"] == 1

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="platform lacks the spawn start method")
    def test_spawn_pool_survives_kill(self, pool_always, fault_plan,
                                      monkeypatch):
        # The fault plan travels through the environment, so it must
        # reach spawn children (no inherited address space) too.
        monkeypatch.setattr(dispatch_module, "FORCE_START_METHOD",
                            "spawn")
        graph = random_signed_graph(9)
        serial = mbc_star(graph, 2)
        fault_plan([Fault("kill", 0)])
        clique = mbc_star(graph, 2, parallel=2)
        assert clique.size == serial.size


def _publish_then_raise(task):
    """Chunk runner that publishes a bound it will never deliver.

    Chunk 0's first attempt improves the shared incumbent and *then*
    raises — the exact shape of the lost-publication race: the imap
    stream is poisoned, the chunk's result discarded, but the
    published bound survives in shared memory, where (without the
    ``on_recover`` reset) it would prune the re-dispatched chunk out
    of re-certifying it.
    """
    idx, attempt, _payload = task
    ctx = worker_module._CTX
    if idx == 0 and attempt == 0:
        ctx.incumbent.improve(99)
        raise RuntimeError("publication lost with this chunk")
    return idx, (idx, ctx.incumbent.get())


class TestLostPublicationRecovery:
    def test_on_recover_resets_the_incumbent_floor(self):
        # Regression: pf_round_fanout returned beta - 1 when the one
        # chunk proving the top bar published its success to the
        # shared incumbent and then lost its result to a pool failure.
        incumbent = SharedIncumbent(
            1,
            multiprocessing.get_context(
                dispatch_module.preferred_start_method()))
        ctx_obj = WorkerContext([0, 0], [0, 0], 2, 0, [0, 1], incumbent)
        dispatcher = dispatch_module.ResilientDispatcher(
            2, ctx_obj, want_pool=True)
        orphaned = []

        def recover():
            orphaned.append(incumbent.get())
            incumbent.reset(1)

        try:
            results = list(dispatcher.run(
                _publish_then_raise, ["a", "b"], on_recover=recover))
        finally:
            dispatcher.close()
            install_context(None)
        # The hook ran in the no-workers window, after the orphaned
        # publication (99) and before any re-dispatch.
        assert orphaned == [99]
        assert dispatcher.report.rebuilds == 1
        assert dispatcher.report.degraded is False
        # Chunk 0's re-run was asked against the certified floor, not
        # against its own lost publication.
        assert dict(results)[0] == 1


class TestPooledBudgets:
    def test_deadline_fires_in_the_dispatch_heartbeat(self,
                                                      pool_always,
                                                      fault_plan):
        # A chunk stalls past the deadline, so the only place the
        # deadline can trip is the dispatcher's heartbeat (all the
        # work is inside worker processes).
        graph = random_signed_graph(10)
        serial = mbc_star(graph, 2)
        fault_plan([Fault("stall", 0, seconds=2.0)])
        budget = Budget(deadline=0.3)
        clique = mbc_star(graph, 2, parallel=2, budget=budget)
        assert budget.exhausted
        assert budget.status is Status.BUDGET_EXHAUSTED
        assert clique.size <= serial.size
        if not clique.is_empty:
            assert clique.satisfies(2)

    def test_pooled_pf_truncation_keeps_a_witness(self, pool_always):
        graph = random_signed_graph(11)
        true_beta = pf_star(graph)
        budget = Budget(deadline=0.0)
        outcome = pf_star(graph, return_witness=True, parallel=2,
                          budget=budget)
        assert isinstance(outcome, tuple)
        beta, witness = outcome
        assert budget.status is Status.BUDGET_EXHAUSTED
        assert 0 <= beta <= true_beta
        if beta > 0:
            assert witness.satisfies(beta)

    def test_pooled_node_cap_accounts_chunks(self, pool_always):
        # With a node cap the engine forces stats accounting on and
        # charges each arriving chunk, even with no caller stats.
        graph = random_signed_graph(12)
        budget = Budget(max_nodes=10)
        clique = mbc_star(graph, 2, parallel=2, budget=budget)
        assert budget.nodes > 0
        if not clique.is_empty:
            assert clique.satisfies(2)
