"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.signed.graph import SignedGraph
from repro.signed.io import save_signed_graph


@pytest.fixture
def graph_file(tmp_path, balanced_six):
    path = tmp_path / "graph.txt"
    save_signed_graph(balanced_six, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mbc_defaults(self):
        args = build_parser().parse_args(["mbc", "g.txt"])
        assert args.tau == 3
        assert args.algorithm == "star"
        assert args.workers == 1

    def test_workers_flag(self):
        for command in ("mbc", "pf", "gmbc"):
            args = build_parser().parse_args(
                [command, "g.txt", "--workers", "4"])
            assert args.workers == 4

    def test_generate_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "nope", "out.txt"])


class TestCommands:
    def test_mbc_on_file(self, graph_file, capsys):
        assert main(["mbc", graph_file, "--tau", "3"]) == 0
        out = capsys.readouterr().out
        assert "|C|=6" in out

    def test_mbc_baseline_algorithm(self, graph_file, capsys):
        assert main(["mbc", graph_file, "--tau", "3",
                     "--algorithm", "baseline"]) == 0
        assert "|C|=6" in capsys.readouterr().out

    def test_mbc_no_result(self, graph_file, capsys):
        assert main(["mbc", graph_file, "--tau", "5"]) == 0
        assert "no balanced clique" in capsys.readouterr().out

    def test_mbc_on_dataset(self, capsys):
        assert main(["mbc", "dataset:bitcoin"]) == 0
        assert "|C|=" in capsys.readouterr().out

    def test_pf(self, graph_file, capsys):
        assert main(["pf", graph_file]) == 0
        assert "beta(G) = 3" in capsys.readouterr().out

    def test_pf_algorithms_agree(self, graph_file, capsys):
        for algorithm in ("star", "binary-search", "enumeration"):
            assert main(["pf", graph_file,
                         "--algorithm", algorithm]) == 0
            assert "beta(G) = 3" in capsys.readouterr().out

    def test_gmbc(self, graph_file, capsys):
        assert main(["gmbc", graph_file]) == 0
        out = capsys.readouterr().out
        assert "tau=  0" in out
        assert "tau=  3" in out
        assert "distinct cliques:" in out

    def test_gmbc_naive(self, graph_file, capsys):
        assert main(["gmbc", graph_file, "--algorithm", "naive"]) == 0
        assert "tau=  3" in capsys.readouterr().out

    def test_workers_same_answers(self, graph_file, capsys):
        assert main(["mbc", graph_file, "--tau", "3",
                     "--workers", "2"]) == 0
        assert "|C|=6" in capsys.readouterr().out
        assert main(["pf", graph_file, "--workers", "2"]) == 0
        assert "beta(G) = 3" in capsys.readouterr().out
        assert main(["gmbc", graph_file, "--workers", "2"]) == 0
        assert "tau=  3" in capsys.readouterr().out

    def test_stats(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "|V| = 8" in out
        assert "beta(G) = 3" in out

    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "bitcoin.txt"
        assert main(["generate", "bitcoin", str(out_path),
                     "--scale", "0.2"]) == 0
        assert out_path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_missing_file_is_error(self, capsys):
        assert main(["mbc", "/nonexistent/graph.txt"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_enum(self, graph_file, capsys):
        assert main(["enum", graph_file, "--tau", "3"]) == 0
        out = capsys.readouterr().out
        assert "maximal balanced cliques" in out
        assert "|C|=6" in out

    def test_enum_limit(self, graph_file, capsys):
        assert main(["enum", graph_file, "--limit", "1"]) == 0
        assert "limit reached" in capsys.readouterr().out

    def test_balance_on_unbalanced(self, tmp_path, capsys):
        graph = SignedGraph.from_edges(
            3, negative_edges=[(0, 1), (1, 2), (0, 2)])
        path = tmp_path / "unbalanced.txt"
        save_signed_graph(graph, path)
        assert main(["balance", str(path)]) == 0
        out = capsys.readouterr().out
        assert "structurally balanced: no" in out
        assert "frustration" in out

    def test_balance_on_balanced(self, tmp_path, balanced_six, capsys):
        sub, _ = balanced_six.subgraph(range(6))
        path = tmp_path / "balanced.txt"
        save_signed_graph(sub, path)
        assert main(["balance", str(path)]) == 0
        assert "structurally balanced: yes" in capsys.readouterr().out
