"""Tests for the dataset registry and case studies."""

import pytest

from repro.core.balance import is_balanced_clique
from repro.datasets.casestudies import ppi_case_study, reddit_case_study, \
    wordnet_case_study
from repro.datasets.registry import DATASETS, dataset_names, load, \
    load_spec


class TestRegistry:
    def test_fourteen_datasets(self):
        assert len(dataset_names()) == 14

    def test_names_match_table1(self):
        expected = {
            "bitcoin", "adjwordnet", "reddit", "referendum", "epinions",
            "wikiconflict", "amazon", "bookcross", "dblp", "douban",
            "tripadvisor", "yahoosong", "sn1", "sn2"}
        assert set(dataset_names()) == expected

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            load("nope")

    def test_load_spec_unknown_raises(self):
        with pytest.raises(KeyError):
            load_spec("nope")

    def test_load_case_insensitive(self):
        assert load("Bitcoin") is load("bitcoin")

    def test_generation_cached(self):
        assert load("reddit") is load("reddit")

    def test_scaled_variant_smaller(self):
        full = load("epinions")
        small = load("epinions", scale=0.3)
        assert small.num_vertices < full.num_vertices
        assert small.num_edges < full.num_edges

    @pytest.mark.parametrize("name", dataset_names())
    def test_graph_validates(self, name):
        load(name, scale=0.3).validate()

    @pytest.mark.parametrize("name", dataset_names())
    def test_planted_polarized_clique_present(self, name):
        spec = load_spec(name)
        graph = load(name)
        left, right = spec.polarized
        members = range(left + right)
        assert is_balanced_clique(graph, members, tau=min(left, right))

    @pytest.mark.parametrize("name", dataset_names())
    def test_negative_ratio_near_target(self, name):
        spec = load_spec(name)
        graph = load(name)
        assert graph.negative_ratio == pytest.approx(
            spec.neg_ratio, abs=0.12)

    def test_paper_reference_attached(self):
        spec = load_spec("douban")
        assert spec.paper_reference[0] == 1588455

    def test_srn_family_used(self):
        assert load_spec("sn1").family == "srn"
        assert load_spec("sn2").family == "srn"


class TestCaseStudies:
    def test_reddit_labels(self):
        graph = reddit_case_study()
        assert "subredditdrama" in graph.labels()
        assert graph.label(0) == "videos"

    def test_reddit_conflict_planted(self):
        graph = reddit_case_study()
        assert is_balanced_clique(graph, range(8), tau=3)

    def test_reddit_mbc_finds_conflict(self):
        from repro.core.mbc_star import mbc_star

        graph = reddit_case_study()
        clique = mbc_star(graph, 3)
        names = {graph.label(v) for v in clique.vertices}
        assert {"subredditdrama", "trueredditdrama", "drama"} <= names

    def test_wordnet_good_vs_bad(self):
        graph = wordnet_case_study()
        labels = graph.labels()
        assert "good" in labels and "terrible" in labels

    def test_wordnet_clique_is_antonymous(self):
        from repro.core.mbc_star import mbc_star

        graph = wordnet_case_study()
        clique = mbc_star(graph, 10)
        assert clique.size >= 32
        left_names = {graph.label(v) for v in clique.left}
        right_names = {graph.label(v) for v in clique.right}
        good = {"good", "better", "best"}
        bad = {"bad", "worse", "worst"}
        assert good <= left_names or good <= right_names
        assert bad <= left_names or bad <= right_names
        assert not (good <= left_names and bad <= left_names)

    def test_ppi_complexes(self):
        graph = ppi_case_study(complexes=2, proteins_per_complex=4)
        assert graph.num_vertices == 16
        assert is_balanced_clique(graph, range(8), tau=4)

    def test_ppi_deterministic(self):
        a = ppi_case_study(seed=3)
        b = ppi_case_study(seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_case_studies_validate(self):
        reddit_case_study().validate()
        wordnet_case_study().validate()
        ppi_case_study().validate()
