"""Tests for the dichromatic substrate: graph, transformation, cores.

The transformation tests cover the two directions of Theorem 2:
*soundness* (every clique of ``g_u`` plus ``u`` is a balanced clique of
``G``) and *completeness* (every balanced clique containing ``u``
survives conflict-edge removal).
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import is_balanced_clique, split_sides
from repro.dichromatic.build import build_dichromatic_network, \
    ego_network_edge_count
from repro.dichromatic.cores import bicore_active, \
    coloring_upper_bound_active, k_core_active
from repro.dichromatic.graph import DichromaticGraph
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph

from .conftest import signed_graphs


class TestDichromaticGraph:
    def test_basic(self):
        graph = DichromaticGraph([True, True, False])
        graph.add_edge(0, 2)
        assert graph.num_vertices == 3
        assert graph.num_edges == 1
        assert graph.left_vertices() == {0, 1}
        assert graph.right_vertices() == {2}

    def test_origin_defaults_to_identity(self):
        graph = DichromaticGraph([True, False])
        assert graph.origin == [0, 1]

    def test_origin_length_checked(self):
        with pytest.raises(ValueError):
            DichromaticGraph([True, False], origin=[7])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DichromaticGraph([True]).add_edge(0, 0)

    def test_side_counts(self):
        graph = DichromaticGraph([True, False, False])
        assert graph.side_counts([0, 1, 2]) == (1, 2)

    def test_to_original(self):
        graph = DichromaticGraph([True, False], origin=[10, 20])
        assert graph.to_original([1]) == {20}

    def test_is_clique(self):
        graph = DichromaticGraph([True, False, True])
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert graph.is_clique([0, 1])
        assert not graph.is_clique([0, 1, 2])


class TestTransformation:
    def test_figure4_style_example(self):
        """Conflicting edges disappear; compatible ones survive."""
        graph = SignedGraph.from_edges(
            6,
            positive_edges=[(0, 1), (0, 2), (1, 2), (3, 4)],
            negative_edges=[(0, 3), (0, 4), (1, 3), (2, 4), (1, 4),
                            (0, 5), (3, 5)])
        network = build_dichromatic_network(graph, 0)
        by_origin = {orig: idx for idx, orig in enumerate(network.origin)}
        # Vertices: positive neighbours {1, 2} are L; {3, 4, 5} are R.
        assert network.is_left[by_origin[1]]
        assert not network.is_left[by_origin[3]]
        # (1, 2) positive within L survives.
        assert network.has_edge(by_origin[1], by_origin[2])
        # (3, 4) positive within R survives.
        assert network.has_edge(by_origin[3], by_origin[4])
        # (1, 3) negative across survives.
        assert network.has_edge(by_origin[1], by_origin[3])
        # (3, 5) negative within R is conflicting: removed.
        assert not network.has_edge(by_origin[3], by_origin[5])

    def test_excludes_anchor(self):
        graph = SignedGraph.from_edges(
            3, positive_edges=[(0, 1)], negative_edges=[(0, 2)])
        network = build_dichromatic_network(graph, 0)
        assert 0 not in network.origin
        assert set(network.origin) == {1, 2}

    def test_allowed_filter(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 1), (0, 2)], negative_edges=[(0, 3)])
        network = build_dichromatic_network(graph, 0, allowed={2, 3})
        assert set(network.origin) == {2, 3}

    def test_ego_edge_count(self):
        graph = SignedGraph.from_edges(
            4,
            positive_edges=[(0, 1), (0, 2), (1, 2)],
            negative_edges=[(0, 3), (1, 3)])
        # Neighbours of 0 are {1, 2, 3}; edges among them: (1,2), (1,3).
        assert ego_network_edge_count(graph, 0) == 2

    def test_ego_edge_count_with_allowed(self):
        graph = SignedGraph.from_edges(
            4,
            positive_edges=[(0, 1), (0, 2), (1, 2)],
            negative_edges=[(0, 3), (1, 3)])
        assert ego_network_edge_count(graph, 0, allowed={1, 2}) == 1

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_soundness(self, graph):
        """Every clique of g_u, plus u, is a balanced clique of G."""
        for u in graph.vertices():
            network = build_dichromatic_network(graph, u)
            vertices = list(network.vertices())
            for size in (1, 2, 3):
                for combo in itertools.combinations(vertices, size):
                    if not network.is_clique(combo):
                        continue
                    members = network.to_original(combo) | {u}
                    assert is_balanced_clique(graph, members), (
                        f"clique {combo} of g_{u} does not map to a "
                        f"balanced clique")

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_completeness(self, graph):
        """Every balanced clique containing u appears as a clique of
        g_u with matching side labels."""
        from repro.core.bruteforce import enumerate_balanced_cliques

        for clique in enumerate_balanced_cliques(graph):
            u = min(clique.vertices)
            # u's side of the split is the L side of g_u.
            u_side = clique.left if u in clique.left else clique.right
            other = clique.right if u in clique.left else clique.left
            network = build_dichromatic_network(graph, u)
            by_origin = {orig: idx
                         for idx, orig in enumerate(network.origin)}
            local = [by_origin[v] for v in clique.vertices if v != u]
            assert network.is_clique(local)
            for v in u_side - {u}:
                assert network.is_left[by_origin[v]]
            for v in other:
                assert not network.is_left[by_origin[v]]


class TestKCoreActive:
    def test_reduces_to_triangle(self):
        graph = DichromaticGraph([True, True, False, False])
        for u, v in [(0, 1), (0, 2), (1, 2), (2, 3)]:
            graph.add_edge(u, v)
        survivors = k_core_active(graph, 2, set(graph.vertices()))
        assert survivors == {0, 1, 2}

    def test_zero_k_keeps_all(self):
        graph = DichromaticGraph([True, False])
        assert k_core_active(graph, 0, {0, 1}) == {0, 1}


class TestBicore:
    @pytest.fixture
    def balanced_network(self) -> DichromaticGraph:
        """A (2,2)-biclique-of-cliques plus a weak pendant."""
        graph = DichromaticGraph([True, True, False, False, False])
        for u, v in [(0, 1), (2, 3), (0, 2), (0, 3), (1, 2), (1, 3),
                     (3, 4)]:
            graph.add_edge(u, v)
        return graph

    def test_bicore_removes_pendant(self, balanced_network):
        survivors = bicore_active(
            balanced_network, 2, 2, set(balanced_network.vertices()))
        assert survivors == {0, 1, 2, 3}

    def test_bicore_empty_when_infeasible(self, balanced_network):
        survivors = bicore_active(
            balanced_network, 3, 3, set(balanced_network.vertices()))
        assert survivors == set()

    def test_negative_thresholds_keep_all(self, balanced_network):
        active = set(balanced_network.vertices())
        assert bicore_active(balanced_network, -1, 0, active) == active

    @given(signed_graphs(max_vertices=10),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_bicore_degree_property(self, graph, tau_l, tau_r):
        """Survivors satisfy the per-side degree requirements."""
        if graph.num_vertices == 0:
            return
        u = 0
        network = build_dichromatic_network(graph, u)
        survivors = bicore_active(
            network, tau_l, tau_r, set(network.vertices()))
        for v in survivors:
            left_deg = sum(
                1 for w in network.neighbors(v) & survivors
                if network.is_left[w])
            right_deg = len(network.neighbors(v) & survivors) - left_deg
            if network.is_left[v]:
                assert left_deg >= tau_l - 1
                assert right_deg >= tau_r
            else:
                assert left_deg >= tau_l
                assert right_deg >= tau_r - 1

    @given(signed_graphs(max_vertices=10),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_bicore_keeps_qualifying_cliques(self, graph, tau):
        """Every dichromatic clique meeting (tau, tau) lies inside the
        (tau, tau)-core — the property PF* relies on."""
        if graph.num_vertices == 0:
            return
        for u in graph.vertices():
            network = build_dichromatic_network(graph, u)
            survivors = bicore_active(
                network, tau, tau, set(network.vertices()))
            vertices = list(network.vertices())
            for size in range(1, min(len(vertices), 5) + 1):
                for combo in itertools.combinations(vertices, size):
                    if not network.is_clique(combo):
                        continue
                    left, right = network.side_counts(combo)
                    if left >= tau and right >= tau:
                        assert set(combo) <= survivors


class TestColoringBound:
    def test_bound_on_triangle(self):
        graph = DichromaticGraph([True, True, False])
        for u, v in [(0, 1), (0, 2), (1, 2)]:
            graph.add_edge(u, v)
        assert coloring_upper_bound_active(graph, {0, 1, 2}) == 3

    def test_bound_empty(self):
        graph = DichromaticGraph([True])
        assert coloring_upper_bound_active(graph, set()) == 0
