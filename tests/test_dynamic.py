"""Unit tests for the incremental dynamic solver (`repro.dynamic`).

The deep randomized coverage (seeded edit scripts differenced against
full re-solves after *every* edit, across engines and worker counts)
lives in ``tests/test_property.py::TestDynamicDifferential``; this
module covers the API contracts: mutation semantics, cache
invalidation and reuse, the skip fast path, out-of-band mutation
resync, budget truncation (uncertified bounds are never cached), and
the edit-script format.
"""

import random

import pytest

from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.core.result import BalancedClique, Status
from repro.dynamic import (
    DynamicSolver,
    Edit,
    apply_edit,
    parse_edit_script,
    random_edits,
)
from repro.obs import get_tracer, install_tracer
from repro.resilience.budget import Budget
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph

from .conftest import SOLVER_ENGINES


def random_graph(seed: int, n_low: int = 8, n_high: int = 14) -> SignedGraph:
    rng = random.Random(seed)
    n = rng.randint(n_low, n_high)
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.5:
                graph.add_edge(
                    u, v, NEGATIVE if rng.random() < 0.5 else POSITIVE)
    return graph


def figure_graph() -> SignedGraph:
    """A small graph with a known tau=1 balanced clique structure."""
    return SignedGraph.from_signed_edges(6, [
        (0, 1, 1), (0, 2, -1), (0, 3, -1),
        (1, 2, -1), (1, 3, -1), (2, 3, 1),
        (3, 4, 1), (4, 5, -1),
    ])


def assert_matches_full(solver: DynamicSolver) -> None:
    """The incremental answer equals a fresh full solve, and the
    witness is a real balanced clique of the live graph."""
    result = solver.solve()
    full = mbc_star(solver.graph, solver.tau)
    assert result.clique.size == full.size
    assert result.optimal
    if not result.clique.is_empty:
        rebuilt = BalancedClique.from_vertices(
            solver.graph, result.clique.vertices)
        assert rebuilt.size == result.clique.size
        assert result.clique.satisfies(solver.tau)


class TestConstruction:
    def test_initial_solve_matches_full(self):
        graph = random_graph(1)
        solver = DynamicSolver(graph, tau=1)
        assert_matches_full(solver)

    def test_tau_below_one_rejected(self):
        with pytest.raises(ValueError):
            DynamicSolver(SignedGraph(4), tau=0)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            DynamicSolver(SignedGraph(4), tau=1, engine="quantum")

    def test_serial_engine_rejects_parallel(self):
        with pytest.raises(ValueError):
            DynamicSolver(SignedGraph(4), tau=1, engine="set",
                          parallel=2)

    def test_empty_graph(self):
        solver = DynamicSolver(SignedGraph(0), tau=1)
        assert solver.solve().clique.is_empty
        assert solver.beta() == 0


class TestMutationApi:
    def test_add_edge_returns_true_and_mutates(self):
        solver = DynamicSolver(SignedGraph(3), tau=1)
        assert solver.add_edge(0, 1, POSITIVE) is True
        assert solver.graph.sign(0, 1) == POSITIVE
        assert solver.edits == 1

    def test_duplicate_same_sign_add_is_a_noop(self):
        solver = DynamicSolver(figure_graph(), tau=1)
        solver.solve()
        assert solver.add_edge(0, 1, POSITIVE) is False
        assert solver.edits == 0
        assert solver.dirty_count == 0

    def test_opposite_sign_add_rejected(self):
        solver = DynamicSolver(figure_graph(), tau=1)
        with pytest.raises(ValueError):
            solver.add_edge(0, 1, NEGATIVE)
        # Nothing was invalidated by the failed edit.
        assert solver.edits == 0
        assert solver.dirty_count == 0

    def test_self_loop_rejected(self):
        solver = DynamicSolver(SignedGraph(3), tau=1)
        with pytest.raises(ValueError):
            solver.add_edge(1, 1, POSITIVE)

    def test_out_of_range_rejected(self):
        solver = DynamicSolver(SignedGraph(3), tau=1)
        for u, v in ((0, 3), (3, 0), (-1, 0), (0, -1)):
            with pytest.raises(ValueError):
                solver.add_edge(u, v, POSITIVE)
            with pytest.raises(ValueError):
                solver.remove_edge(u, v)
            with pytest.raises(ValueError):
                solver.flip_sign(u, v)

    def test_remove_edge_returns_sign(self):
        solver = DynamicSolver(figure_graph(), tau=1)
        assert solver.remove_edge(0, 2) == NEGATIVE
        assert solver.remove_edge(0, 1) == POSITIVE
        assert solver.graph.sign(0, 2) is None

    def test_remove_missing_edge_raises(self):
        solver = DynamicSolver(SignedGraph(3), tau=1)
        with pytest.raises(KeyError):
            solver.remove_edge(0, 1)

    def test_flip_sign_returns_new_sign(self):
        solver = DynamicSolver(figure_graph(), tau=1)
        assert solver.flip_sign(0, 1) == NEGATIVE
        assert solver.graph.sign(0, 1) == NEGATIVE
        assert solver.flip_sign(0, 1) == POSITIVE

    def test_flip_missing_edge_raises(self):
        solver = DynamicSolver(SignedGraph(3), tau=1)
        with pytest.raises(KeyError):
            solver.flip_sign(0, 1)

    def test_edits_dirty_only_common_neighbourhood(self):
        # A star: editing a leaf edge dirties only the two endpoints
        # (no third vertex sees both).
        graph = SignedGraph.from_signed_edges(
            5, [(0, 1, 1), (0, 2, 1), (0, 3, 1), (0, 4, 1)])
        solver = DynamicSolver(graph, tau=1)
        solver.solve()
        solver.remove_edge(0, 1)
        assert solver.dirty_count == 2


class TestIncrementalSolve:
    @pytest.mark.parametrize("engine", SOLVER_ENGINES)
    def test_edit_stream_matches_full_resolve(self, engine):
        graph = random_graph(7)
        solver = DynamicSolver(graph, tau=1, engine=engine)
        assert_matches_full(solver)
        for edit in random_edits(graph, 12, seed=3):
            apply_edit(solver, edit)
            assert_matches_full(solver)

    def test_solve_skips_when_clean(self):
        solver = DynamicSolver(random_graph(2), tau=1)
        first = solver.solve()
        assert solver.solve() is first

    def test_skip_counter_increments(self):
        tracer = get_tracer(True)
        previous = install_tracer(tracer)
        try:
            solver = DynamicSolver(random_graph(2), tau=1)
            solver.solve()
            solver.solve()
        finally:
            install_tracer(previous)
        assert tracer.counters_snapshot()[
            "dynamic.solves_skipped"] >= 1

    def test_external_mutation_triggers_resync(self):
        graph = figure_graph()
        solver = DynamicSolver(graph, tau=1)
        solver.solve()
        # Bypass the solver: the fingerprint check must catch it.
        graph.add_edge(1, 4, POSITIVE)
        assert_matches_full(solver)

    def test_vertex_growth_triggers_resync(self):
        graph = figure_graph()
        solver = DynamicSolver(graph, tau=1)
        solver.solve()
        w = graph.add_vertex()
        graph.add_edge(w, 0, POSITIVE)
        assert_matches_full(solver)
        assert solver.graph.num_vertices == 7

    def test_truncated_solve_never_caches_uncertified_bounds(self):
        graph = random_graph(11)
        solver = DynamicSolver(graph, tau=1, engine="set")
        truncated = solver.solve(budget=Budget(max_nodes=1))
        assert truncated.status is Status.BUDGET_EXHAUSTED
        full = mbc_star(graph, tau=1)
        # The truncated incumbent is certified (a real clique), so it
        # can only undershoot the optimum.
        assert truncated.clique.size <= full.size
        # A later unbudgeted solve recovers the exact optimum from
        # the surviving certified bounds.
        assert_matches_full(solver)

    @pytest.mark.parametrize("engine", SOLVER_ENGINES)
    def test_truncated_solve_per_engine(self, engine):
        graph = random_graph(13)
        solver = DynamicSolver(graph, tau=1, engine=engine)
        truncated = solver.solve(budget=Budget(max_nodes=1))
        assert truncated.clique.size <= mbc_star(graph, tau=1).size
        assert_matches_full(solver)


class TestBeta:
    @pytest.mark.parametrize("engine", SOLVER_ENGINES)
    def test_beta_matches_pf_star_through_edits(self, engine):
        graph = random_graph(17)
        solver = DynamicSolver(graph, tau=1, engine=engine)
        assert solver.beta() == pf_star(graph)
        for edit in random_edits(graph, 8, seed=5):
            apply_edit(solver, edit)
            assert solver.beta() == pf_star(graph)

    def test_beta_truncation_is_a_lower_bound(self):
        graph = random_graph(19)
        solver = DynamicSolver(graph, tau=1)
        bar = solver.beta(budget=Budget(max_nodes=1))
        exact = pf_star(graph)
        assert 0 <= bar <= exact
        assert solver.beta() == exact

    @pytest.mark.parametrize("engine", SOLVER_ENGINES)
    def test_beta_witness_backs_the_factor_through_edits(self, engine):
        graph = random_graph(17)
        solver = DynamicSolver(graph, tau=1, engine=engine)
        for edit in random_edits(graph, 8, seed=7):
            apply_edit(solver, edit)
            outcome = solver.beta(return_witness=True)
            assert isinstance(outcome, tuple)
            bar, witness = outcome
            assert witness.polarization == bar
            if bar:
                # A real balanced clique of the live graph, or raise.
                BalancedClique.from_vertices(graph, witness.vertices)

    def test_truncated_beta_witness_certifies_the_bar(self):
        graph = random_graph(19)
        solver = DynamicSolver(graph, tau=1)
        outcome = solver.beta(
            budget=Budget(max_nodes=1), return_witness=True)
        assert isinstance(outcome, tuple)
        bar, witness = outcome
        assert witness.polarization == bar


class TestEditScript:
    def test_round_trip(self):
        edits = [Edit("add", 0, 1, NEGATIVE), Edit("add", 1, 2),
                 Edit("remove", 0, 1), Edit("flip", 1, 2)]
        text = "\n".join(edit.as_line() for edit in edits)
        assert parse_edit_script(text) == edits

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nadd 0 1 +1  # trailing\n  \nflip 0 1\n"
        assert parse_edit_script(text) == [
            Edit("add", 0, 1, POSITIVE), Edit("flip", 0, 1)]

    def test_sign_spellings(self):
        for token, sign in (("1", POSITIVE), ("+1", POSITIVE),
                            ("+", POSITIVE), ("-1", NEGATIVE),
                            ("-", NEGATIVE)):
            assert parse_edit_script(f"add 0 1 {token}") == [
                Edit("add", 0, 1, sign)]

    @pytest.mark.parametrize("bad", [
        "add 0 1", "add 0 1 2", "remove 1", "flip 1 2 3",
        "grow 0 1", "add x y +1",
    ])
    def test_malformed_lines_report_the_line_number(self, bad):
        with pytest.raises(ValueError, match="line 2"):
            parse_edit_script(f"add 0 1 +1\n{bad}\n")

    def test_apply_edit_rejects_unknown_kind(self):
        solver = DynamicSolver(SignedGraph(3), tau=1)
        with pytest.raises(ValueError):
            apply_edit(solver, Edit("grow", 0, 1))

    def test_random_edits_are_deterministic_and_applicable(self):
        # Each edit is drawn valid for the live graph, so scripts are
        # collected while being applied (identical seeds + identical
        # graphs replay to identical scripts).
        scripts: list[list[Edit]] = []
        for _run in range(2):
            solver = DynamicSolver(random_graph(23), tau=1)
            script: list[Edit] = []
            for edit in random_edits(solver.graph, 20, seed=9):
                script.append(edit)
                apply_edit(solver, edit)
            scripts.append(script)
        assert scripts[0] == scripts[1]
        assert len(scripts[0]) == 20

    def test_random_edits_on_empty_graph_only_adds(self):
        edits = list(random_edits(SignedGraph(5), 4, seed=0))
        assert edits and all(e.kind == "add" for e in edits)
