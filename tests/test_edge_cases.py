"""Edge cases and failure-injection tests across the public API.

These probe the boundaries the main suites do not: degenerate graphs
(empty, edgeless, single-edge), extreme thresholds, adversarial sign
patterns, and the robustness contracts of the solvers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_maximum_balanced_clique
from repro.core.gmbc import gmbc_naive, gmbc_star
from repro.core.heuristic import mbc_heuristic
from repro.core.mbc_adv import mbc_adv
from repro.core.mbc_baseline import enumerate_maximal_balanced_cliques, \
    mbc_baseline
from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_binary_search, pf_enumeration, pf_star
from repro.core.reductions import edge_reduction, vertex_reduction
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph

from .conftest import signed_graphs


def complete_signed(n: int, sign: int) -> SignedGraph:
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v, sign)
    return graph


class TestDegenerateGraphs:
    def test_edgeless_graph_all_solvers(self):
        graph = SignedGraph(5)
        assert mbc_star(graph, 0).size == 1
        assert mbc_baseline(graph, 0).size == 1
        assert mbc_adv(graph, 0).size == 1
        assert pf_star(graph) == 0
        assert pf_enumeration(graph) == 0

    def test_single_positive_edge(self):
        graph = SignedGraph.from_edges(2, positive_edges=[(0, 1)])
        assert mbc_star(graph, 0).size == 2
        assert mbc_star(graph, 1).is_empty
        assert pf_star(graph) == 0

    def test_single_negative_edge(self):
        graph = SignedGraph.from_edges(2, negative_edges=[(0, 1)])
        assert mbc_star(graph, 1).size == 2
        assert mbc_star(graph, 2).is_empty
        assert pf_star(graph) == 1

    def test_single_vertex(self):
        graph = SignedGraph(1)
        assert mbc_star(graph, 0).size == 1
        assert pf_star(graph) == 0
        assert len(gmbc_star(graph)) == 1


class TestExtremeSignPatterns:
    def test_all_negative_complete_graph(self):
        """An all-negative K_n has balanced cliques of size at most 2
        (any negative triangle is unbalanced)."""
        graph = complete_signed(6, NEGATIVE)
        assert mbc_star(graph, 0).size == 2
        assert pf_star(graph) == 1

    def test_all_positive_complete_graph(self):
        graph = complete_signed(6, POSITIVE)
        assert mbc_star(graph, 0).size == 6
        assert mbc_star(graph, 1).is_empty
        assert pf_star(graph) == 0

    def test_perfect_antipodal_clique(self):
        """K_{n,n}-style balanced clique: beta = n."""
        graph = SignedGraph(8)
        for u in range(8):
            for v in range(u + 1, 8):
                same = (u < 4) == (v < 4)
                graph.add_edge(u, v, POSITIVE if same else NEGATIVE)
        assert pf_star(graph) == 4
        assert mbc_star(graph, 4).size == 8

    def test_star_of_negative_edges(self):
        graph = SignedGraph(6)
        for v in range(1, 6):
            graph.add_edge(0, v, NEGATIVE)
        # Largest balanced clique is a single negative edge.
        assert mbc_star(graph, 1).size == 2
        assert pf_star(graph) == 1


class TestExtremeThresholds:
    def test_tau_larger_than_graph(self, balanced_six):
        assert mbc_star(balanced_six, 100).is_empty
        assert mbc_baseline(balanced_six, 100).is_empty
        assert mbc_adv(balanced_six, 100).is_empty

    def test_tau_equal_beta(self, balanced_six):
        beta = pf_star(balanced_six)
        assert not mbc_star(balanced_six, beta).is_empty
        assert mbc_star(balanced_six, beta + 1).is_empty

    @given(signed_graphs(max_vertices=8))
    @settings(max_examples=40, deadline=None)
    def test_beta_is_the_exact_boundary(self, graph):
        beta = pf_star(graph)
        assert not mbc_star(graph, beta).is_empty or \
            graph.num_vertices == 0
        assert mbc_star(graph, beta + 1).is_empty


class TestReductionEdgeCases:
    def test_vertex_reduction_on_empty(self):
        assert vertex_reduction(SignedGraph(0), 3) == set()

    def test_edge_reduction_on_empty(self):
        reduced = edge_reduction(SignedGraph(0), 3)
        assert reduced.num_vertices == 0

    def test_edge_reduction_huge_tau_clears_graph(self, balanced_six):
        reduced = edge_reduction(balanced_six, 50)
        assert reduced.num_edges == 0

    def test_vertex_reduction_huge_tau(self, balanced_six):
        assert vertex_reduction(balanced_six, 50) == set()


class TestHeuristicEdgeCases:
    def test_tries_parameter(self, balanced_six):
        single = mbc_heuristic(balanced_six, 0, tries=1)
        many = mbc_heuristic(balanced_six, 0, tries=8)
        assert many.size >= single.size

    def test_zero_tries_clamped(self, balanced_six):
        clique = mbc_heuristic(balanced_six, 0, tries=0)
        assert clique.size >= 1


class TestEnumerationEdgeCases:
    def test_empty_graph(self):
        assert enumerate_maximal_balanced_cliques(SignedGraph(0)) == []

    def test_edgeless_graph_singletons(self):
        cliques = enumerate_maximal_balanced_cliques(SignedGraph(3))
        assert {c.vertices for c in cliques} == {
            frozenset({0}), frozenset({1}), frozenset({2})}

    def test_large_planted_clique_is_fast(self):
        """The pivoting regression test: a 24-vertex balanced clique
        must enumerate as ONE maximal clique without an exponential
        subset sweep."""
        graph = SignedGraph(24)
        for u in range(24):
            for v in range(u + 1, 24):
                same = (u < 12) == (v < 12)
                graph.add_edge(u, v, POSITIVE if same else NEGATIVE)
        cliques = enumerate_maximal_balanced_cliques(graph)
        assert len(cliques) == 1
        assert cliques[0].size == 24


class TestCrossSolverStress:
    @given(signed_graphs(max_vertices=11, min_vertices=5))
    @settings(max_examples=60, deadline=None)
    def test_five_solvers_agree(self, graph):
        for tau in (0, 2):
            expected = brute_force_maximum_balanced_clique(
                graph, tau).size
            assert mbc_star(graph, tau).size == expected
            assert mbc_baseline(graph, tau).size == expected
            assert mbc_adv(graph, tau).size == expected
        assert pf_star(graph) == pf_binary_search(graph)

    @given(signed_graphs(max_vertices=8))
    @settings(max_examples=30, deadline=None)
    def test_gmbc_variants_and_pf_consistent(self, graph):
        star = gmbc_star(graph)
        naive = gmbc_naive(graph)
        assert [c.size for c in star] == [c.size for c in naive]
        if graph.num_vertices:
            assert len(star) == pf_star(graph) + 1
