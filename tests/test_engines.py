"""Differential tests: the registered kernel engines against each
other.

The kernel layer (:mod:`repro.kernels`) re-implements the hot path of
MDC/DCC/MBC*/PF* once per registered backend: ``bitset`` on int-mask
adjacency and ``numpy`` on uint64 mask matrices, both against the
``set`` reference.  All available engines must agree on every
*optimum* (clique sizes, polarization factors) on a broad family of
seeded random signed graphs; the returned cliques may differ between
the set engine and the mask engines when several optima exist, so each
is validated structurally via ``BalancedClique.from_vertices`` instead
of compared vertex-by-vertex.  The bitset and numpy engines share the
same lowest-id tie-breaks, so *their* witnesses are compared exactly.

A second group pins the kernel primitives themselves against their
set-based reference implementations on random dichromatic graphs, and
a third does the same for the vectorised numpy kernels against the
bitset primitives.  The engine axis is taken from the backend registry
(:data:`repro.kernels.ENGINE_REGISTRY` via
``tests.conftest.SOLVER_ENGINES``), so a new backend joins every
matrix by registering itself.
"""

import random

import pytest

from repro.core.gmbc import gmbc_star
from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_binary_search, pf_star
from repro.core.reductions import edge_reduction, edge_reduction_fast
from repro.core.result import BalancedClique
from repro.dichromatic.build import build_dichromatic_network, \
    build_dichromatic_network_bits, build_dichromatic_network_matrix
from repro.dichromatic.cores import bicore_active, \
    coloring_upper_bound_active, k_core_active
from repro.dichromatic.dcc import dichromatic_clique_witness
from repro.dichromatic.graph import DichromaticGraph
from repro.dichromatic.mdc import solve_mdc
from repro.kernels import ENGINE_REGISTRY, ENGINES, EngineSpec, \
    available_engines, engine_spec, npmask, register_engine, \
    validate_engine
from repro.kernels.active import bicore_active_mask, \
    coloring_upper_bound_active_mask, degeneracy_ordering_mask, \
    degree_in_active, intersect_active, k_core_active_mask
from repro.kernels.bitset import bits_of, mask_of, masks_to_bytes
from repro.signed.graph import SignedGraph
from repro.unsigned.graph import UnsignedGraph

from .conftest import PARALLEL_ENGINES, SOLVER_ENGINES, requires_numpy


def random_signed_graph(seed: int) -> SignedGraph:
    """Seeded random signed graph with varying density and sign mix."""
    rng = random.Random(seed)
    n = rng.randint(6, 28)
    density = rng.uniform(0.15, 0.75)
    negative_ratio = rng.uniform(0.2, 0.8)
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                sign = -1 if rng.random() < negative_ratio else 1
                graph.add_edge(u, v, sign)
    return graph


def random_dichromatic_graph(seed: int) -> DichromaticGraph:
    rng = random.Random(seed)
    n = rng.randint(4, 24)
    is_left = [rng.random() < 0.5 for _ in range(n)]
    graph = DichromaticGraph(is_left)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < rng.uniform(0.2, 0.7):
                graph.add_edge(u, v)
    return graph


def assert_valid(clique: BalancedClique, graph: SignedGraph, tau: int):
    if clique.is_empty:
        return
    # from_vertices re-derives the two sides and validates that the
    # vertex set is a structurally balanced clique of the graph.
    rebuilt = BalancedClique.from_vertices(graph, clique.vertices)
    assert rebuilt.size == clique.size
    assert clique.satisfies(tau)


class TestMbcStarDifferential:
    @pytest.mark.parametrize("seed", range(50))
    def test_same_optimum_on_random_graphs(self, seed):
        graph = random_signed_graph(seed)
        tau = seed % 4
        by_set = mbc_star(graph, tau, engine="set")
        assert_valid(by_set, graph, tau)
        for engine in SOLVER_ENGINES:
            result = mbc_star(graph, tau, engine=engine)
            assert result.size == by_set.size, engine
            assert_valid(result, graph, tau)

    @pytest.mark.parametrize("seed", [3, 11, 27])
    def test_check_only_agrees_on_feasibility(self, seed):
        graph = random_signed_graph(seed)
        for tau in range(4):
            by_set = mbc_star(graph, tau, check_only=True, engine="set")
            for engine in SOLVER_ENGINES:
                result = mbc_star(
                    graph, tau, check_only=True, engine=engine)
                assert by_set.is_empty == result.is_empty, engine
                assert_valid(result, graph, tau)

    def test_unknown_engine_rejected(self):
        graph = random_signed_graph(0)
        with pytest.raises(ValueError, match="unknown engine"):
            mbc_star(graph, 1, engine="bitmap")
        with pytest.raises(ValueError, match="unknown engine"):
            validate_engine("")


class TestEngineRegistry:
    """The backend registry behind the ``engine=`` seam."""

    def test_engines_tuple_mirrors_registry(self):
        assert ENGINES == tuple(ENGINE_REGISTRY)
        assert set(available_engines()) <= set(ENGINES)
        # set and bitset have no runtime requirement — always usable.
        assert {"set", "bitset"} <= set(available_engines())

    def test_capability_descriptors(self):
        assert not engine_spec("set").supports_parallel
        assert engine_spec("bitset").supports_parallel
        assert engine_spec("numpy").supports_parallel
        # The optional backend must name its requirement for the
        # unavailable-engine error message.
        assert engine_spec("numpy").requirement

    def test_unknown_engine_lookup_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            engine_spec("bitmap")

    def test_numpy_availability_follows_probe(self):
        assert engine_spec("numpy").available() == npmask.HAVE_NUMPY

    def test_unavailable_engine_error_names_requirement(self):
        stub = register_engine(EngineSpec(
            name="stub-backend",
            description="always-unavailable test backend",
            representation="-",
            supports_parallel=False,
            probe=lambda: False,
            requirement="the stub runtime"))
        try:
            assert not stub.available()
            with pytest.raises(ValueError,
                               match="requires the stub runtime"):
                validate_engine("stub-backend")
        finally:
            del ENGINE_REGISTRY["stub-backend"]

    def test_serial_only_engine_rejected_for_fanout(self):
        graph = random_signed_graph(1)
        with pytest.raises(ValueError, match="serial-only"):
            mbc_star(graph, 1, engine="set", parallel=2)


class TestPfDifferential:
    @pytest.mark.parametrize("seed", range(0, 50, 2))
    def test_pf_star_same_factor(self, seed):
        graph = random_signed_graph(seed)
        by_set = pf_star(graph, engine="set")
        for engine in SOLVER_ENGINES:
            beta, witness = pf_star(
                graph, engine=engine, return_witness=True)
            assert beta == by_set, engine
            assert_valid(witness, graph, 0)
            assert witness.polarization == beta

    @pytest.mark.parametrize("seed", range(1, 40, 4))
    def test_pf_binary_search_same_factor(self, seed):
        graph = random_signed_graph(seed)
        by_set = pf_binary_search(graph, engine="set")
        for engine in SOLVER_ENGINES:
            assert pf_binary_search(graph, engine=engine) == by_set

    @pytest.mark.parametrize("seed", [5, 17])
    def test_pf_star_dorder_variant(self, seed):
        graph = random_signed_graph(seed)
        by_set = pf_star(graph, ordering="degeneracy", engine="set")
        for engine in SOLVER_ENGINES:
            assert pf_star(graph, ordering="degeneracy",
                           engine=engine) == by_set


class TestGmbcDifferential:
    @pytest.mark.parametrize("seed", [2, 9, 23, 31])
    def test_same_profile(self, seed):
        graph = random_signed_graph(seed)
        by_set = gmbc_star(graph, engine="set")
        for engine in SOLVER_ENGINES:
            results = gmbc_star(graph, engine=engine)
            # results[tau] is the maximum for threshold tau.
            assert len(by_set) == len(results), engine
            for tau, clique in enumerate(results):
                assert by_set[tau].size == clique.size
                assert_valid(clique, graph, tau)


class TestWorkerMatrix:
    """(engine x workers) differential matrix for the fan-out engine.

    workers=1 is the serial sweep; 2 and 4 fan out (in-process below
    ``MIN_POOL_TASKS``, real pools above it — both code paths are
    covered because the random graphs straddle the threshold).  The
    engine axis covers every available parallel-capable backend
    (bitset, plus numpy when installed).  All cells must report
    identical optimum sizes with structurally valid witnesses.
    """

    WORKERS = [1, 2, 4]

    @pytest.mark.parametrize("engine", PARALLEL_ENGINES)
    @pytest.mark.parametrize("seed", range(0, 24, 3))
    def test_mbc_star_same_optimum(self, seed, engine):
        graph = random_signed_graph(seed)
        tau = seed % 4
        reference = mbc_star(graph, tau, engine="set")
        for workers in self.WORKERS:
            clique = mbc_star(graph, tau, engine=engine,
                              parallel=workers)
            assert clique.size == reference.size
            assert_valid(clique, graph, tau)

    @pytest.mark.parametrize("engine", PARALLEL_ENGINES)
    @pytest.mark.parametrize("seed", range(1, 24, 5))
    def test_pf_star_same_factor(self, seed, engine):
        graph = random_signed_graph(seed)
        reference = pf_star(graph, engine="set")
        for workers in self.WORKERS:
            beta, witness = pf_star(graph, engine=engine,
                                    parallel=workers,
                                    return_witness=True)
            assert beta == reference
            assert_valid(witness, graph, 0)
            assert witness.polarization >= beta

    @pytest.mark.parametrize("engine", PARALLEL_ENGINES)
    @pytest.mark.parametrize("seed", [4, 13])
    def test_gmbc_star_same_profile(self, seed, engine):
        graph = random_signed_graph(seed)
        reference = [c.size for c in gmbc_star(graph, engine="set")]
        for workers in self.WORKERS:
            results = gmbc_star(graph, engine=engine,
                                parallel=workers)
            assert [c.size for c in results] == reference
            for tau, clique in enumerate(results):
                assert_valid(clique, graph, tau)


class TestEdgeReductionDifferential:
    @pytest.mark.parametrize("seed", range(25))
    def test_same_fixpoint(self, seed):
        # The reduction is monotone, so its fixpoint is unique: the
        # pass-based set version and the worklist mask version must
        # keep exactly the same edges.
        graph = random_signed_graph(seed)
        tau = seed % 5
        by_set = edge_reduction(graph, tau)
        by_bits = edge_reduction_fast(graph, tau)
        assert sorted(by_set.edges()) == sorted(by_bits.edges())

    @pytest.mark.parametrize("seed", [1, 8])
    def test_input_untouched(self, seed):
        graph = random_signed_graph(seed)
        before = sorted(graph.edges())
        edge_reduction_fast(graph, 3)
        assert sorted(graph.edges()) == before

    @pytest.mark.parametrize("seed", range(0, 30, 3))
    def test_mbc_star_with_er_same_optimum(self, seed):
        graph = random_signed_graph(seed)
        tau = 1 + seed % 3
        by_set = mbc_star(graph, tau, use_edge_reduction=True,
                          engine="set")
        by_bitset = mbc_star(graph, tau, use_edge_reduction=True,
                             engine="bitset")
        assert by_set.size == by_bitset.size
        assert_valid(by_bitset, graph, tau)


class TestNetworkBuilderDifferential:
    @pytest.mark.parametrize("seed", range(30))
    def test_same_network(self, seed):
        graph = random_signed_graph(seed)
        rng = random.Random(seed + 1000)
        u = rng.randrange(graph.num_vertices)
        allowed = set(rng.sample(
            range(graph.num_vertices),
            rng.randint(0, graph.num_vertices))) - {u}
        for allowed_set, allowed_mask in [
            (None, None), (allowed, mask_of(allowed)),
        ]:
            by_set = build_dichromatic_network(graph, u, allowed_set)
            by_bits = build_dichromatic_network_bits(
                graph, u, allowed_mask)
            assert by_set.origin == by_bits.origin
            assert by_set.is_left == by_bits.is_left
            assert sorted(by_set.edges()) == sorted(by_bits.edges())


class TestKernelPrimitives:
    @pytest.mark.parametrize("seed", range(25))
    def test_intersection_and_degree(self, seed):
        graph = random_dichromatic_graph(seed)
        adj = graph.adjacency_bits()
        rng = random.Random(seed)
        active = set(rng.sample(
            range(graph.num_vertices),
            rng.randint(0, graph.num_vertices)))
        active_mask = mask_of(active)
        for v in graph.vertices():
            expected = graph.neighbors(v) & active
            got = intersect_active(adj, v, active_mask)
            assert set(bits_of(got)) == expected
            assert degree_in_active(adj, v, active_mask) == len(expected)

    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("k", [0, 1, 2, 4])
    def test_k_core(self, seed, k):
        graph = random_dichromatic_graph(seed)
        adj = graph.adjacency_bits()
        expected = k_core_active(graph, k, graph.vertices())
        got = k_core_active_mask(adj, k, graph.all_bits())
        assert set(bits_of(got)) == expected

    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("taus", [(0, 0), (1, 2), (2, 2), (3, 1)])
    def test_bicore(self, seed, taus):
        graph = random_dichromatic_graph(seed)
        tau_l, tau_r = taus
        expected = bicore_active(
            graph, tau_l, tau_r, graph.vertices())
        got = bicore_active_mask(
            graph.adjacency_bits(), graph.left_bits(), tau_l, tau_r,
            graph.all_bits())
        assert set(bits_of(got)) == expected

    @pytest.mark.parametrize("seed", range(25))
    def test_coloring_bound_is_valid_clique_bound(self, seed):
        # Tie-breaking differs from the set version, so only the bound
        # property is compared: every clique fits under both bounds and
        # the two bounds rarely drift far apart.
        graph = random_dichromatic_graph(seed)
        bound_set = coloring_upper_bound_active(
            graph, graph.vertices())
        bound_mask = coloring_upper_bound_active_mask(
            graph.adjacency_bits(), graph.all_bits())
        omega = _max_clique_size(graph)
        assert bound_mask >= omega
        assert bound_set >= omega

    @pytest.mark.parametrize("seed", range(15))
    def test_degeneracy_ordering_mask_is_valid(self, seed):
        graph = random_dichromatic_graph(seed)
        adj = graph.adjacency_bits()
        order = degeneracy_ordering_mask(adj, graph.all_bits())
        assert sorted(order) == list(graph.vertices())
        # Degeneracy property: each vertex has at most `degeneracy`
        # neighbours among the vertices after it in the order.
        remaining = graph.all_bits()
        degeneracy = 0
        for v in order:
            remaining &= ~(1 << v)
            degeneracy = max(
                degeneracy, (adj[v] & remaining).bit_count())
        unsigned = UnsignedGraph.from_edges(
            graph.num_vertices, graph.edges())
        from repro.unsigned.cores import degeneracy as set_degeneracy
        assert degeneracy == set_degeneracy(unsigned)


@requires_numpy
class TestNumpyKernelPrimitives:
    """The vectorised npmask kernels against the bitset primitives.

    Bitset is itself pinned against the set references above, so
    matching it transitively matches the originals; rows and matrices
    are compared through their canonical int-mask images.
    """

    @pytest.mark.parametrize("seed", range(20))
    def test_intersection_degree_and_row_codec(self, seed):
        graph = random_dichromatic_graph(seed)
        n = graph.num_vertices
        adj = graph.adjacency_bits()
        mat = graph.adjacency_matrix()
        rng = random.Random(seed)
        active = set(rng.sample(range(n), rng.randint(0, n)))
        active_mask = mask_of(active)
        active_row = npmask.row_from_mask(active_mask, n)
        assert npmask.mask_from_row(active_row) == active_mask
        assert npmask.row_count(active_row) == len(active)
        assert list(npmask.row_indices(active_row, n)) == \
            sorted(active)
        for v in graph.vertices():
            got = npmask.intersect_active(mat, v, active_row)
            assert npmask.mask_from_row(got) == \
                intersect_active(adj, v, active_mask)
            assert npmask.degree_in_active(mat, v, active_row) == \
                degree_in_active(adj, v, active_mask)

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("k", [0, 1, 2, 4])
    def test_k_core(self, seed, k):
        graph = random_dichromatic_graph(seed)
        expected = k_core_active_mask(
            graph.adjacency_bits(), k, graph.all_bits())
        got = npmask.k_core_active(
            graph.adjacency_matrix(), k, graph.all_row())
        assert npmask.mask_from_row(got) == expected

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("taus", [(0, 0), (1, 2), (2, 2), (3, 1)])
    def test_bicore(self, seed, taus):
        graph = random_dichromatic_graph(seed)
        tau_l, tau_r = taus
        expected = bicore_active_mask(
            graph.adjacency_bits(), graph.left_bits(), tau_l, tau_r,
            graph.all_bits())
        got = npmask.bicore_active(
            graph.adjacency_matrix(), graph.left_row(), tau_l, tau_r,
            graph.all_row())
        assert npmask.mask_from_row(got) == expected

    @pytest.mark.parametrize("seed", range(20))
    def test_coloring_bound_is_valid_clique_bound(self, seed):
        graph = random_dichromatic_graph(seed)
        bound = npmask.coloring_upper_bound_active(
            graph.adjacency_matrix(), graph.all_row())
        assert bound >= _max_clique_size(graph)

    @pytest.mark.parametrize("seed", range(15))
    def test_degeneracy_ordering_is_valid(self, seed):
        graph = random_dichromatic_graph(seed)
        adj = graph.adjacency_bits()
        order = npmask.degeneracy_ordering(
            graph.adjacency_matrix(), graph.all_row())
        assert sorted(order) == list(graph.vertices())
        remaining = graph.all_bits()
        degeneracy = 0
        for v in order:
            remaining &= ~(1 << v)
            degeneracy = max(
                degeneracy, (adj[v] & remaining).bit_count())
        mask_order = degeneracy_ordering_mask(adj, graph.all_bits())
        remaining = graph.all_bits()
        reference = 0
        for v in mask_order:
            remaining &= ~(1 << v)
            reference = max(
                reference, (adj[v] & remaining).bit_count())
        assert degeneracy == reference

    @pytest.mark.parametrize("seed", range(15))
    def test_matrix_blob_round_trip(self, seed):
        # Wire-format compatibility: a numpy matrix serialises to the
        # exact bytes masks_to_bytes produces, and rebuilds from them.
        graph = random_dichromatic_graph(seed)
        n = graph.num_vertices
        adj = graph.adjacency_bits()
        mat = graph.adjacency_matrix()
        blob = npmask.matrix_to_bytes(mat, n)
        assert blob == masks_to_bytes(adj, n)
        rebuilt = npmask.matrix_from_bytes(blob, n)
        assert npmask.masks_from_matrix(rebuilt, n) == adj

    def test_matrix_from_bytes_validates_length(self):
        with pytest.raises(ValueError):
            npmask.matrix_from_bytes(b"\x00", 9)

    def test_swar_popcount_fallback(self, monkeypatch):
        # Force the pre-numpy-2.0 path: popcounts must still be exact.
        monkeypatch.setattr(npmask, "_BITWISE_COUNT", None)
        rng = random.Random(42)
        for n in (0, 1, 63, 64, 65, 130):
            mask = rng.getrandbits(n) if n else 0
            row = npmask.row_from_mask(mask, n)
            assert npmask.row_count(row) == mask.bit_count()

    @pytest.mark.parametrize("seed", range(10))
    def test_network_builder_matches_bitset(self, seed):
        graph = random_signed_graph(seed)
        rng = random.Random(seed + 500)
        u = rng.randrange(graph.num_vertices)
        by_bits = build_dichromatic_network_bits(graph, u)
        by_np = build_dichromatic_network_matrix(graph, u)
        assert by_bits.origin == by_np.origin
        assert by_bits.is_left == by_np.is_left
        assert sorted(by_bits.edges()) == sorted(by_np.edges())


@requires_numpy
class TestNumpyWitnessParity:
    """bitset and numpy share tie-breaks, so their witnesses must be
    *identical*, not merely size-equal."""

    @pytest.mark.parametrize("seed", range(0, 40, 2))
    def test_mdc_identical_witness(self, seed):
        graph = random_dichromatic_graph(seed)
        for taus in [(0, 0), (1, 1), (2, 1), (1, 3)]:
            for must_exceed in (0, 2):
                by_bits = solve_mdc(graph, *taus, must_exceed,
                                    engine="bitset")
                by_np = solve_mdc(graph, *taus, must_exceed,
                                  engine="numpy")
                assert by_bits == by_np, (seed, taus, must_exceed)

    @pytest.mark.parametrize("seed", range(0, 40, 2))
    def test_dcc_identical_witness(self, seed):
        graph = random_dichromatic_graph(seed)
        for taus in [(0, 0), (1, 1), (2, 2), (3, 1)]:
            by_bits = dichromatic_clique_witness(
                graph, *taus, engine="bitset")
            by_np = dichromatic_clique_witness(
                graph, *taus, engine="numpy")
            assert by_bits == by_np, (seed, taus)

    @pytest.mark.parametrize("seed", range(0, 30, 3))
    def test_mbc_star_identical_witness(self, seed):
        graph = random_signed_graph(seed)
        tau = seed % 3
        by_bits = mbc_star(graph, tau, engine="bitset")
        by_np = mbc_star(graph, tau, engine="numpy")
        assert by_bits.left == by_np.left
        assert by_bits.right == by_np.right


def _max_clique_size(graph: DichromaticGraph) -> int:
    best = 0
    adj = graph.adjacency_bits()

    def expand(clique_size: int, candidates: int) -> None:
        nonlocal best
        if clique_size > best:
            best = clique_size
        rest = candidates
        while rest:
            low = rest & -rest
            rest ^= low
            v = low.bit_length() - 1
            if clique_size + candidates.bit_count() <= best:
                return
            expand(clique_size + 1, candidates & adj[v])
            candidates ^= low

    expand(0, graph.all_bits())
    return best
