"""Smoke tests: every example script runs and produces its headline
output (examples are part of the public deliverable)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600, check=True)
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "maximum balanced clique (tau=2): |C|=6" in out
    assert "beta(G) = 2" in out

def test_conflict_discovery():
    out = run_example("conflict_discovery.py")
    assert "subredditdrama" in out
    assert "polarity" in out


def test_synonym_antonym():
    out = run_example("synonym_antonym.py")
    assert "synonym group A" in out
    assert "good" in out and "bad" in out


def test_protein_complexes():
    out = run_example("protein_complexes.py")
    assert "antagonistic complex pair" in out
    assert "found 3 antagonistic complex pairs" in out


def test_polarization_explorer_small_dataset():
    out = run_example("polarization_explorer.py", "bitcoin")
    assert "polarization factor beta(G)" in out
    assert "tau=" in out
