"""Tests for the synthetic signed-graph generators."""

import pytest

from repro.core.balance import is_balanced_clique
from repro.signed.generators import chung_lu_signed_graph, \
    plant_balanced_clique, power_law_weights, random_signed_graph, \
    srn_community_graph
from repro.signed.graph import SignedGraph


class TestRandomSignedGraph:
    def test_exact_edge_count(self):
        graph = random_signed_graph(30, 100, seed=1)
        assert graph.num_edges == 100

    def test_deterministic(self):
        a = random_signed_graph(25, 60, seed=42)
        b = random_signed_graph(25, 60, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_seeds_differ(self):
        a = random_signed_graph(25, 60, seed=1)
        b = random_signed_graph(25, 60, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_neg_ratio_respected(self):
        graph = random_signed_graph(60, 800, neg_ratio=0.3, seed=3)
        assert graph.negative_ratio == pytest.approx(0.3, abs=0.07)

    def test_all_negative(self):
        graph = random_signed_graph(20, 50, neg_ratio=1.0, seed=4)
        assert graph.num_positive_edges == 0

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            random_signed_graph(10, 5, neg_ratio=1.5)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            random_signed_graph(4, 10)

    def test_validates(self):
        random_signed_graph(40, 150, seed=5).validate()


class TestChungLu:
    def test_power_law_weights_decrease(self):
        weights = power_law_weights(10)
        assert weights == sorted(weights, reverse=True)

    def test_power_law_bad_exponent(self):
        with pytest.raises(ValueError):
            power_law_weights(5, exponent=1.0)

    def test_edge_count_close(self):
        graph = chung_lu_signed_graph(200, 600, seed=6)
        assert graph.num_edges >= 540  # collisions may shave a few

    def test_heavy_tail(self):
        graph = chung_lu_signed_graph(300, 1500, exponent=2.1, seed=7)
        degrees = sorted(
            (graph.degree(v) for v in graph.vertices()), reverse=True)
        # The top vertex should dominate the median by a wide margin.
        assert degrees[0] >= 4 * max(degrees[len(degrees) // 2], 1)

    def test_deterministic(self):
        a = chung_lu_signed_graph(100, 300, seed=8)
        b = chung_lu_signed_graph(100, 300, seed=8)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_validates(self):
        chung_lu_signed_graph(100, 400, seed=9).validate()


class TestSRN:
    def test_community_signs(self):
        graph = srn_community_graph(
            60, 3, p_in=0.5, p_out=0.1, noise=0.0, seed=10)
        for u, v, sign in graph.edges():
            same = (u % 3) == (v % 3)
            assert sign == (1 if same else -1)

    def test_noise_flips_some_signs(self):
        clean = srn_community_graph(
            60, 3, p_in=0.5, p_out=0.1, noise=0.0, seed=11)
        noisy = srn_community_graph(
            60, 3, p_in=0.5, p_out=0.1, noise=0.5, seed=11)
        flips = sum(
            1 for u, v, s in noisy.edges() if clean.sign(u, v) == -s)
        assert flips > 0

    def test_requires_community(self):
        with pytest.raises(ValueError):
            srn_community_graph(10, 0)

    def test_validates(self):
        srn_community_graph(80, 4, seed=12).validate()


class TestPlanting:
    def test_plants_balanced_clique(self):
        graph = random_signed_graph(40, 100, seed=13)
        plant_balanced_clique(graph, [0, 1, 2], [3, 4, 5])
        assert is_balanced_clique(graph, range(6), tau=3)
        graph.validate()

    def test_overwrites_conflicting_edges(self):
        graph = SignedGraph(4)
        graph.add_edge(0, 1, -1)   # conflicts with the plant
        graph.add_edge(0, 2, 1)    # conflicts with the plant
        plant_balanced_clique(graph, [0, 1], [2, 3])
        assert graph.sign(0, 1) == 1
        assert graph.sign(0, 2) == -1

    def test_one_sided_plant(self):
        graph = SignedGraph(5)
        plant_balanced_clique(graph, [0, 1, 2, 3], [])
        assert graph.num_positive_edges == 6
        assert graph.num_negative_edges == 0

    def test_overlapping_sides_rejected(self):
        graph = SignedGraph(5)
        with pytest.raises(ValueError):
            plant_balanced_clique(graph, [0, 1], [1, 2])

    def test_out_of_range_rejected(self):
        graph = SignedGraph(3)
        with pytest.raises(ValueError):
            plant_balanced_clique(graph, [0], [5])

    def test_returns_graph_for_chaining(self):
        graph = SignedGraph(4)
        assert plant_balanced_clique(graph, [0], [1]) is graph
