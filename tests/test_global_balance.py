"""Tests for global structural balance (Harary) and frustration."""

import pytest
from hypothesis import given, settings

from repro.signed.balance import connected_components, \
    frustration_count, frustration_partition_local_search, \
    harary_partition, is_structurally_balanced
from repro.signed.generators import plant_balanced_clique
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph

from .conftest import signed_graphs


class TestConnectedComponents:
    def test_empty(self):
        assert connected_components(SignedGraph(0)) == []

    def test_isolated_vertices(self):
        components = connected_components(SignedGraph(3))
        assert sorted(map(sorted, components)) == [[0], [1], [2]]

    def test_mixed_signs_connect(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 1)], negative_edges=[(1, 2)])
        components = connected_components(graph)
        assert sorted(map(sorted, components)) == [[0, 1, 2], [3]]


class TestHarary:
    def test_balanced_clique_is_balanced(self, balanced_six):
        sub, _ = balanced_six.subgraph(range(6))
        partition = harary_partition(sub)
        assert partition is not None
        left, right = partition
        assert {frozenset(left), frozenset(right)} == {
            frozenset({0, 1, 2}), frozenset({3, 4, 5})}

    def test_negative_triangle_unbalanced(self):
        graph = SignedGraph.from_edges(
            3, negative_edges=[(0, 1), (1, 2), (0, 2)])
        assert harary_partition(graph) is None
        assert not is_structurally_balanced(graph)

    def test_one_flipped_edge_breaks_balance(self, balanced_six):
        sub, _ = balanced_six.subgraph(range(6))
        sub.remove_edge(0, 1)
        sub.add_edge(0, 1, NEGATIVE)
        assert not is_structurally_balanced(sub)

    def test_all_positive_is_balanced(self, all_positive_clique):
        assert is_structurally_balanced(all_positive_clique)

    def test_empty_graph_balanced(self):
        assert is_structurally_balanced(SignedGraph(0))

    def test_even_negative_cycle_balanced(self):
        graph = SignedGraph.from_edges(
            4, negative_edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        assert is_structurally_balanced(graph)

    def test_odd_negative_cycle_unbalanced(self):
        graph = SignedGraph.from_edges(
            5, negative_edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        assert not is_structurally_balanced(graph)

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_partition_witness_has_zero_frustration(self, graph):
        partition = harary_partition(graph)
        if partition is None:
            return
        left, right = partition
        assert frustration_count(graph, left, right) == 0

    @given(signed_graphs(max_vertices=8))
    @settings(max_examples=40, deadline=None)
    def test_unbalanced_graphs_have_no_zero_partition(self, graph):
        """If Harary says unbalanced, no camp assignment achieves zero
        frustration (checked exhaustively)."""
        import itertools

        if harary_partition(graph) is not None:
            return
        n = graph.num_vertices
        for bits in itertools.product((0, 1), repeat=n):
            left = {v for v in range(n) if bits[v] == 0}
            if frustration_count(graph, left) == 0:
                pytest.fail(f"zero-frustration split {left} exists")


class TestFrustration:
    def test_count_on_perfect_split(self, balanced_six):
        sub, _ = balanced_six.subgraph(range(6))
        assert frustration_count(sub, {0, 1, 2}, {3, 4, 5}) == 0

    def test_count_on_bad_split(self, balanced_six):
        sub, _ = balanced_six.subgraph(range(6))
        # Splitting across the camps frustrates everything positive
        # between the separated halves and the negatives kept inside.
        bad = frustration_count(sub, {0, 3}, {1, 2, 4, 5})
        assert bad > 0

    def test_right_defaults_to_complement(self, balanced_six):
        sub, _ = balanced_six.subgraph(range(6))
        assert frustration_count(sub, {0, 1, 2}) == 0

    def test_overlap_rejected(self, balanced_six):
        with pytest.raises(ValueError):
            frustration_count(balanced_six, {0, 1}, {1, 2})

    def test_local_search_exact_on_balanced(self, balanced_six):
        sub, _ = balanced_six.subgraph(range(6))
        _left, _right, frustration = \
            frustration_partition_local_search(sub)
        assert frustration == 0

    def test_local_search_improves_noisy_graph(self):
        graph = SignedGraph(12)
        plant_balanced_clique(graph, list(range(6)), list(range(6, 12)))
        # Flip two signs: optimal frustration is at most 2.
        graph.remove_edge(0, 1)
        graph.add_edge(0, 1, NEGATIVE)
        graph.remove_edge(0, 6)
        graph.add_edge(0, 6, POSITIVE)
        _l, _r, frustration = frustration_partition_local_search(graph)
        assert frustration <= 2

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=40, deadline=None)
    def test_local_search_returns_partition(self, graph):
        left, right, frustration = \
            frustration_partition_local_search(graph)
        assert left | right == set(graph.vertices())
        assert not (left & right)
        assert frustration == frustration_count(graph, left, right)
