"""Tests for the generalized maximum balanced clique algorithms."""

import pytest
from hypothesis import given, settings

from repro.core.balance import is_balanced_clique
from repro.core.bruteforce import brute_force_maximum_balanced_clique, \
    brute_force_polarization_factor
from repro.core.gmbc import distinct_cliques_profile, gmbc_naive, gmbc_star
from repro.signed.graph import SignedGraph

from .conftest import signed_graphs


class TestGMBCNaive:
    def test_figure2(self, toy_figure2):
        results = gmbc_naive(toy_figure2)
        assert len(results) == 3  # tau = 0, 1, 2
        assert results[2].size == 6

    def test_empty_graph(self):
        assert gmbc_naive(SignedGraph(0)) == []

    def test_sizes_non_increasing(self, toy_figure2):
        results = gmbc_naive(toy_figure2)
        sizes = [c.size for c in results]
        assert sizes == sorted(sizes, reverse=True)


class TestGMBCStar:
    def test_figure2(self, toy_figure2):
        results = gmbc_star(toy_figure2)
        assert len(results) == 3
        assert results[2].size == 6

    def test_empty_graph(self):
        assert gmbc_star(SignedGraph(0)) == []

    def test_each_result_satisfies_its_tau(self, balanced_six):
        results = gmbc_star(balanced_six)
        for tau, clique in enumerate(results):
            assert clique.satisfies(tau)
            assert is_balanced_clique(
                balanced_six, clique.vertices, tau=tau)

    def test_length_is_beta_plus_one(self, balanced_six):
        results = gmbc_star(balanced_six)
        assert len(results) == \
            brute_force_polarization_factor(balanced_six) + 1


class TestAgreement:
    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=60, deadline=None)
    def test_gmbc_star_matches_brute_force(self, graph):
        results = gmbc_star(graph)
        beta = brute_force_polarization_factor(graph)
        if graph.num_vertices == 0:
            assert results == []
            return
        assert len(results) == beta + 1
        for tau, clique in enumerate(results):
            expected = brute_force_maximum_balanced_clique(graph, tau)
            assert clique.size == expected.size
            assert is_balanced_clique(graph, clique.vertices, tau=tau)

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_naive_and_star_agree(self, graph):
        naive = gmbc_naive(graph)
        star = gmbc_star(graph)
        assert [c.size for c in naive] == [c.size for c in star]

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_lemma6_monotonicity(self, graph):
        sizes = [c.size for c in gmbc_star(graph)]
        assert sizes == sorted(sizes, reverse=True)


class TestProfile:
    def test_empty(self):
        profile = distinct_cliques_profile([])
        assert profile["distinct"] == 0
        assert profile["beta"] == -1

    def test_figure2_profile(self, toy_figure2):
        results = gmbc_star(toy_figure2)
        profile = distinct_cliques_profile(results)
        assert profile["beta"] == 2
        assert 1 <= profile["distinct"] <= 3
        size, small, large = profile["most_polarized"]
        assert size == 6
        assert small <= large

    def test_distinct_counts_unique_cliques(self, balanced_six):
        results = gmbc_star(balanced_six)
        profile = distinct_cliques_profile(results)
        keys = {(c.left, c.right) for c in results}
        assert profile["distinct"] == len(keys)
