"""Tests for MBC-Heu (Algorithm 3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import is_balanced_clique
from repro.core.heuristic import mbc_heuristic
from repro.signed.graph import SignedGraph

from .conftest import signed_graphs


class TestHeuristic:
    def test_finds_planted_clique(self, balanced_six):
        clique = mbc_heuristic(balanced_six, 3)
        assert clique.size == 6
        assert clique.polarization == 3

    def test_result_is_balanced_clique(self, toy_figure2):
        clique = mbc_heuristic(toy_figure2, 2)
        assert not clique.is_empty
        assert is_balanced_clique(
            toy_figure2, clique.vertices, tau=2)

    def test_empty_when_tau_unreachable(self, all_positive_clique):
        clique = mbc_heuristic(all_positive_clique, 1)
        assert clique.is_empty

    def test_tau_zero_nonempty(self, all_positive_clique):
        clique = mbc_heuristic(all_positive_clique, 0)
        assert clique.size >= 1

    def test_empty_graph(self):
        assert mbc_heuristic(SignedGraph(0), 0).is_empty

    def test_anchor_override(self, balanced_six):
        clique = mbc_heuristic(balanced_six, 0, anchor=6)
        assert 6 in clique.vertices

    def test_isolated_anchor(self):
        graph = SignedGraph(3)
        graph.add_edge(0, 1, 1)
        clique = mbc_heuristic(graph, 0, anchor=2)
        assert clique.vertices == {2}

    @given(signed_graphs(max_vertices=12),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=80, deadline=None)
    def test_result_always_valid(self, graph, tau):
        """Whatever the heuristic returns is a genuine balanced clique
        satisfying tau (or empty)."""
        clique = mbc_heuristic(graph, tau)
        if clique.is_empty:
            return
        assert is_balanced_clique(graph, clique.vertices, tau=tau)

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=40, deadline=None)
    def test_never_exceeds_optimum(self, graph):
        from repro.core.bruteforce import \
            brute_force_maximum_balanced_clique

        clique = mbc_heuristic(graph, 0)
        optimum = brute_force_maximum_balanced_clique(graph, 0)
        assert clique.size <= optimum.size
