"""Integration tests: whole pipelines across modules, on realistic
(stand-in) data rather than toy fixtures."""

import pytest

from repro.baselines.polarseeds import good_seed_pairs, polar_seeds
from repro.core.balance import is_balanced_clique
from repro.core.gmbc import distinct_cliques_profile, gmbc_star
from repro.core.mbc_baseline import mbc_baseline
from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_binary_search, pf_star
from repro.core.stats import SearchStats
from repro.datasets.registry import dataset_names, load
from repro.metrics.polarity import harmonic_polarization, polarity
from repro.signed.io import load_signed_graph, save_signed_graph
from repro.signed.ratings import random_rating_table, \
    ratings_to_signed_graph

SMALL = ["bitcoin", "reddit", "referendum"]


class TestSolverAgreementOnDatasets:
    @pytest.mark.parametrize("name", SMALL)
    def test_mbc_star_vs_baseline(self, name):
        graph = load(name, scale=0.5)
        a = mbc_star(graph, 3)
        b = mbc_baseline(graph, 3)
        assert a.size == b.size
        if not a.is_empty:
            assert is_balanced_clique(graph, a.vertices, tau=3)

    @pytest.mark.parametrize("name", SMALL)
    def test_pf_star_vs_binary_search(self, name):
        graph = load(name, scale=0.5)
        assert pf_star(graph) == pf_binary_search(graph)

    @pytest.mark.parametrize("name", dataset_names())
    def test_mbc_star_result_valid_everywhere(self, name):
        graph = load(name, scale=0.4)
        clique = mbc_star(graph, 3)
        if clique.is_empty:
            return
        assert is_balanced_clique(graph, clique.vertices, tau=3)

    @pytest.mark.parametrize("name", SMALL)
    def test_gmbc_consistent_with_pf(self, name):
        graph = load(name, scale=0.5)
        results = gmbc_star(graph)
        beta = pf_star(graph)
        assert len(results) == beta + 1
        tau = min(3, beta)
        assert results[tau].size == mbc_star(graph, tau).size


class TestRatingsPipeline:
    def test_ratings_to_clique(self):
        """Rating table -> signed graph -> maximum balanced clique:
        taste groups become the two sides."""
        table = random_rating_table(
            16, 40, ratings_per_user=25, taste_groups=2, noise=0.05,
            seed=11)
        graph = ratings_to_signed_graph(table)
        clique = mbc_star(graph, 3)
        assert not clique.is_empty
        # Sides should align with the parity taste groups.
        for side in (clique.left, clique.right):
            parities = {v % 2 for v in side}
            assert len(parities) == 1


class TestRoundTripPersistence:
    def test_dataset_survives_disk_round_trip(self, tmp_path):
        graph = load("bitcoin", scale=0.5)
        path = tmp_path / "bitcoin.txt"
        save_signed_graph(graph, path)
        loaded = load_signed_graph(path)
        assert mbc_star(loaded, 3).size == mbc_star(graph, 3).size


class TestQualityComparison:
    def test_clique_ham_is_one_everywhere(self):
        for name in SMALL:
            graph = load(name, scale=0.5)
            clique = mbc_star(graph, 2)
            if clique.is_empty:
                continue
            assert harmonic_polarization(
                graph, clique.left, clique.right) == pytest.approx(1.0)

    def test_polarity_comparison_runs(self):
        graph = load("bitcoin", scale=0.5)
        pairs = good_seed_pairs(graph, t=2, count=3, seed=0)
        clique = mbc_star(graph, 2)
        clique_polarity = polarity(graph, clique.left, clique.right)
        for u, v in pairs:
            community = polar_seeds(graph, u, v)
            assert community.score >= 0.0
        assert clique_polarity > 0.0


class TestInstrumentation:
    def test_stats_across_pipeline(self):
        graph = load("reddit", scale=0.5)
        stats = SearchStats()
        mbc_star(graph, 3, stats=stats)
        assert stats.vertices_examined >= stats.instances
        if stats.sr2 is not None and stats.sr1 is not None:
            assert stats.sr2 >= stats.sr1 - 1e-9
