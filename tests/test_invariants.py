"""Deep cross-module invariants (hypothesis).

These tie together components that the per-module suites test in
isolation: the optimum returned by any solver must be consistent with
the reductions, the transformation, the metrics and the global balance
theory simultaneously.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import split_sides
from repro.core.bruteforce import brute_force_maximum_balanced_clique, \
    enumerate_balanced_cliques
from repro.core.heuristic import mbc_heuristic
from repro.core.mbc_baseline import enumerate_maximal_balanced_cliques
from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.core.reductions import polar_core_numbers, vertex_reduction
from repro.metrics.polarity import harmonic_polarization, polarity
from repro.signed.balance import harary_partition, \
    is_structurally_balanced
from repro.signed.graph import SignedGraph
from repro.signed.triangles import triangle_census
from repro.unsigned.cores import core_numbers
from repro.unsigned.graph import UnsignedGraph

from .conftest import signed_graphs


class TestOptimumConsistency:
    @given(signed_graphs(max_vertices=10),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=60, deadline=None)
    def test_optimum_induces_balanced_subgraph(self, graph, tau):
        """The returned clique's induced subgraph is structurally
        balanced as a whole graph (clique-balance implies
        graph-balance on the induced subgraph)."""
        clique = mbc_star(graph, tau)
        if clique.is_empty:
            return
        sub, _ = graph.subgraph(clique.vertices)
        assert is_structurally_balanced(sub)
        # ...and triangle-perfect: every triangle balanced.
        assert triangle_census(sub).balance_degree == 1.0

    @given(signed_graphs(max_vertices=10),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=60, deadline=None)
    def test_optimum_sides_match_harary_witness(self, graph, tau):
        """split_sides and the Harary partition of the induced
        subgraph agree (up to swap) when the clique spans one
        component."""
        clique = mbc_star(graph, tau)
        if clique.size < 2:
            return
        sub, mapping = graph.subgraph(clique.vertices)
        witness = harary_partition(sub)
        assert witness is not None
        left = {mapping[v] for v in witness[0]}
        right = {mapping[v] for v in witness[1]}
        assert {frozenset(left), frozenset(right)} == {
            frozenset(clique.left), frozenset(clique.right)}

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_optimum_survives_every_safe_reduction(self, graph):
        """For tau = beta(G), the witness lies inside the vertex
        reduction, the polar core at level beta, and the
        (size-1)-core of the unsigned view."""
        beta, witness = pf_star(graph, return_witness=True)
        if beta == 0:
            return
        survivors = vertex_reduction(graph, beta)
        assert set(witness.vertices) <= survivors
        _order, pn = polar_core_numbers(graph)
        for v in witness.vertices:
            assert pn[v] >= beta
        unsigned = UnsignedGraph.from_signed(graph)
        cores = core_numbers(unsigned)
        for v in witness.vertices:
            assert cores[v] >= witness.size - 1

    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_optimum_dominates_heuristic_and_maximals(self, graph, tau):
        optimum = mbc_star(graph, tau)
        heuristic = mbc_heuristic(graph, tau)
        assert optimum.size >= heuristic.size
        for maximal in enumerate_maximal_balanced_cliques(graph, tau):
            assert optimum.size >= maximal.size

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_optimum_is_some_maximal_clique(self, graph):
        """Every maximum balanced clique is maximal, hence appears in
        the MBCEnum output."""
        optimum = mbc_star(graph, 0)
        if optimum.is_empty:
            return
        reported = {
            c.vertices
            for c in enumerate_maximal_balanced_cliques(graph, 0)}
        assert optimum.vertices in reported


class TestMetricConsistency:
    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=1, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_optimum_maximizes_polarity_among_cliques(self, graph, tau):
        """Among balanced cliques satisfying tau, the maximum one has
        the highest polarity achievable *by a maximum-size clique*
        (polarity grows along superset chains, so a maximum clique is
        never polarity-dominated by one of its sub-cliques)."""
        optimum = mbc_star(graph, tau)
        if optimum.is_empty:
            return
        best_score = polarity(graph, optimum.left, optimum.right)
        for clique in enumerate_balanced_cliques(graph, tau):
            if clique.vertices < optimum.vertices:
                assert polarity(graph, clique.left, clique.right) <= \
                    best_score + 1e-9

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_ham_one_iff_balanced_complete_pair(self, graph):
        """HAM = 1 for the solver's output, always."""
        clique = mbc_star(graph, 1)
        if clique.is_empty:
            return
        assert harmonic_polarization(
            graph, clique.left, clique.right) == pytest.approx(1.0)


class TestSplitUniqueness:
    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=60, deadline=None)
    def test_split_is_unique_up_to_swap(self, graph):
        """The paper: the side split of a balanced clique is unique
        (roles swappable).  Verify against all 2^(k-1) candidate
        splits."""
        import itertools

        for clique in enumerate_balanced_cliques(graph):
            members = sorted(clique.vertices)
            if not 2 <= len(members) <= 6:
                continue
            valid = []
            anchor = members[0]
            rest = members[1:]
            for bits in itertools.product((0, 1), repeat=len(rest)):
                left = {anchor} | {
                    v for v, bit in zip(rest, bits) if bit == 0}
                right = set(members) - left
                ok = True
                for u, v in itertools.combinations(members, 2):
                    same = (u in left) == (v in left)
                    sign = graph.sign(u, v)
                    if same and sign != 1 or not same and sign != -1:
                        ok = False
                        break
                if ok:
                    valid.append((frozenset(left), frozenset(right)))
            assert len(valid) == 1
            assert valid[0] == (clique.left, clique.right) or \
                valid[0] == (clique.right, clique.left)
