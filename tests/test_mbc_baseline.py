"""Tests for the MBC enumeration baseline and MBCEnum."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import is_balanced_clique, split_sides
from repro.core.bruteforce import brute_force_maximum_balanced_clique, \
    enumerate_balanced_cliques
from repro.core.mbc_baseline import enumerate_maximal_balanced_cliques, \
    mbc_baseline
from repro.core.stats import SearchStats
from repro.signed.graph import SignedGraph

from .conftest import signed_graphs


class TestMBCBaseline:
    def test_figure2_tau2(self, toy_figure2):
        clique = mbc_baseline(toy_figure2, 2)
        assert clique.size == 6
        assert clique.vertices == {2, 3, 4, 5, 6, 7}

    def test_figure2_tau3_empty(self, toy_figure2):
        assert mbc_baseline(toy_figure2, 3).is_empty

    def test_planted(self, balanced_six):
        assert mbc_baseline(balanced_six, 3).size == 6

    def test_tau_zero_positive_clique(self, all_positive_clique):
        clique = mbc_baseline(all_positive_clique, 0)
        assert clique.size == 5
        assert clique.polarization == 0

    def test_no_edge_reduction_variant(self, toy_figure2):
        a = mbc_baseline(toy_figure2, 2, use_edge_reduction=True)
        b = mbc_baseline(toy_figure2, 2, use_edge_reduction=False)
        assert a.size == b.size

    def test_empty_graph(self):
        assert mbc_baseline(SignedGraph(0), 0).is_empty

    def test_node_limit_enforced(self):
        from .conftest import make_random_signed_graph

        graph = make_random_signed_graph(20, 0.4, 0.3, seed=2)
        with pytest.raises(RuntimeError):
            mbc_baseline(graph, 0, node_limit=3)

    def test_stats_recorded(self, toy_figure2):
        stats = SearchStats()
        mbc_baseline(toy_figure2, 2, stats=stats)
        assert stats.nodes > 0

    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, graph, tau):
        expected = brute_force_maximum_balanced_clique(graph, tau)
        found = mbc_baseline(graph, tau)
        assert found.size == expected.size
        if not found.is_empty:
            assert is_balanced_clique(graph, found.vertices, tau=tau)

    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_variants_agree(self, graph, tau):
        a = mbc_baseline(graph, tau, use_edge_reduction=True)
        b = mbc_baseline(graph, tau, use_edge_reduction=False)
        assert a.size == b.size


class TestMBCEnum:
    def test_simple_two_maximal(self):
        # +(0,1), -(0,2): maximal balanced cliques {0,1} and {0,2}.
        graph = SignedGraph.from_edges(
            3, positive_edges=[(0, 1)], negative_edges=[(0, 2)])
        cliques = enumerate_maximal_balanced_cliques(graph)
        found = {clique.vertices for clique in cliques}
        assert found == {frozenset({0, 1}), frozenset({0, 2})}

    def test_results_are_balanced_cliques(self, toy_figure2):
        for clique in enumerate_maximal_balanced_cliques(toy_figure2):
            assert is_balanced_clique(toy_figure2, clique.vertices)

    def test_results_are_maximal(self, toy_figure2):
        cliques = enumerate_maximal_balanced_cliques(toy_figure2)
        for clique in cliques:
            for v in toy_figure2.vertices():
                if v in clique.vertices:
                    continue
                extended = set(clique.vertices) | {v}
                assert split_sides(toy_figure2, extended) is None, (
                    f"{sorted(clique.vertices)} extendable by {v}")

    def test_tau_filter(self, toy_figure2):
        all_cliques = enumerate_maximal_balanced_cliques(toy_figure2, 0)
        polarized = enumerate_maximal_balanced_cliques(toy_figure2, 2)
        assert len(polarized) <= len(all_cliques)
        assert all(c.polarization >= 2 for c in polarized)

    def test_limit_stops_early(self, toy_figure2):
        cliques = enumerate_maximal_balanced_cliques(
            toy_figure2, limit=2)
        assert len(cliques) == 2

    def test_callback_invoked(self, balanced_six):
        seen = []
        enumerate_maximal_balanced_cliques(
            balanced_six, on_clique=seen.append)
        assert seen
        assert any(c.size == 6 for c in seen)

    def test_no_duplicates(self, toy_figure2):
        cliques = enumerate_maximal_balanced_cliques(toy_figure2)
        keys = [(c.left, c.right) for c in cliques]
        assert len(keys) == len(set(keys))

    @given(signed_graphs(max_vertices=8))
    @settings(max_examples=60, deadline=None)
    def test_complete_against_oracle(self, graph):
        """Every maximal balanced clique (derived from the oracle's
        full enumeration) is reported, and nothing non-maximal is."""
        every = {c.vertices for c in enumerate_balanced_cliques(graph)}
        maximal = {
            c for c in every
            if not any(c < other for other in every)
        }
        # A maximal clique must also not be extendable by any vertex
        # (covers extensions the oracle saw as other cliques).
        reported = {
            c.vertices
            for c in enumerate_maximal_balanced_cliques(graph)
        }
        if graph.num_vertices == 0:
            return
        assert reported == maximal

    @given(signed_graphs(max_vertices=8),
           st.integers(min_value=1, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_tau_variant_subset(self, graph, tau):
        unfiltered = {
            c.vertices
            for c in enumerate_maximal_balanced_cliques(graph, 0)}
        filtered = enumerate_maximal_balanced_cliques(graph, tau)
        for clique in filtered:
            assert clique.polarization >= tau
            assert clique.vertices in unfiltered
