"""Tests for MBC* (Algorithm 2) and MBC-Adv."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import is_balanced_clique
from repro.core.bruteforce import brute_force_maximum_balanced_clique
from repro.core.mbc_adv import mbc_adv
from repro.core.mbc_star import mbc_star
from repro.core.result import BalancedClique
from repro.core.stats import SearchStats
from repro.signed.graph import SignedGraph

from .conftest import make_random_signed_graph, signed_graphs


class TestMBCStar:
    def test_figure2_tau2(self, toy_figure2):
        clique = mbc_star(toy_figure2, 2)
        assert clique.size == 6
        assert clique.vertices == {2, 3, 4, 5, 6, 7}

    def test_figure2_tau3_empty(self, toy_figure2):
        assert mbc_star(toy_figure2, 3).is_empty

    def test_planted(self, balanced_six):
        clique = mbc_star(balanced_six, 3)
        assert clique.size == 6
        assert clique.polarization == 3

    def test_tau_zero(self, all_positive_clique):
        assert mbc_star(all_positive_clique, 0).size == 5

    def test_empty_graph(self):
        assert mbc_star(SignedGraph(0), 0).is_empty

    def test_negative_tau_rejected(self, toy_figure2):
        with pytest.raises(ValueError):
            mbc_star(toy_figure2, -1)

    def test_with_edge_reduction_variant(self, toy_figure2):
        a = mbc_star(toy_figure2, 2, use_edge_reduction=True)
        b = mbc_star(toy_figure2, 2)
        assert a.size == b.size

    def test_initial_solution_returned_when_optimal(self, balanced_six):
        optimum = mbc_star(balanced_six, 3)
        again = mbc_star(balanced_six, 3, initial=optimum)
        assert again.size == optimum.size

    def test_initial_solution_improved(self, balanced_six):
        small = BalancedClique.from_sides({0, 1, 2}, {3, 4})
        clique = mbc_star(balanced_six, 2, initial=small)
        assert clique.size == 6

    def test_invalid_initial_rejected(self, toy_figure2):
        bad = BalancedClique.from_sides({0, 1}, set())
        with pytest.raises(ValueError):
            mbc_star(toy_figure2, 2, initial=bad)

    def test_check_only_returns_feasible(self, toy_figure2):
        witness = mbc_star(toy_figure2, 2, check_only=True)
        assert not witness.is_empty
        assert witness.satisfies(2)
        assert is_balanced_clique(toy_figure2, witness.vertices, tau=2)

    def test_check_only_empty_when_infeasible(self, toy_figure2):
        assert mbc_star(toy_figure2, 4, check_only=True).is_empty

    def test_stats_recorded(self, toy_figure2):
        stats = SearchStats()
        mbc_star(toy_figure2, 2, stats=stats)
        assert stats.heuristic_size >= 0
        assert stats.vertices_examined >= 0

    def test_sr_ratios_in_range(self):
        graph = make_random_signed_graph(40, 0.25, 0.2, seed=9)
        stats = SearchStats()
        mbc_star(graph, 1, stats=stats)
        if stats.sr1 is not None:
            assert 0.0 <= stats.sr1 <= 1.0
            assert stats.sr2 is not None
            assert stats.sr2 >= stats.sr1 - 1e-9

    @given(signed_graphs(max_vertices=10),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, graph, tau):
        expected = brute_force_maximum_balanced_clique(graph, tau)
        found = mbc_star(graph, tau)
        assert found.size == expected.size
        if not found.is_empty:
            assert is_balanced_clique(graph, found.vertices, tau=tau)
            assert found.satisfies(tau)

    @given(signed_graphs(max_vertices=10),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_check_only_agrees_on_feasibility(self, graph, tau):
        expected = brute_force_maximum_balanced_clique(graph, tau)
        witness = mbc_star(graph, tau, check_only=True)
        assert witness.is_empty == expected.is_empty
        if not witness.is_empty:
            assert is_balanced_clique(graph, witness.vertices, tau=tau)

    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_initial_never_hurts(self, graph, tau):
        plain = mbc_star(graph, tau)
        if plain.is_empty:
            return
        seeded = mbc_star(graph, tau, initial=plain)
        assert seeded.size == plain.size


class TestMBCAdv:
    def test_figure2(self, toy_figure2):
        assert mbc_adv(toy_figure2, 2).size == 6

    def test_planted(self, balanced_six):
        assert mbc_adv(balanced_six, 3).size == 6

    def test_empty_graph(self):
        assert mbc_adv(SignedGraph(0), 0).is_empty

    def test_negative_tau_rejected(self, toy_figure2):
        with pytest.raises(ValueError):
            mbc_adv(toy_figure2, -2)

    def test_node_limit(self):
        graph = make_random_signed_graph(20, 0.4, 0.3, seed=3)
        with pytest.raises(RuntimeError):
            mbc_adv(graph, 0, node_limit=2)

    @given(signed_graphs(max_vertices=10),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, graph, tau):
        expected = brute_force_maximum_balanced_clique(graph, tau)
        found = mbc_adv(graph, tau)
        assert found.size == expected.size
        if not found.is_empty:
            assert is_balanced_clique(graph, found.vertices, tau=tau)
