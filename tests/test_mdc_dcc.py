"""Tests for the MDC and DCC branch-and-bound engines.

MDC is validated against an exhaustive dichromatic-clique oracle; DCC
against MDC (feasibility must coincide) and the same oracle.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import SearchStats
from repro.dichromatic.dcc import dichromatic_clique_check, \
    dichromatic_clique_witness
from repro.dichromatic.graph import DichromaticGraph
from repro.dichromatic.mdc import solve_mdc


@st.composite
def dichromatic_graphs(draw, max_vertices: int = 10) -> DichromaticGraph:
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    labels = draw(st.lists(
        st.booleans(), min_size=n, max_size=n))
    p = draw(st.floats(min_value=0.0, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    graph = DichromaticGraph(labels)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def oracle_maximum(graph: DichromaticGraph, tau_l: int, tau_r: int) -> int:
    """Exhaustive maximum dichromatic clique size (0 if none)."""
    best = 0
    vertices = list(graph.vertices())
    if tau_l <= 0 and tau_r <= 0:
        best = 0  # the empty clique qualifies
    for size in range(1, len(vertices) + 1):
        for combo in itertools.combinations(vertices, size):
            if not graph.is_clique(combo):
                continue
            left, right = graph.side_counts(combo)
            if left >= tau_l and right >= tau_r:
                best = max(best, size)
    return best


def oracle_feasible(graph: DichromaticGraph, tau_l: int, tau_r: int) -> bool:
    if tau_l == 0 and tau_r == 0:
        return True
    vertices = list(graph.vertices())
    for size in range(1, len(vertices) + 1):
        for combo in itertools.combinations(vertices, size):
            if not graph.is_clique(combo):
                continue
            left, right = graph.side_counts(combo)
            if left >= tau_l and right >= tau_r:
                return True
    return False


def build(labels, edges) -> DichromaticGraph:
    graph = DichromaticGraph(labels)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


class TestMDC:
    def test_simple_biclique(self):
        graph = build([True, True, False, False],
                      [(0, 1), (2, 3), (0, 2), (0, 3), (1, 2), (1, 3)])
        found = solve_mdc(graph, 2, 2, must_exceed=0)
        assert found == {0, 1, 2, 3}

    def test_respects_thresholds(self):
        graph = build([True, True, True], [(0, 1), (1, 2), (0, 2)])
        assert solve_mdc(graph, 0, 1, must_exceed=0) is None

    def test_must_exceed_filters(self):
        graph = build([True, True], [(0, 1)])
        assert solve_mdc(graph, 0, 0, must_exceed=2) is None
        assert solve_mdc(graph, 0, 0, must_exceed=1) == {0, 1}

    def test_empty_clique_qualifies_when_thresholds_zero(self):
        graph = DichromaticGraph([True])
        found = solve_mdc(graph, 0, 0, must_exceed=-1)
        assert found is not None

    def test_negative_thresholds_allowed(self):
        graph = build([True, True], [(0, 1)])
        found = solve_mdc(graph, -3, -1, must_exceed=0)
        assert found == {0, 1}

    def test_check_only_returns_any_feasible(self):
        graph = build([True, True, False, False],
                      [(0, 1), (2, 3), (0, 2), (0, 3), (1, 2), (1, 3)])
        found = solve_mdc(graph, 1, 1, must_exceed=0, check_only=True)
        assert found is not None
        left, right = graph.side_counts(found)
        assert left >= 1 and right >= 1

    def test_active_restriction(self):
        graph = build([True, True, False],
                      [(0, 1), (0, 2), (1, 2)])
        found = solve_mdc(graph, 0, 0, must_exceed=0, active={0, 1})
        assert found == {0, 1}

    def test_stats_counted(self):
        graph = build([True, False], [(0, 1)])
        stats = SearchStats()
        solve_mdc(graph, 1, 1, must_exceed=0, stats=stats)
        assert stats.nodes > 0

    @given(dichromatic_graphs(),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_matches_oracle(self, graph, tau_l, tau_r):
        expected = oracle_maximum(graph, tau_l, tau_r)
        found = solve_mdc(graph, tau_l, tau_r, must_exceed=0)
        if found is None:
            assert expected == 0
        else:
            assert len(found) == expected
            assert graph.is_clique(found)
            left, right = graph.side_counts(found)
            assert left >= tau_l and right >= tau_r

    @given(dichromatic_graphs(),
           st.integers(min_value=0, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_must_exceed_is_strict(self, graph, bar):
        expected = oracle_maximum(graph, 0, 0)
        found = solve_mdc(graph, 0, 0, must_exceed=bar)
        if expected > bar:
            assert found is not None and len(found) == expected
        else:
            assert found is None


class TestDCC:
    def test_trivial_feasible(self):
        graph = DichromaticGraph([True])
        assert dichromatic_clique_check(graph, 0, 0)

    def test_single_left_vertex(self):
        graph = DichromaticGraph([True])
        assert dichromatic_clique_check(graph, 1, 0)
        assert not dichromatic_clique_check(graph, 0, 1)

    def test_biclique(self):
        graph = build([True, True, False, False],
                      [(0, 1), (2, 3), (0, 2), (0, 3), (1, 2), (1, 3)])
        assert dichromatic_clique_check(graph, 2, 2)
        assert not dichromatic_clique_check(graph, 3, 2)

    def test_witness_is_valid(self):
        graph = build([True, True, False, False],
                      [(0, 1), (2, 3), (0, 2), (0, 3), (1, 2), (1, 3)])
        witness = dichromatic_clique_witness(graph, 2, 2)
        assert witness is not None
        assert graph.is_clique(witness)
        left, right = graph.side_counts(witness)
        assert left >= 2 and right >= 2

    def test_witness_none_when_infeasible(self):
        graph = build([True, False], [])
        assert dichromatic_clique_witness(graph, 1, 1) is None

    def test_active_restriction(self):
        graph = build([True, False], [(0, 1)])
        assert dichromatic_clique_check(graph, 1, 1)
        assert not dichromatic_clique_check(graph, 1, 1, active={0})

    @given(dichromatic_graphs(),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_matches_oracle(self, graph, tau_l, tau_r):
        assert dichromatic_clique_check(graph, tau_l, tau_r) == \
            oracle_feasible(graph, tau_l, tau_r)

    @given(dichromatic_graphs(),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_mdc(self, graph, tau_l, tau_r):
        feasible = solve_mdc(
            graph, tau_l, tau_r, must_exceed=-1) is not None
        assert dichromatic_clique_check(graph, tau_l, tau_r) == feasible
