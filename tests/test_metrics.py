"""Tests for the Polarity / SBR / HAM quality metrics."""

import pytest
from hypothesis import given, settings

from repro.core.bruteforce import enumerate_balanced_cliques
from repro.metrics.polarity import count_group_edges, \
    harmonic_polarization, polarity, signed_bipartiteness_ratio
from repro.signed.graph import SignedGraph

from .conftest import signed_graphs


class TestCountGroupEdges:
    def test_perfect_polarized_pair(self, balanced_six):
        counts = count_group_edges(balanced_six, {0, 1, 2}, {3, 4, 5})
        assert counts["pos_in"] == 6
        assert counts["neg_cross"] == 9
        assert counts["neg_in"] == 0
        assert counts["pos_cross"] == 0
        assert counts["boundary"] == 2  # edges to vertices 6 and 7

    def test_overlap_rejected(self, balanced_six):
        with pytest.raises(ValueError):
            count_group_edges(balanced_six, {0, 1}, {1, 2})

    def test_violations_counted(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 2)], negative_edges=[(0, 1)])
        counts = count_group_edges(graph, {0, 1}, {2, 3})
        assert counts["neg_in"] == 1
        assert counts["pos_cross"] == 1


class TestPolarity:
    def test_balanced_clique_polarity(self, balanced_six):
        value = polarity(balanced_six, {0, 1, 2}, {3, 4, 5})
        # (6 + 2 * 9) / 6 = 4.0
        assert value == pytest.approx(4.0)

    def test_empty_groups(self, balanced_six):
        assert polarity(balanced_six, set(), set()) == 0.0

    def test_cross_negative_counts_double(self):
        graph = SignedGraph.from_edges(2, negative_edges=[(0, 1)])
        assert polarity(graph, {0}, {1}) == pytest.approx(1.0)

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_polarity_grows_along_superset_chains(self, graph):
        """Extending a balanced clique strictly increases its polarity
        (adding a vertex to side of size l against side r contributes
        1/2 + r^2/(s(s+1)) > 0) — the effect behind Figure 5: the
        *maximum* balanced clique dominates all its sub-cliques."""
        cliques = list(enumerate_balanced_cliques(graph))
        by_vertices = {c.vertices: c for c in cliques}
        for clique in cliques:
            score = polarity(graph, clique.left, clique.right)
            for v in clique.vertices:
                if clique.size == 1:
                    continue
                smaller = by_vertices.get(clique.vertices - {v})
                if smaller is None:
                    continue
                sub_score = polarity(
                    graph, smaller.left, smaller.right)
                assert score >= sub_score - 1e-9


class TestSBR:
    def test_zero_for_isolated_perfect_pair(self, balanced_six):
        # Remove the two pendant vertices to make the pair isolated.
        sub, _ = balanced_six.subgraph(range(6))
        assert signed_bipartiteness_ratio(
            sub, {0, 1, 2}, {3, 4, 5}) == 0.0

    def test_boundary_penalized(self, balanced_six):
        value = signed_bipartiteness_ratio(
            balanced_six, {0, 1, 2}, {3, 4, 5})
        assert value > 0.0

    def test_violations_penalized(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 2)], negative_edges=[(0, 1)])
        assert signed_bipartiteness_ratio(graph, {0, 1}, {2, 3}) == \
            pytest.approx(1.0)

    def test_empty_volume(self):
        graph = SignedGraph(4)
        assert signed_bipartiteness_ratio(graph, {0}, {1}) == 0.0

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_range(self, graph):
        vertices = list(graph.vertices())
        if len(vertices) < 2:
            return
        half = len(vertices) // 2
        value = signed_bipartiteness_ratio(
            graph, vertices[:half], vertices[half:])
        assert 0.0 <= value <= 1.0 + 1e-9


class TestHAM:
    def test_balanced_clique_is_one(self, balanced_six):
        assert harmonic_polarization(
            balanced_six, {0, 1, 2}, {3, 4, 5}) == pytest.approx(1.0)

    def test_one_sided_clique_is_one(self, all_positive_clique):
        assert harmonic_polarization(
            all_positive_clique, set(range(5)), set()) == \
            pytest.approx(1.0)

    def test_totally_wrong_pair_is_zero(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 2), (1, 3)],
            negative_edges=[(0, 1), (2, 3)])
        assert harmonic_polarization(graph, {0, 1}, {2, 3}) == 0.0

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=60, deadline=None)
    def test_every_balanced_clique_scores_one(self, graph):
        """The paper's claim: HAM of a balanced clique is always 1."""
        for clique in enumerate_balanced_cliques(graph):
            assert harmonic_polarization(
                graph, clique.left, clique.right) == pytest.approx(1.0)

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_range(self, graph):
        vertices = list(graph.vertices())
        if len(vertices) < 2:
            return
        half = len(vertices) // 2
        value = harmonic_polarization(
            graph, vertices[:half], vertices[half:])
        assert 0.0 <= value <= 1.0 + 1e-9
